//! Variation flow: the Monte Carlo corner axis end to end — a handful of
//! instances, each evaluated under hundreds of deterministically perturbed
//! libraries, pushed through one `SynthesisService` and folded into a
//! yield-style skew/slew/latency table.
//!
//! The contract this example enforces (and CI replays): the folded
//! [`VariationSummary`] is **bit-identical** for 1 vs 4 service workers and
//! for serial vs service execution, and the per-corner library derivations
//! are shared through the service's corner cache (hits visible in
//! [`ServiceMetrics`]).
//!
//! ```sh
//! cargo run --release --example variation_flow            # 4 instances × 100 corners
//! cargo run --release --example variation_flow -- 3 16    # instances, corners
//! ```

use cts::benchmarks::generate_custom;
use cts::spice::units::PS;
use cts::{
    library_fingerprint, CornerLibraryCache, CtsOptions, CtsOptionsBuilder, Instance,
    ServiceOptions, SynthesisRequest, SynthesisService, Synthesizer, Technology, Variation,
    VariationMode, VariationSummary,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let instances: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(4);
    let corners: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(100);

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;

    // Service workers are the parallel axis, so synthesis stays serial.
    // Variation defaults: 5 % sigma on buffer delay, wire delay, and slew.
    let options = CtsOptions::builder()
        .threads(1)
        .variation(Variation {
            corners,
            seed: 2010,
            ..Variation::default()
        })
        .build()?;

    let suite: Vec<Instance> = (0..instances)
        .map(|i| generate_custom(&format!("v{i}"), 6 + i % 4, 2000.0, 0xC75 + i as u64))
        .collect();

    // Serial reference: synthesize once, then walk the corners directly.
    let synth = Synthesizer::new(&library, options.clone());
    let base_fp = library_fingerprint(&library);
    let serial_cache = CornerLibraryCache::new();
    let mut serial: Vec<VariationSummary> = Vec::new();
    for instance in &suite {
        let nominal = synth.synthesize(instance)?;
        let summary = synth
            .evaluate_variation_with(instance, &nominal, &serial_cache, base_fp)?
            .expect("corners > 0");
        serial.push(summary);
    }

    // Service runs: the same suite through 1 worker and through 4. Both
    // must reproduce the serial summaries bit for bit — shard count and
    // dispatch interleaving must not leak into the fold.
    for workers in [1usize, 4] {
        let mut svc_options = ServiceOptions::default();
        svc_options.workers = workers;
        svc_options.verify = false; // engine estimates; corners are the point here
        let service = SynthesisService::new(
            Arc::new(library.clone()),
            Arc::new(tech.clone()),
            options.clone(),
            svc_options,
        );
        let tickets: Vec<_> = suite
            .iter()
            .map(|instance| {
                service
                    .submit(SynthesisRequest::new(instance.clone()))
                    .expect("service accepts while running")
            })
            .collect();
        let mut got: Vec<(String, VariationSummary)> = tickets
            .into_iter()
            .map(|t| {
                let done = t.wait().expect("synthesis succeeds");
                let summary = done.item.variation.clone().expect("variation axis on");
                (done.item.name.clone(), summary)
            })
            .collect();
        got.sort_by(|a, b| a.0.cmp(&b.0));

        let m = service.metrics();
        service.shutdown();
        for (i, (name, summary)) in got.iter().enumerate() {
            assert_eq!(
                summary, &serial[i],
                "{name}: service summary drifted from serial at {workers} workers"
            );
        }
        assert_eq!(
            m.corners_evaluated,
            (instances * corners) as u64,
            "every submitted corner is counted"
        );
        // Every lookup is accounted for, and derived libraries are shared
        // across instances. With one worker the counts are exact; with
        // several, racing workers may each derive a key before either
        // publishes it (derivation happens outside the cache lock), so
        // misses are only bounded — results are unaffected either way.
        assert_eq!(
            m.corner_lib_hits + m.corner_lib_misses,
            (instances * corners) as u64,
            "every corner lookup hits or misses: {m}"
        );
        if workers == 1 {
            assert_eq!(m.corner_lib_misses, corners as u64, "exact with 1 worker");
        } else {
            assert!(
                m.corner_lib_misses >= corners as u64
                    && m.corner_lib_misses <= (workers * corners) as u64,
                "misses bounded by the worker race: {m}"
            );
        }
        assert!(
            m.corner_lib_hits > 0,
            "corner cache shares derived libraries across instances: {m}"
        );
        println!(
            "workers {workers}: {} corners evaluated, corner cache {} hit / {} miss ✓",
            m.corners_evaluated, m.corner_lib_hits, m.corner_lib_misses
        );
    }

    // Resynthesize mode: the perturbed library changes insertion decisions,
    // not just the measured numbers. A small corner budget — each corner is
    // a full synthesis pass.
    let rs_options = CtsOptionsBuilder::from(options.clone())
        .variation(Variation {
            corners: corners.min(8),
            mode: VariationMode::Resynthesize,
            ..options.variation
        })
        .build()?;
    let rs_synth = Synthesizer::new(&library, rs_options.clone());
    let rs_nominal = rs_synth.synthesize(&suite[0])?;
    let rs_serial = rs_synth
        .evaluate_variation_with(&suite[0], &rs_nominal, &CornerLibraryCache::new(), base_fp)?
        .expect("corners > 0");
    let mut svc_options = ServiceOptions::default();
    svc_options.workers = 2;
    svc_options.verify = false;
    let service = SynthesisService::new(
        Arc::new(library.clone()),
        Arc::new(tech.clone()),
        options.clone(),
        svc_options,
    );
    let ticket = service
        .submit(SynthesisRequest::new(suite[0].clone()).with_options(rs_options))
        .expect("service accepts while running");
    let done = ticket.wait().expect("synthesis succeeds");
    service.shutdown();
    let rs_service = done.item.variation.clone().expect("variation axis on");
    assert_eq!(
        rs_service, rs_serial,
        "resynthesize-mode summary drifted from serial"
    );
    assert!(
        rs_service.rows.iter().all(|r| r.resynthesized),
        "resynthesize mode re-runs synthesis per corner"
    );
    println!(
        "resynthesize: {} corners of {} re-synthesized, service == serial ✓\n",
        rs_service.corners,
        suite[0].name()
    );

    // The yield table: skew/slew/latency distributions across corners.
    println!(
        "{:<6} {:>7} | {:>9} {:>9} {:>9} {:>9} | {:>10} | {:>10}",
        "inst", "corners", "skew min", "median", "p95", "max", "slew p95", "lat p95"
    );
    for (instance, summary) in suite.iter().zip(&serial) {
        println!(
            "{:<6} {:>7} | {:>6.2} ps {:>6.2} ps {:>6.2} ps {:>6.2} ps | {:>7.1} ps | {:>7.1} ps",
            instance.name(),
            summary.corners,
            summary.skew.min / PS,
            summary.skew.median / PS,
            summary.skew.p95 / PS,
            summary.skew.max / PS,
            summary.worst_slew.p95 / PS,
            summary.latency.p95 / PS,
        );
    }

    // Exact-bits fingerprints, one line per instance: CI runs this example
    // twice and diffs these lines — any nondeterminism in the corner walk
    // or the fold shows up as a bit flip here.
    for (instance, summary) in suite.iter().zip(&serial) {
        println!(
            "p95_skew_bits {} {:016x}",
            instance.name(),
            summary.skew.p95.to_bits()
        );
    }
    println!("\ndeterminism: serial == service (1 and 4 workers), bit for bit ✓");
    Ok(())
}
