//! Remote flow: the `cts-net` walkthrough — an in-process TCP server on
//! an ephemeral port wrapping one `SynthesisService`, driven by N
//! concurrent protocol clients submitting prioritized requests, with the
//! returned stats asserted **byte-identical** to a serial `synthesize` +
//! `verify_tree` of the same instances, and a final `metrics` reply
//! checked against the completed request count.
//!
//! This is the end-to-end smoke test CI runs on every push (small
//! instances; the point is exercising the wire path, not benchmark
//! scale).
//!
//! ```sh
//! cargo run --release --example remote_flow            # 2 clients × 2 requests
//! cargo run --release --example remote_flow -- 3 2     # clients, requests each
//! ```

use cts::benchmarks::generate_custom;
use cts::net::{Client, Outcome, RemoteResult, Server, SubmitParams};
use cts::spice::units::{NS, PS};
use cts::{
    verify_tree, CtsOptions, ServiceOptions, SynthesisService, Synthesizer, Technology,
    VerifyOptions,
};
use std::sync::{Arc, Mutex};

fn instance_for(client: usize, k: usize) -> cts::Instance {
    generate_custom(
        &format!("c{client}r{k}"),
        6 + (client + k) % 4,
        2200.0,
        0x4e7 + (client * 29 + k) as u64,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let per_client: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;

    let mut options = CtsOptions::default();
    options.threads = 1; // service workers are the parallel axis
    let mut svc_options = ServiceOptions::default();
    svc_options.workers = 0; // every core
    let service = Arc::new(SynthesisService::new(
        Arc::new(library.clone()),
        Arc::new(tech.clone()),
        options.clone(),
        svc_options,
    ));

    // Ephemeral port: bind 127.0.0.1:0, read the resolved address back,
    // run the server on its own thread.
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service))?;
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());
    println!(
        "cts-net server on {addr} ({} workers); {clients} clients x {per_client} requests\n",
        service.workers()
    );

    // Every client is its own thread with its own TCP connection —
    // concurrent connections multiplexing one service is the point.
    let results: Mutex<Vec<RemoteResult>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let results = &results;
            scope.spawn(move || {
                let mut client = Client::connect_as(addr, Some(&format!("client-{client_idx}")))
                    .expect("connect");
                // Submit everything first (mixed priorities), then wait —
                // exercising the stash path for out-of-order completions.
                let ids: Vec<u64> = (0..per_client)
                    .map(|k| {
                        let params = SubmitParams {
                            priority: client_idx as i32,
                            ..SubmitParams::default()
                        };
                        client
                            .submit(&instance_for(client_idx, k), &params)
                            .expect("submit")
                    })
                    .collect();
                for id in ids {
                    match client.wait_result(id).expect("wait_result") {
                        Outcome::Completed(result) => results.lock().unwrap().push(*result),
                        other => panic!("request {id} did not complete: {other:?}"),
                    }
                }
            });
        }
    });

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|r| r.id);
    println!(
        "{:<8} {:>10} {:>4} {:>7} {:>12} {:>10} {:>13}",
        "request", "client", "prio", "#sinks", "worst slew", "skew", "max latency"
    );
    for r in &results {
        let v = r.verified.as_ref().expect("server verifies");
        println!(
            "{:<8} {:>10} {:>4} {:>7} {:>9.1} ps {:>7.1} ps {:>10.2} ns",
            r.name,
            r.client_id.as_deref().unwrap_or("-"),
            r.priority,
            r.sinks,
            v.worst_slew / PS,
            v.skew / PS,
            v.latency / NS,
        );
    }

    // The wire contract: every stat that crossed the socket is
    // byte-identical (f64 round-trips exactly through the JSON codec) to
    // a serial synthesize + verify_tree of the same instance.
    let serial = Synthesizer::new(&library, options);
    for r in &results {
        let (client_idx, k) = parse_name(&r.name);
        let instance = instance_for(client_idx, k);
        let reference = serial.synthesize(&instance)?;
        let reference_verified = verify_tree(
            &reference.tree,
            reference.source,
            &tech,
            &VerifyOptions::default(),
        )?;
        assert_eq!(r.sinks as usize, instance.sinks().len());
        assert_eq!(
            r.levels as usize, reference.levels,
            "{}: levels drift",
            r.name
        );
        assert_eq!(
            r.buffers as usize, reference.buffers,
            "{}: buffers drift",
            r.name
        );
        assert_eq!(
            r.wirelength_um, reference.wirelength_um,
            "{}: wirelength drift",
            r.name
        );
        assert_eq!(r.estimate.worst_slew, reference.report.worst_slew);
        assert_eq!(r.estimate.skew, reference.report.skew());
        assert_eq!(r.estimate.latency, reference.report.latency);
        let v = r.verified.as_ref().expect("server verifies");
        assert_eq!(
            v.worst_slew, reference_verified.worst_slew,
            "{}: slew drift",
            r.name
        );
        assert_eq!(v.skew, reference_verified.skew, "{}: skew drift", r.name);
        assert_eq!(
            v.latency, reference_verified.max_latency,
            "{}: latency drift",
            r.name
        );
    }
    println!("\ndeterminism: remote stats identical to serial synthesize + verify_tree ✓");

    // A fresh client reads the final metrics and shuts the server down
    // over the wire; the reply must account for every completed request.
    let mut admin = Client::connect(addr)?;
    let m = admin.metrics()?;
    assert_eq!(m.metrics.completed, (clients * per_client) as u64);
    assert_eq!(m.metrics.submitted, m.metrics.completed);
    assert_eq!(m.metrics.queue_depth, 0);
    println!(
        "metrics: {} completed over {} workers, {:.2} s synth / {:.2} s verify cumulative",
        m.metrics.completed, m.workers, m.metrics.synth_seconds, m.metrics.verify_seconds
    );
    admin.shutdown()?;
    running.join().expect("server thread")?;
    println!("server drained and stopped ✓");
    Ok(())
}

/// Recovers (client, request) indices from a `c<i>r<k>` request name.
fn parse_name(name: &str) -> (usize, usize) {
    let rest = name.strip_prefix('c').expect("request name");
    let (c, k) = rest.split_once('r').expect("request name");
    (
        c.parse().expect("client index"),
        k.parse().expect("request index"),
    )
}
