//! Remote flow: the `cts-net` walkthrough — an in-process TCP server on
//! an ephemeral port wrapping one `SynthesisService`, driven by N
//! concurrent protocol clients submitting prioritized requests, with the
//! returned stats asserted **byte-identical** to a serial `synthesize` +
//! `verify_tree` of the same instances, and a final `metrics` reply
//! checked against the completed request count.
//!
//! The second act exercises protocol v2's batch + geometry path: one
//! `submit_batch` frame of N instances must return stats byte-identical
//! to N serial `submit`s of the same instances, and a `fetch_tree` of
//! each result must round-trip the routed tree — every node coordinate,
//! buffer cell id, and wire segment — **bit-for-bit** against the
//! in-process synthesis.
//!
//! This is the end-to-end smoke test CI runs on every push (small
//! instances; the point is exercising the wire path, not benchmark
//! scale).
//!
//! ```sh
//! cargo run --release --example remote_flow            # 2 clients × 2 requests
//! cargo run --release --example remote_flow -- 3 2     # clients, requests each
//! ```

use cts::benchmarks::generate_custom;
use cts::net::{ChunkMode, Client, Outcome, RemoteResult, Server, SubmitSpec};
use cts::spice::units::{NS, PS};
use cts::{
    verify_tree, CtsOptions, ServiceOptions, SynthesisService, Synthesizer, Technology,
    VerifyOptions,
};
use std::sync::{Arc, Mutex};

fn instance_for(client: usize, k: usize) -> cts::Instance {
    generate_custom(
        &format!("c{client}r{k}"),
        6 + (client + k) % 4,
        2200.0,
        0x4e7 + (client * 29 + k) as u64,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let per_client: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;

    // Service workers are the parallel axis, so synthesis stays serial.
    let options = CtsOptions::builder().threads(1).build()?;
    let mut svc_options = ServiceOptions::default();
    svc_options.workers = 0; // every core
    let service = Arc::new(SynthesisService::new(
        Arc::new(library.clone()),
        Arc::new(tech.clone()),
        options.clone(),
        svc_options,
    ));

    // Ephemeral port: bind 127.0.0.1:0, read the resolved address back,
    // run the server on its own thread.
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service))?;
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());
    println!(
        "cts-net server on {addr} ({} workers); {clients} clients x {per_client} requests\n",
        service.workers()
    );

    // Every client is its own thread with its own TCP connection —
    // concurrent connections multiplexing one service is the point.
    let results: Mutex<Vec<RemoteResult>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for client_idx in 0..clients {
            let results = &results;
            scope.spawn(move || {
                let mut client = Client::connect_as(addr, Some(&format!("client-{client_idx}")))
                    .expect("connect");
                // Submit everything first (mixed priorities), then wait —
                // exercising the stash path for out-of-order completions.
                let ids: Vec<u64> = (0..per_client)
                    .map(|k| {
                        client
                            .submit_spec(
                                SubmitSpec::new(instance_for(client_idx, k))
                                    .with_priority(client_idx as i32),
                            )
                            .expect("submit")
                    })
                    .collect();
                for id in ids {
                    match client.wait_result(id).expect("wait_result") {
                        Outcome::Completed(result) => results.lock().unwrap().push(*result),
                        other => panic!("request {id} did not complete: {other:?}"),
                    }
                }
            });
        }
    });

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|r| r.id);
    println!(
        "{:<8} {:>10} {:>4} {:>7} {:>12} {:>10} {:>13}",
        "request", "client", "prio", "#sinks", "worst slew", "skew", "max latency"
    );
    for r in &results {
        let v = r.verified.as_ref().expect("server verifies");
        println!(
            "{:<8} {:>10} {:>4} {:>7} {:>9.1} ps {:>7.1} ps {:>10.2} ns",
            r.name,
            r.client_id.as_deref().unwrap_or("-"),
            r.priority,
            r.sinks,
            v.worst_slew / PS,
            v.skew / PS,
            v.latency / NS,
        );
    }

    // The wire contract: every stat that crossed the socket is
    // byte-identical (f64 round-trips exactly through the JSON codec) to
    // a serial synthesize + verify_tree of the same instance.
    let serial = Synthesizer::new(&library, options);
    for r in &results {
        let (client_idx, k) = parse_name(&r.name);
        let instance = instance_for(client_idx, k);
        let reference = serial.synthesize(&instance)?;
        let reference_verified = verify_tree(
            &reference.tree,
            reference.source,
            &tech,
            &VerifyOptions::default(),
        )?;
        assert_eq!(r.sinks as usize, instance.sinks().len());
        assert_eq!(
            r.levels as usize, reference.levels,
            "{}: levels drift",
            r.name
        );
        assert_eq!(
            r.buffers as usize, reference.buffers,
            "{}: buffers drift",
            r.name
        );
        assert_eq!(
            r.wirelength_um, reference.wirelength_um,
            "{}: wirelength drift",
            r.name
        );
        assert_eq!(r.estimate.worst_slew, reference.report.worst_slew);
        assert_eq!(r.estimate.skew, reference.report.skew());
        assert_eq!(r.estimate.latency, reference.report.latency);
        let v = r.verified.as_ref().expect("server verifies");
        assert_eq!(
            v.worst_slew, reference_verified.worst_slew,
            "{}: slew drift",
            r.name
        );
        assert_eq!(v.skew, reference_verified.skew, "{}: skew drift", r.name);
        assert_eq!(
            v.latency, reference_verified.max_latency,
            "{}: latency drift",
            r.name
        );
    }
    println!("\ndeterminism: remote stats identical to serial synthesize + verify_tree ✓");

    // ---- Act two: batch-frame submission + routed-geometry streaming.
    //
    // One submit_batch frame of N instances vs N serial submits of the
    // same instances on a second connection: every stat that crosses the
    // wire must be byte-identical, and the admission must be atomic
    // (consecutive ids).
    // Cap at 64: the server retains completed results for fetch_tree in
    // a per-connection FIFO of that size (docs/PROTOCOL.md), so a larger
    // batch would see its earliest trees evicted before the fetch loop.
    let batch_n = (clients * per_client).clamp(2, 64);
    let batch_instances: Vec<cts::Instance> = (0..batch_n)
        .map(|k| generate_custom(&format!("bat{k}"), 5 + k % 4, 2400.0, 0xba7c + k as u64))
        .collect();
    let mut batcher = Client::connect_as(addr, Some("batcher"))?;
    let mut serial_submitter = Client::connect_as(addr, Some("serial"))?;
    // Uniform specs: submit_specs folds them into one atomic
    // `submit_batch` frame.
    let batch_ids = batcher.submit_specs(
        batch_instances
            .iter()
            .map(|i| SubmitSpec::new(i.clone()))
            .collect(),
    )?;
    assert_eq!(batch_ids.len(), batch_n);
    assert!(
        batch_ids.windows(2).all(|w| w[1] == w[0] + 1),
        "atomic batch admission must hand out consecutive ids: {batch_ids:?}"
    );
    let serial_ids: Vec<u64> = batch_instances
        .iter()
        .map(|i| serial_submitter.submit_spec(SubmitSpec::new(i.clone())))
        .collect::<Result<_, _>>()?;

    let completed = |outcome: Outcome, what: &str| -> RemoteResult {
        match outcome {
            Outcome::Completed(result) => *result,
            other => panic!("{what} did not complete: {other:?}"),
        }
    };
    for (k, (&bid, &sid)) in batch_ids.iter().zip(&serial_ids).enumerate() {
        let b = completed(batcher.wait_result(bid)?, "batch entry");
        let s = completed(serial_submitter.wait_result(sid)?, "serial submit");
        // Scheduling metadata (ids, dispatch order, wall times) differs
        // by construction; every synthesis stat must agree bytewise.
        assert_eq!(b.name, s.name, "entry {k}");
        assert_eq!(b.sinks, s.sinks);
        assert_eq!(b.levels, s.levels, "{}: levels drift", b.name);
        assert_eq!(b.buffers, s.buffers, "{}: buffers drift", b.name);
        assert_eq!(
            b.wirelength_um, s.wirelength_um,
            "{}: wirelength drift",
            b.name
        );
        assert_eq!(b.estimate, s.estimate, "{}: estimate drift", b.name);
        assert_eq!(b.verified, s.verified, "{}: verified drift", b.name);
    }
    println!(
        "submit_batch: one frame of {batch_n} == {batch_n} serial submits, stats byte-identical ✓"
    );

    // fetch_tree of every batch result: the streamed geometry must
    // rebuild the exact in-process tree — node for node, bit for bit.
    for (k, &bid) in batch_ids.iter().enumerate() {
        let remote = batcher.fetch_tree(bid, ChunkMode::Default)?;
        let reference = serial.synthesize(&batch_instances[k])?;
        assert_eq!(remote.name, format!("bat{k}"));
        assert_eq!(
            remote.tree, reference.tree,
            "{}: routed geometry drift",
            remote.name
        );
        assert_eq!(
            remote.source, reference.source,
            "{}: source drift",
            remote.name
        );
        assert_eq!(
            remote.level_stats, reference.level_stats,
            "{}: level stats drift",
            remote.name
        );
        assert_eq!(
            remote.tree.sinks_under(remote.source).len(),
            batch_instances[k].sinks().len()
        );
    }
    println!(
        "fetch_tree: routed geometry of {batch_n} trees bit-identical to in-process synthesis ✓"
    );

    // A fresh client reads the final metrics and shuts the server down
    // over the wire; the reply must account for every completed request.
    let mut admin = Client::connect(addr)?;
    let m = admin.metrics()?;
    assert_eq!(
        m.metrics.completed,
        (clients * per_client + 2 * batch_n) as u64
    );
    assert_eq!(m.metrics.submitted, m.metrics.completed);
    assert_eq!(m.metrics.queue_depth, 0);
    println!(
        "metrics: {} completed over {} workers, {:.2} s synth / {:.2} s verify cumulative",
        m.metrics.completed, m.workers, m.metrics.synth_seconds, m.metrics.verify_seconds
    );
    admin.shutdown()?;
    running.join().expect("server thread")?;
    println!("server drained and stopped ✓");
    Ok(())
}

/// Recovers (client, request) indices from a `c<i>r<k>` request name.
fn parse_name(name: &str) -> (usize, usize) {
    let rest = name.strip_prefix('c').expect("request name");
    let (c, k) = rest.split_once('r').expect("request name");
    (
        c.parse().expect("client index"),
        k.parse().expect("request index"),
    )
}
