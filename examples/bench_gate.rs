//! CI gate over the verify-throughput smoke bench: reads the fresh
//! `BENCH_ci.json` the criterion shim just wrote and enforces
//!
//! 1. the warm-cache verify of the 512-sink tree is at least **5x**
//!    faster than the cold verify (the sparse-solver PR's headline
//!    claim — the incremental stage cache must actually be serving), and
//! 2. against an optional committed baseline, neither the cold nor the
//!    warm median regressed by more than **20%**, after normalizing both
//!    sides by the run's own `calibration` entry (a fixed pure-FP
//!    workload), so a slower CI runner is not misread as a code
//!    regression.
//!
//! ```sh
//! cargo run --release --example bench_gate -- BENCH_ci.json [BENCH_baseline.json]
//! ```
//!
//! When the fresh file also carries `synth_scale` entries (the scale
//! bench ran), two more rules apply:
//!
//! 3. the grid-indexed matcher must pair 100k roots at least **10x**
//!    faster than the retained brute scan (this PR's headline claim —
//!    both medians come from the same run, no normalization needed), and
//! 4. the 10k/100k synthesis tiers must not regress more than **50%**
//!    vs the baseline, calibration-normalized (a looser ceiling than the
//!    verify rule because the scale tiers are one-shot measurements).
//!
//! A missing baseline file (first run on a branch) or a baseline without
//! the verify entries (predating the bench) passes rule 2 with a notice;
//! a fresh file without `synth_scale` entries (a verify-only run) passes
//! rules 3–4 with a notice; a malformed fresh file always fails.

use cts::net::Json;
use std::process::ExitCode;

/// Minimum cold/warm speedup the warm cache must deliver.
const MIN_WARM_SPEEDUP: f64 = 5.0;
/// Maximum tolerated growth of a calibration-normalized median.
const MAX_REGRESSION: f64 = 1.20;
/// Minimum brute/spatial pairing speedup at 100k roots.
const MIN_MATCHING_SPEEDUP: f64 = 10.0;
/// Regression ceiling for the one-shot scale tiers (noisier than the
/// sampled verify medians, so a looser bound).
const SCALE_MAX_REGRESSION: f64 = 1.50;

const COLD: &str = "verify_512sinks/cold";
const WARM: &str = "verify_512sinks/warm";
const CALIBRATION: &str = "verify_512sinks/calibration";
const MATCH_BRUTE: &str = "synth_scale/matching_100k_brute";
const MATCH_SPATIAL: &str = "synth_scale/matching_100k_spatial";
const SCALE_CALIBRATION: &str = "synth_scale/calibration";
const SCALE_TIERS: [&str; 2] = ["synth_scale/synth_10000", "synth_scale/synth_100000"];

/// `median_ns` of the entry with `id`, if present.
fn median_ns(entries: &Json, id: &str) -> Option<f64> {
    let Json::Arr(items) = entries else {
        return None;
    };
    items
        .iter()
        .find(|e| e.get("id").and_then(Json::as_str) == Some(id))
        .and_then(|e| e.get("median_ns"))
        .and_then(Json::as_f64)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(fresh_path) = args.next() else {
        eprintln!("usage: bench_gate <fresh BENCH_ci.json> [baseline BENCH_ci.json]");
        return ExitCode::FAILURE;
    };
    let baseline_path = args.next();

    let fresh = match load(&fresh_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(cold), Some(warm), Some(calib)) = (
        median_ns(&fresh, COLD),
        median_ns(&fresh, WARM),
        median_ns(&fresh, CALIBRATION),
    ) else {
        eprintln!(
            "bench_gate: {fresh_path} lacks the verify bench entries \
             ({COLD}, {WARM}, {CALIBRATION}) — did `cargo bench --bench verify` run?"
        );
        return ExitCode::FAILURE;
    };

    let speedup = cold / warm;
    println!(
        "bench_gate: cold {:.1} ms, warm {:.2} ms — warm cache speedup {speedup:.1}x \
         (floor {MIN_WARM_SPEEDUP}x)",
        cold / 1e6,
        warm / 1e6
    );
    if speedup < MIN_WARM_SPEEDUP {
        eprintln!("bench_gate: FAIL — warm-cache verify must be at least {MIN_WARM_SPEEDUP}x cold");
        return ExitCode::FAILURE;
    }

    // Rule 3: the scale bench's pairing speedup, when that bench ran.
    match (
        median_ns(&fresh, MATCH_BRUTE),
        median_ns(&fresh, MATCH_SPATIAL),
    ) {
        (Some(brute), Some(spatial)) => {
            let pairing = brute / spatial;
            println!(
                "bench_gate: matching at 100k roots: brute {:.2} s, spatial {:.1} ms — \
                 {pairing:.0}x speedup (floor {MIN_MATCHING_SPEEDUP}x)",
                brute / 1e9,
                spatial / 1e6
            );
            if pairing < MIN_MATCHING_SPEEDUP {
                eprintln!(
                    "bench_gate: FAIL — indexed matching must pair 100k roots at least \
                     {MIN_MATCHING_SPEEDUP}x faster than the brute scan"
                );
                return ExitCode::FAILURE;
            }
        }
        _ => println!(
            "bench_gate: {fresh_path} lacks the {MATCH_BRUTE}/{MATCH_SPATIAL} entries \
             (verify-only run); skipping the matching-speedup floor"
        ),
    }

    let Some(baseline_path) = baseline_path else {
        println!("bench_gate: no baseline given; skipping the regression check");
        return ExitCode::SUCCESS;
    };
    let baseline = match load(&baseline_path) {
        Ok(j) => j,
        Err(e) => {
            println!("bench_gate: {e}; treating this as a first run — no regression check");
            return ExitCode::SUCCESS;
        }
    };
    let (Some(b_cold), Some(b_warm), Some(b_calib)) = (
        median_ns(&baseline, COLD),
        median_ns(&baseline, WARM),
        median_ns(&baseline, CALIBRATION),
    ) else {
        println!("bench_gate: {baseline_path} predates the verify bench; no regression check");
        return ExitCode::SUCCESS;
    };

    let mut ok = true;
    for (label, now, was) in [("cold", cold, b_cold), ("warm", warm, b_warm)] {
        // Normalize by each run's own calibration so runner speed cancels.
        let ratio = (now / calib) / (was / b_calib);
        println!(
            "bench_gate: {label} calibration-normalized ratio vs baseline: {ratio:.3} \
             (ceiling {MAX_REGRESSION})"
        );
        if ratio > MAX_REGRESSION {
            eprintln!(
                "bench_gate: FAIL — {label} verify throughput regressed more than \
                 {:.0}% vs the committed baseline",
                (MAX_REGRESSION - 1.0) * 100.0
            );
            ok = false;
        }
    }
    // Rule 4: scale-tier regression, when both runs carry the entries.
    match (
        median_ns(&fresh, SCALE_CALIBRATION),
        median_ns(&baseline, SCALE_CALIBRATION),
    ) {
        (Some(s_calib), Some(bs_calib)) => {
            for tier in SCALE_TIERS {
                let (Some(now), Some(was)) = (median_ns(&fresh, tier), median_ns(&baseline, tier))
                else {
                    println!("bench_gate: {tier} missing on one side; skipping");
                    continue;
                };
                let ratio = (now / s_calib) / (was / bs_calib);
                println!(
                    "bench_gate: {tier} calibration-normalized ratio vs baseline: {ratio:.3} \
                     (ceiling {SCALE_MAX_REGRESSION})"
                );
                if ratio > SCALE_MAX_REGRESSION {
                    eprintln!(
                        "bench_gate: FAIL — {tier} synthesis throughput regressed more than \
                         {:.0}% vs the committed baseline",
                        (SCALE_MAX_REGRESSION - 1.0) * 100.0
                    );
                    ok = false;
                }
            }
        }
        _ => println!(
            "bench_gate: {SCALE_CALIBRATION} missing on one side; \
             skipping the scale-tier regression check"
        ),
    }

    if ok {
        println!("bench_gate: benchmark throughput within bounds ✓");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
