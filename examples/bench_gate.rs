//! CI gate over the verify-throughput smoke bench: reads the fresh
//! `BENCH_ci.json` the criterion shim just wrote and enforces
//!
//! 1. the warm-cache verify of the 512-sink tree is at least **5x**
//!    faster than the cold verify (the sparse-solver PR's headline
//!    claim — the incremental stage cache must actually be serving), and
//! 2. against an optional committed baseline, neither the cold nor the
//!    warm median regressed by more than **20%**, after normalizing both
//!    sides by the run's own `calibration` entry (a fixed pure-FP
//!    workload), so a slower CI runner is not misread as a code
//!    regression.
//!
//! ```sh
//! cargo run --release --example bench_gate -- BENCH_ci.json [BENCH_baseline.json]
//! ```
//!
//! A missing baseline file (first run on a branch) or a baseline without
//! the verify entries (predating the bench) passes rule 2 with a notice;
//! a malformed fresh file always fails.

use cts::net::Json;
use std::process::ExitCode;

/// Minimum cold/warm speedup the warm cache must deliver.
const MIN_WARM_SPEEDUP: f64 = 5.0;
/// Maximum tolerated growth of a calibration-normalized median.
const MAX_REGRESSION: f64 = 1.20;

const COLD: &str = "verify_512sinks/cold";
const WARM: &str = "verify_512sinks/warm";
const CALIBRATION: &str = "verify_512sinks/calibration";

/// `median_ns` of the entry with `id`, if present.
fn median_ns(entries: &Json, id: &str) -> Option<f64> {
    let Json::Arr(items) = entries else {
        return None;
    };
    items
        .iter()
        .find(|e| e.get("id").and_then(Json::as_str) == Some(id))
        .and_then(|e| e.get("median_ns"))
        .and_then(Json::as_f64)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path} is not valid JSON: {e}"))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(fresh_path) = args.next() else {
        eprintln!("usage: bench_gate <fresh BENCH_ci.json> [baseline BENCH_ci.json]");
        return ExitCode::FAILURE;
    };
    let baseline_path = args.next();

    let fresh = match load(&fresh_path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(cold), Some(warm), Some(calib)) = (
        median_ns(&fresh, COLD),
        median_ns(&fresh, WARM),
        median_ns(&fresh, CALIBRATION),
    ) else {
        eprintln!(
            "bench_gate: {fresh_path} lacks the verify bench entries \
             ({COLD}, {WARM}, {CALIBRATION}) — did `cargo bench --bench verify` run?"
        );
        return ExitCode::FAILURE;
    };

    let speedup = cold / warm;
    println!(
        "bench_gate: cold {:.1} ms, warm {:.2} ms — warm cache speedup {speedup:.1}x \
         (floor {MIN_WARM_SPEEDUP}x)",
        cold / 1e6,
        warm / 1e6
    );
    if speedup < MIN_WARM_SPEEDUP {
        eprintln!("bench_gate: FAIL — warm-cache verify must be at least {MIN_WARM_SPEEDUP}x cold");
        return ExitCode::FAILURE;
    }

    let Some(baseline_path) = baseline_path else {
        println!("bench_gate: no baseline given; skipping the regression check");
        return ExitCode::SUCCESS;
    };
    let baseline = match load(&baseline_path) {
        Ok(j) => j,
        Err(e) => {
            println!("bench_gate: {e}; treating this as a first run — no regression check");
            return ExitCode::SUCCESS;
        }
    };
    let (Some(b_cold), Some(b_warm), Some(b_calib)) = (
        median_ns(&baseline, COLD),
        median_ns(&baseline, WARM),
        median_ns(&baseline, CALIBRATION),
    ) else {
        println!("bench_gate: {baseline_path} predates the verify bench; no regression check");
        return ExitCode::SUCCESS;
    };

    let mut ok = true;
    for (label, now, was) in [("cold", cold, b_cold), ("warm", warm, b_warm)] {
        // Normalize by each run's own calibration so runner speed cancels.
        let ratio = (now / calib) / (was / b_calib);
        println!(
            "bench_gate: {label} calibration-normalized ratio vs baseline: {ratio:.3} \
             (ceiling {MAX_REGRESSION})"
        );
        if ratio > MAX_REGRESSION {
            eprintln!(
                "bench_gate: FAIL — {label} verify throughput regressed more than \
                 {:.0}% vs the committed baseline",
                (MAX_REGRESSION - 1.0) * 100.0
            );
            ok = false;
        }
    }
    if ok {
        println!("bench_gate: verify throughput within bounds ✓");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
