//! H-structure correction demo (paper §4.1.2, Table 5.3): synthesize the
//! same instance with correction off, with re-estimation (Method 1), and
//! with full correction (Method 2), and compare skews and flip counts.
//!
//! Run with:
//! ```sh
//! cargo run --release --example hstructure_correction
//! ```

use cts::benchmarks::generate_custom;
use cts::spice::units::PS;
use cts::{CtsOptions, HCorrection, Synthesizer, Technology, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instance = generate_custom("hdemo", 48, 6000.0, 20260610);
    println!("instance: {instance}");

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;

    let mut original_skew = None;
    println!(
        "\n{:<16} {:>10} {:>10} {:>10} {:>10}",
        "mode", "skew", "ratio", "flippings", "buffers"
    );
    for mode in [
        HCorrection::Off,
        HCorrection::ReEstimate,
        HCorrection::Correct,
    ] {
        let options = CtsOptions::builder().h_correction(mode).build()?;
        let synth = Synthesizer::new(&library, options);
        let result = synth.synthesize(&instance)?;
        let verified = cts::verify_tree(
            &result.tree,
            result.source,
            &tech,
            &VerifyOptions::default(),
        )?;
        let ratio = match original_skew {
            None => {
                original_skew = Some(verified.skew);
                "—".to_string()
            }
            Some(base) => format!("{:+.2} %", 100.0 * (verified.skew - base) / base),
        };
        println!(
            "{:<16} {:>7.1} ps {:>10} {:>10} {:>10}",
            mode.to_string(),
            verified.skew / PS,
            ratio,
            result.flippings,
            result.buffers
        );
    }
    println!("\n(negative ratios mean the correction improved the tree, as in Table 5.3)");
    Ok(())
}
