//! Service flow: the `SynthesisService` walkthrough — N concurrent clients
//! share one long-running process and one characterized library, submitting
//! prioritized requests against a bounded queue and streaming results back
//! per request.
//!
//! This is also the end-to-end smoke test CI runs on every push (small
//! instances; the point is exercising the service path, not benchmark
//! scale).
//!
//! ```sh
//! cargo run --release --example service_flow            # 3 clients × 2 requests
//! cargo run --release --example service_flow -- 4 3     # clients, requests each
//! ```

use cts::benchmarks::generate_custom;
use cts::spice::units::{NS, PS};
use cts::{
    BatchSummary, CtsOptions, ServiceOptions, SubmitError, SynthesisRequest, SynthesisResult,
    SynthesisService, Synthesizer, Technology,
};
use std::sync::{Arc, Mutex};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let clients: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(3);
    let per_client: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;

    // Service workers are the parallel axis, so synthesis stays serial.
    // A deliberately tight queue so the run exercises back-pressure: when
    // the worker set falls behind, try_submit reports WouldBlock and the
    // client falls back to the blocking path.
    let options = CtsOptions::builder().threads(1).build()?;
    let mut svc_options = ServiceOptions::default();
    svc_options.workers = 0; // every core
    svc_options.queue_capacity = 2;
    let service = SynthesisService::new(
        Arc::new(library.clone()),
        Arc::new(tech.clone()),
        options.clone(),
        svc_options,
    );
    println!(
        "service up: {} workers, queue capacity 2, {} clients x {} requests\n",
        service.workers(),
        clients,
        per_client
    );

    // Every client runs on its own thread: submit with a client-specific
    // priority, then wait each ticket — submit/wait from many threads
    // concurrently is the entire point of the service seam.
    let results: Mutex<Vec<(usize, SynthesisResult)>> = Mutex::new(Vec::new());
    let would_blocks = Mutex::new(0usize);
    std::thread::scope(|scope| {
        for client in 0..clients {
            let service = &service;
            let results = &results;
            let would_blocks = &would_blocks;
            scope.spawn(move || {
                let tickets: Vec<_> = (0..per_client)
                    .map(|k| {
                        let instance = generate_custom(
                            &format!("c{client}r{k}"),
                            7 + (client + k) % 5,
                            2400.0,
                            0x5e47 + (client * 31 + k) as u64,
                        );
                        let request = SynthesisRequest::new(instance).with_priority(client as i32);
                        // Non-blocking first; on back-pressure, block.
                        match service.try_submit(request) {
                            Ok(ticket) => ticket,
                            Err(SubmitError::WouldBlock(r)) => {
                                *would_blocks.lock().unwrap() += 1;
                                service.submit(r).expect("service accepts while running")
                            }
                            Err(SubmitError::ShuttingDown(_)) => {
                                unreachable!("service is not shutting down")
                            }
                        }
                    })
                    .collect();
                for ticket in tickets {
                    let done = ticket.wait().expect("synthesis succeeds");
                    results.lock().unwrap().push((client, done));
                }
            });
        }
    });

    // Graceful shutdown: drains nothing here (clients waited their
    // tickets), then joins the workers; afterwards the process would
    // reject new submissions.
    service.shutdown();

    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|(_, r)| r.id);
    println!(
        "{:<8} {:>4} {:>9} {:>7} {:>12} {:>10} {:>13}",
        "request", "prio", "dispatch", "#sinks", "worst slew", "skew", "max latency"
    );
    for (_, done) in &results {
        println!(
            "{:<8} {:>4} {:>9} {:>7} {:>9.1} ps {:>7.1} ps {:>10.2} ns",
            done.item.name,
            done.priority,
            done.dispatch_order,
            done.item.sinks,
            done.item.worst_slew() / PS,
            done.item.skew() / PS,
            done.item.max_latency() / NS,
        );
    }

    // The per-request rows are batch rows, so the batch aggregation folds
    // a service session's stream the same way it folds a suite.
    let items: Vec<_> = results.iter().map(|(_, r)| r.item.clone()).collect();
    let s = BatchSummary::fold(&items);
    println!(
        "\nsession: {} requests, {} sinks, {} buffers, worst slew {:.1} ps, \
         worst skew {:.1} ps ({} submissions hit back-pressure)",
        s.instances,
        s.sinks,
        s.buffers,
        s.worst_slew / PS,
        s.worst_skew / PS,
        would_blocks.into_inner().unwrap(),
    );

    // The service contract: every streamed result is byte-identical to a
    // direct serial synthesize + verify of the same instance.
    let serial = Synthesizer::new(&library, options);
    for (_, done) in &results {
        // Regenerate the instance from its deterministic seed.
        let (client, k) = parse_name(&done.item.name);
        let instance = generate_custom(
            &done.item.name,
            7 + (client + k) % 5,
            2400.0,
            0x5e47 + (client * 31 + k) as u64,
        );
        let reference = serial.synthesize(&instance)?;
        assert_eq!(
            done.item.result.tree, reference.tree,
            "{}: tree drift",
            done.item.name
        );
        assert_eq!(done.item.result.report, reference.report);
    }
    println!("determinism: service results identical to the serial loop ✓");
    Ok(())
}

/// Recovers (client, request) indices from a `c<i>r<k>` request name.
fn parse_name(name: &str) -> (usize, usize) {
    let rest = name.strip_prefix('c').expect("request name");
    let (c, k) = rest.split_once('r').expect("request name");
    (
        c.parse().expect("client index"),
        k.parse().expect("request index"),
    )
}
