//! Protocol conformance: replays the canned transcript from
//! `docs/PROTOCOL.md` (the **Conformance transcript** section) against a
//! live `cts-net` server and diffs every frame **byte-for-byte** — so
//! the documented wire bytes can never drift from what the
//! implementation actually speaks. CI runs this as its
//! protocol-conformance step.
//!
//! Script convention (inside the section's ```text blocks):
//!
//! * `C: <frame>` — sent to the server verbatim (plus the newline).
//! * `S: <frame>` — the next non-event frame must equal this byte-for-byte.
//! * `E: <frame>` — a pushed event that must arrive, byte-for-byte, at
//!   any point from here to the end of the session (events are
//!   asynchronous; replies are ordered).
//!
//! The server is pinned to the configuration the doc section names
//! (1 worker, queue capacity 4, verification off, dispatch paused) so
//! every reply byte is deterministic.
//!
//! ```sh
//! cargo run --release --example protocol_conformance
//! cargo run --release --example protocol_conformance -- path/to/PROTOCOL.md
//! ```

use cts::net::{Json, Server};
use cts::{CtsOptions, ServiceOptions, SynthesisService, Technology};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

#[derive(Debug)]
enum Step {
    /// A `C:` line — raw bytes to send.
    Send(String),
    /// An `S:` line — the next ordered (non-event) frame, byte-for-byte.
    Expect(String),
    /// An `E:` line — an event frame that must arrive before the session
    /// ends, byte-for-byte.
    ExpectEvent(String),
}

/// Extracts the replay script from the doc's Conformance transcript
/// section: every `C:`/`S:`/`E:` line of every ```text block before the
/// next `## ` heading.
fn extract_script(doc: &str) -> Result<Vec<Step>, String> {
    let mut in_section = false;
    let mut in_block = false;
    let mut script = Vec::new();
    for line in doc.lines() {
        if line.starts_with("## ") {
            if in_section {
                break;
            }
            in_section = line.trim_end() == "## Conformance transcript";
            continue;
        }
        if !in_section {
            continue;
        }
        if line.trim_end().starts_with("```") {
            in_block = !in_block;
            continue;
        }
        if !in_block {
            continue;
        }
        if let Some(frame) = line.strip_prefix("C: ") {
            script.push(Step::Send(frame.to_string()));
        } else if let Some(frame) = line.strip_prefix("S: ") {
            script.push(Step::Expect(frame.to_string()));
        } else if let Some(frame) = line.strip_prefix("E: ") {
            script.push(Step::ExpectEvent(frame.to_string()));
        }
    }
    if script.is_empty() {
        return Err("no Conformance transcript section (or it is empty)".into());
    }
    Ok(script)
}

/// Reads one frame line (without its newline); EOF is an error.
fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("transport error mid-transcript: {e}"))?;
    if n == 0 {
        return Err("server closed the connection mid-transcript".into());
    }
    if line.ends_with('\n') {
        line.pop();
    }
    Ok(line)
}

fn is_event_line(line: &str) -> bool {
    Json::parse(line)
        .ok()
        .is_some_and(|j| j.get("event").and_then(Json::as_bool) == Some(true))
}

/// Consumes one event frame: it must match an outstanding `E:`
/// expectation byte-for-byte (arrival order among events is not pinned —
/// they are asynchronous pushes).
fn match_event(pending: &mut Vec<String>, got: &str) -> Result<(), String> {
    match pending.iter().position(|e| e == got) {
        Some(i) => {
            pending.remove(i);
            Ok(())
        }
        None => Err(format!(
            "unexpected event frame (no matching E: line)\n  got:      {got}\n  awaiting: {pending:?}"
        )),
    }
}

fn run_script(addr: std::net::SocketAddr, script: &[Step]) -> Result<usize, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    // Every E: expectation is registered up front: events are pushed
    // asynchronously, so one may hit the wire before the reply of the
    // very request that triggered it (the cancel reply and the pump's
    // cancelled event race through the same writer queue). Wherever an
    // event lands in the byte stream, it must match one E: line exactly.
    let mut pending_events: Vec<String> = script
        .iter()
        .filter_map(|s| match s {
            Step::ExpectEvent(frame) => Some(frame.clone()),
            _ => None,
        })
        .collect();
    let mut checked = 0usize;
    for (i, step) in script.iter().enumerate() {
        match step {
            Step::Send(frame) => {
                writer
                    .write_all(frame.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .map_err(|e| format!("step {i}: send failed: {e}"))?;
            }
            Step::ExpectEvent(_) => {} // registered up front
            Step::Expect(want) => loop {
                let got = read_line(&mut reader).map_err(|e| format!("step {i}: {e}"))?;
                if is_event_line(&got) {
                    match_event(&mut pending_events, &got).map_err(|e| format!("step {i}: {e}"))?;
                    checked += 1;
                    continue;
                }
                if &got != want {
                    return Err(format!(
                        "step {i}: frame drifted from docs/PROTOCOL.md\n  doc:    {want}\n  server: {got}"
                    ));
                }
                checked += 1;
                break;
            },
        }
    }
    // Events are asynchronous: whatever is still outstanding must arrive
    // before the server winds the connection down.
    while !pending_events.is_empty() {
        let got = read_line(&mut reader)
            .map_err(|e| format!("awaiting {} events: {e}", pending_events.len()))?;
        if !is_event_line(&got) {
            return Err(format!("expected an event frame, got: {got}"));
        }
        match_event(&mut pending_events, &got)?;
        checked += 1;
    }
    Ok(checked)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| format!("{}/docs/PROTOCOL.md", env!("CARGO_MANIFEST_DIR")));
    let doc = std::fs::read_to_string(&doc_path)?;
    let script = extract_script(&doc)?;

    // The pinned configuration the doc section documents: every reply
    // byte below is deterministic under it.
    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    let options = CtsOptions::builder()
        .threads(1)
        .build()
        .expect("valid options");
    let mut svc = ServiceOptions::default();
    svc.workers = 1;
    svc.queue_capacity = 4;
    svc.verify = false;
    svc.start_paused = true;
    let service = Arc::new(SynthesisService::new(
        Arc::new(library.clone()),
        Arc::new(tech),
        options,
        svc,
    ));
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service))?;
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());

    let checked = run_script(addr, &script)?;
    // The script ends with the shutdown op, so the server stops by itself.
    running.join().expect("server thread")?;
    println!("conformance: {checked} server frames matched docs/PROTOCOL.md byte-for-byte ✓");
    Ok(())
}
