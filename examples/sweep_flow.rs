//! Sweep flow: the `submit_sweep` walkthrough CI runs end-to-end — a
//! Pareto sweep over (slew target × H-correction) whose every point is
//! asserted **byte-identical** to the same options submitted
//! individually, whose terminal `pareto` event is re-folded client-side
//! from individually fetched stats, and a mid-synthesis `fetch_tree` in
//! levels mode that only ever observes level-complete prefixes.
//!
//! Three acts:
//!
//! 1. **A sweep is just N submits.** One `submit_sweep` frame of a 2×2
//!    axis grid against a 4-worker server must produce trees and stats
//!    bit-identical to the four expanded option patches submitted
//!    individually on a 1-worker server — worker count, dispatch
//!    interleaving, and the sweep path itself never reach the result.
//! 2. **The fold is reproducible.** The `pareto` event's rows and front
//!    must equal a client-side `ParetoFront` fold of the stats fetched
//!    point by point — the server's fold is grouping-independent, so
//!    rebuilding it from any partition gives the same bytes.
//! 3. **Levels land whole.** A `publish_levels` submission polled
//!    mid-synthesis streams a monotonically growing, always
//!    self-contained forest; once resolved, the final stream rebuilds
//!    exactly the tree a plain fetch returns.
//!
//! ```sh
//! cargo run --release --example sweep_flow
//! ```

use cts::net::{
    ChunkMode, Client, OptionsPatch, Outcome, Server, SubmitSpec, SweepAxesSpec, SweepRange,
};
use cts::spice::units::PS;
use cts::{
    ClockTree, CtsOptions, HCorrection, ParetoFront, ParetoPoint, ServiceOptions, SynthesisService,
    Technology,
};
use std::sync::Arc;

/// The swept axes: 2 slew targets × 2 H-correction modes = 4 points.
const SLEWS_PS: [f64; 2] = [70.0, 95.0];
const MODES: [HCorrection; 2] = [HCorrection::Off, HCorrection::Correct];

fn serve(library: &cts::DelaySlewLibrary, tech: &Technology, workers: usize) -> ServerThread {
    // Service workers are the parallel axis, so synthesis stays serial;
    // verification off — the sweep invariants are about synthesis bytes.
    let options = CtsOptions::builder()
        .threads(1)
        .build()
        .expect("valid options");
    let mut svc = ServiceOptions::default();
    svc.workers = workers;
    svc.verify = false;
    let service = Arc::new(SynthesisService::new(
        Arc::new(library.clone()),
        Arc::new(tech.clone()),
        options,
        svc,
    ));
    let server = Server::bind("127.0.0.1:0", service).expect("ephemeral bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let running = std::thread::spawn(move || server.run());
    ServerThread {
        addr,
        handle,
        running: Some(running),
    }
}

struct ServerThread {
    addr: std::net::SocketAddr,
    handle: cts::net::ServerHandle,
    running: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl ServerThread {
    fn stop(mut self) {
        self.handle.shutdown();
        self.running
            .take()
            .expect("server thread")
            .join()
            .expect("server thread panicked")
            .expect("server run failed");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    let instance = cts::benchmarks::generate_custom("sweep", 14, 2800.0, 0x5eeb);

    // ---- Act 1 reference: the expanded patches submitted individually,
    // in expansion order (slew outermost, matching the axes' row-major
    // contract), on a single-worker server.
    let reference_server = serve(&library, &tech, 1);
    let mut reference_client = Client::connect(reference_server.addr)?;
    let mut reference = Vec::new();
    for &slew in &SLEWS_PS {
        for &mode in &MODES {
            let patch = OptionsPatch {
                slew_target_ps: Some(slew),
                h_correction: Some(mode),
                ..OptionsPatch::default()
            };
            let id = reference_client
                .submit_spec(SubmitSpec::new(instance.clone()).with_options(patch))?;
            let result = match reference_client.wait_result(id)? {
                Outcome::Completed(result) => *result,
                other => panic!("reference point did not complete: {other:?}"),
            };
            let tree = reference_client.fetch_tree(id, ChunkMode::Default)?.tree;
            reference.push((result, tree));
        }
    }
    reference_server.stop();

    // The sweep: one frame, four points, four workers racing.
    let sweep_server = serve(&library, &tech, 4);
    let mut client = Client::connect(sweep_server.addr)?;
    let axes = SweepAxesSpec {
        slew_targets_ps: SLEWS_PS.to_vec(),
        h_corrections: MODES.to_vec(),
        ..SweepAxesSpec::default()
    };
    let sub = client.submit_sweep(SubmitSpec::new(instance.clone()), SweepRange::Axes(axes))?;
    assert_eq!(
        sub.ids.len(),
        reference.len(),
        "2×2 axes expand to 4 points"
    );
    let pareto = client.wait_pareto(sub.sweep)?;
    assert_eq!(pareto.total, 4);
    assert_eq!(pareto.completed, 4);
    let progress = client.take_sweep_progress(sub.sweep);
    assert_eq!(progress.len(), 4, "one progress event per point");

    let mut stats = Vec::new();
    for (ordinal, &id) in sub.ids.iter().enumerate() {
        let swept = match client.wait_result(id)? {
            Outcome::Completed(result) => *result,
            other => panic!("sweep point {id} did not complete: {other:?}"),
        };
        let (expected, expected_tree) = &reference[ordinal];
        assert_eq!(
            swept.levels, expected.levels,
            "point {ordinal}: levels drift"
        );
        assert_eq!(
            swept.buffers, expected.buffers,
            "point {ordinal}: buffers drift"
        );
        assert_eq!(
            swept.wirelength_um, expected.wirelength_um,
            "point {ordinal}: wirelength drift"
        );
        assert_eq!(
            swept.estimate, expected.estimate,
            "point {ordinal}: estimate drift"
        );
        assert_eq!(
            swept.buffer_cap_f, expected.buffer_cap_f,
            "point {ordinal}: buffer cap drift"
        );
        let tree = client.fetch_tree(id, ChunkMode::Levels)?.tree;
        assert_eq!(
            &tree, expected_tree,
            "point {ordinal}: routed geometry drift"
        );
        stats.push(ParetoPoint {
            ordinal,
            skew: swept.estimate.skew,
            buffer_cap: swept.buffer_cap_f,
            latency: swept.estimate.latency,
        });
    }
    println!(
        "act 1: sweep of {} points bit-identical to {} individual submits (4 workers vs 1) ✓",
        reference.len(),
        reference.len()
    );

    // ---- Act 2: the server's fold, rebuilt from individually fetched
    // stats, reproduces the pareto event exactly.
    let folded = ParetoFront::from_points(stats);
    assert_eq!(
        pareto.to_front(),
        folded,
        "pareto event is not the client-side fold of per-point stats"
    );
    let front: Vec<u64> = folded.front_ordinals().iter().map(|&o| o as u64).collect();
    assert_eq!(pareto.front, front, "front ordinals drifted");
    println!(
        "act 2: pareto front {{{}}} reproduced from individually fetched stats ✓",
        pareto
            .points
            .iter()
            .filter(|p| pareto.front.contains(&p.ordinal))
            .map(|p| format!(
                "#{} {:.1} ps / {:.1} fF",
                p.ordinal,
                p.skew / PS,
                p.buffer_cap_f * 1e15
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ---- Act 3: watch a tree grow level by level. Every partial
    // snapshot must be self-contained (no parent/child index past the
    // published prefix) and monotone; the final stream rebuilds the tree
    // a plain fetch returns.
    let watched = cts::benchmarks::generate_custom("watched", 240, 6400.0, 0x11f);
    let id = client.submit_spec(SubmitSpec::new(watched).with_publish_levels(true))?;
    let mut polls = 0usize;
    let mut last = (0u64, 0usize);
    let full = loop {
        let p = client.fetch_tree_progress(id)?;
        if !p.partial {
            break p;
        }
        polls += 1;
        assert!(p.levels_done >= last.0, "levels went backwards");
        assert!(p.nodes.len() >= last.1, "snapshot shrank");
        for node in &p.nodes {
            if let Some(parent) = node.parent {
                assert!(parent.index() < p.nodes.len(), "parent outside snapshot");
            }
            for &child in &node.children {
                assert!(child.index() < p.nodes.len(), "child outside snapshot");
            }
        }
        last = (p.levels_done, p.nodes.len());
    };
    let final_tree = client.fetch_tree(id, ChunkMode::Default)?;
    let rebuilt = ClockTree::from_nodes(full.nodes)?;
    assert_eq!(
        rebuilt, final_tree.tree,
        "level stream drifted from the tree"
    );
    assert_eq!(full.source, Some(final_tree.source));
    println!(
        "act 3: {polls} mid-synthesis polls saw only level-complete prefixes; final stream rebuilt the tree ✓",
    );

    let metrics = client.metrics()?;
    assert_eq!(metrics.metrics.sweeps_submitted, 1);
    client.shutdown()?;
    sweep_server.stop();
    println!("\nsweep_flow: all assertions held");
    Ok(())
}
