//! Delay-library tour: characterize buffers and wires against the circuit
//! simulator, inspect the fitted surfaces (the Fig. 3.4 data), and measure
//! the fit error on a held-out point.
//!
//! Run with:
//! ```sh
//! cargo run --release --example delay_library
//! ```

use cts::spice::stages::{single_wire_stage, SingleWireConfig};
use cts::spice::units::{NS, PS};
use cts::spice::SimOptions;
use cts::timing::{BufferId, CharacterizeConfig, Load};
use cts::Technology;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::nominal_45nm();
    let cfg = CharacterizeConfig::fast();
    println!(
        "characterizing {} buffers over {} slews x {} lengths (+ branch grids)...",
        tech.buffer_library().len(),
        cfg.input_wire_lengths_um.len(),
        cfg.wire_lengths_um.len()
    );
    let library = cts::timing::load_or_characterize("target/ctslib_fast.v1.txt", &tech, &cfg)?;
    println!("built {library}");

    // A Fig. 3.4-style slice: 20X buffer intrinsic delay vs input slew at
    // two wire lengths.
    let drive = BufferId(1);
    let load = Load::Buffer(BufferId(1));
    println!("\nBUF20X intrinsic delay (ps) from the fitted surface:");
    println!("{:>12} {:>12} {:>12}", "slew (ps)", "L=300 µm", "L=1200 µm");
    for slew_ps in [20.0, 40.0, 60.0, 90.0, 120.0] {
        let d1 = library.single_wire(drive, load, slew_ps * PS, 300.0);
        let d2 = library.single_wire(drive, load, slew_ps * PS, 1200.0);
        println!(
            "{:>12.0} {:>12.2} {:>12.2}",
            slew_ps,
            d1.buffer_delay / PS,
            d2.buffer_delay / PS
        );
    }

    // Held-out accuracy check: simulate an off-grid configuration.
    let buffers = tech.buffer_library();
    let probe = SingleWireConfig {
        input_buf: &buffers[1],
        l_input_um: 650.0,
        drive: &buffers[1],
        l_um: 777.0,
        load: &buffers[1],
        wire: tech.wire(),
        ramp_slew: 80.0 * PS,
        rising: true,
    };
    let truth = single_wire_stage(&tech, &probe).measure(&SimOptions::default_for(5.0 * NS))?;
    let pred = library.single_wire(drive, load, truth.input_slew, 777.0);
    println!(
        "\nheld-out point (777 µm, measured slew {:.1} ps):",
        truth.input_slew / PS
    );
    println!(
        "  wire delay: simulated {:.2} ps vs library {:.2} ps",
        truth.wire_delay / PS,
        pred.wire_delay / PS
    );
    println!(
        "  wire slew:  simulated {:.2} ps vs library {:.2} ps",
        truth.wire_slew / PS,
        pred.output_slew / PS
    );
    Ok(())
}
