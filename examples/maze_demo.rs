//! Maze-routing demo (paper Figs. 4.3/4.4): route one merge between two
//! far-apart sub-trees and print the buffered paths the bi-directional
//! router committed.
//!
//! Run with:
//! ```sh
//! cargo run --release --example maze_demo
//! ```

use cts::core::maze::{MazeRouter, MergeSide};
use cts::geom::Point;
use cts::spice::units::PS;
use cts::timing::Load;
use cts::{CtsOptions, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    let options = CtsOptions::default();
    let router = MazeRouter::new(&library, &options);

    // Two sub-tree roots 7 mm apart; side A is 40 ps slower.
    let a = MergeSide {
        root_point: Point::new(0.0, 0.0),
        root_load: Load::Sink { cap: 30e-15 },
        subtree_delay: 40.0 * PS,
        unbuffered_depth_um: 0.0,
    };
    let b = MergeSide {
        root_point: Point::new(7000.0, 500.0),
        root_load: Load::Sink { cap: 30e-15 },
        subtree_delay: 0.0,
        unbuffered_depth_um: 0.0,
    };

    let plan = router.route(&a, &b)?;
    println!("merge point: {}", plan.merge_point);
    for (label, side, root) in [
        ("A", &plan.sides[0], a.root_point),
        ("B", &plan.sides[1], b.root_point),
    ] {
        println!(
            "\nside {label}: {} buffers, committed delay {:.1} ps, arrival estimate {:.1} ps",
            side.buffers.len(),
            side.committed_delay / PS,
            side.arrival_estimate / PS
        );
        let mut at = root;
        for (i, buf) in side.buffers.iter().enumerate() {
            println!(
                "  [{i}] {} after {:.0} µm of wire at {}",
                library.buffer(buf.buffer).name(),
                buf.wire_below_um,
                buf.position
            );
            at = buf.position;
        }
        println!(
            "  top wire: {:.0} µm from {} to the merge point",
            side.top_wire_um, at
        );
    }
    println!(
        "\narrival difference at the merge: {:.2} ps (binary search trims the rest)",
        (plan.sides[0].arrival_estimate - plan.sides[1].arrival_estimate).abs() / PS
    );
    Ok(())
}
