//! ISPD'09 flow: synthesize ISPD clock-network instances through the
//! sharded batch driver and check the paper's §5.1 observation that skew
//! stays within ~3 % of max latency.
//!
//! Run with (f22 by default; pass f11, f12, f21, f22, f31, f32, fnb1, or
//! `all` for the whole suite; an optional second argument names a
//! directory of real bookshelf files — any `<name>.bms` present is
//! loaded instead of the synthetic equivalent):
//! ```sh
//! cargo run --release --example ispd_flow -- f31
//! cargo run --release --example ispd_flow -- all
//! cargo run --release --example ispd_flow -- all /path/to/ispd/files
//! ```

use cts::benchmarks::{generate_ispd, ispd_from_dir, IspdBenchmark, SuiteSource};
use cts::spice::units::{NS, PS};
use cts::{BatchOptions, BatchRunner, CtsOptions, Instance, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "f22".into());
    let dir = std::env::args().nth(2);
    let selected: Vec<IspdBenchmark> = if which == "all" {
        IspdBenchmark::all().to_vec()
    } else {
        let bench = IspdBenchmark::all()
            .into_iter()
            .find(|b| b.name() == which)
            .ok_or_else(|| format!("unknown ISPD benchmark '{which}' (or pass `all`)"))?;
        vec![bench]
    };
    let suite: Vec<Instance> = match &dir {
        // Real benchmark ingestion with per-file synthetic fallback.
        Some(dir) => selected
            .iter()
            .map(|&b| {
                let entry = ispd_from_dir(b, dir)?;
                match &entry.source {
                    SuiteSource::File(path) => println!("{}: loaded {}", b, path.display()),
                    SuiteSource::Synthetic => println!("{b}: no file in {dir}, synthetic"),
                }
                Ok(entry.instance)
            })
            .collect::<Result<_, String>>()?,
        None => selected.iter().map(|&b| generate_ispd(b)).collect(),
    };
    for instance in &suite {
        println!("instance: {instance}");
    }

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    // Multi-instance runs parallelize on the shard axis; a lone instance
    // keeps the per-level parallel merges instead.
    let threads = if suite.len() > 1 { 1 } else { 0 };
    let options = CtsOptions::builder().threads(threads).build()?;
    let runner = BatchRunner::new(&library, &tech, options, BatchOptions::default());
    let out = runner.run(&suite)?;

    for item in &out.items {
        let pct = 100.0 * item.skew() / item.max_latency();
        println!(
            "{}: worst slew {:.1} ps | skew {:.1} ps | latency {:.2} ns | skew/latency {:.1} %",
            item.name,
            item.worst_slew() / PS,
            item.skew() / PS,
            item.max_latency() / NS,
            pct
        );
        if item.worst_slew() <= 100.0 * PS {
            println!("slew limit honored ✓");
        } else {
            println!("slew limit EXCEEDED ✗");
        }
    }
    Ok(())
}
