//! ISPD'09 flow: synthesize one ISPD clock-network instance and check the
//! paper's §5.1 observation that skew stays within ~3 % of max latency.
//!
//! Run with (f22 by default; pass f11, f12, f21, f22, f31, f32, fnb1):
//! ```sh
//! cargo run --release -p cts --example ispd_flow -- f31
//! ```

use cts::benchmarks::{generate_ispd, IspdBenchmark};
use cts::spice::units::{NS, PS};
use cts::{CtsOptions, Synthesizer, Technology, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "f22".into());
    let bench = IspdBenchmark::all()
        .into_iter()
        .find(|b| b.name() == which)
        .ok_or_else(|| format!("unknown ISPD benchmark '{which}'"))?;

    let instance = generate_ispd(bench);
    println!(
        "instance: {instance} (die {:.0} mm)",
        bench.die_um() / 1000.0
    );

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    let synth = Synthesizer::new(&library, CtsOptions::default());
    let result = synth.synthesize(&instance)?;
    let verified = cts::verify_tree(
        &result.tree,
        result.source,
        &tech,
        &VerifyOptions::default(),
    )?;

    let pct = 100.0 * verified.skew / verified.max_latency;
    println!(
        "{}: worst slew {:.1} ps | skew {:.1} ps | latency {:.2} ns | skew/latency {:.1} %",
        bench.name(),
        verified.worst_slew / PS,
        verified.skew / PS,
        verified.max_latency / NS,
        pct
    );
    if verified.worst_slew <= 100.0 * PS {
        println!("slew limit honored ✓");
    } else {
        println!("slew limit EXCEEDED ✗");
    }
    Ok(())
}
