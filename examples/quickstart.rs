//! Quickstart: synthesize and verify a buffered clock tree for a handful
//! of flip-flops.
//!
//! The same flow is the `cts` facade crate's front-page example, where it
//! runs as a doc-test (`cargo test --doc -p cts`) so it can never rot.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cts::geom::Point;
use cts::spice::units::{NS, PS};
use cts::{CtsOptions, Instance, Sink, Synthesizer, Technology, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Eight flip-flops scattered over a ~3 mm die.
    let sinks = vec![
        Sink::new("ff0", Point::new(0.0, 0.0), 25e-15),
        Sink::new("ff1", Point::new(3000.0, 150.0), 30e-15),
        Sink::new("ff2", Point::new(200.0, 2800.0), 25e-15),
        Sink::new("ff3", Point::new(2900.0, 3000.0), 20e-15),
        Sink::new("ff4", Point::new(1500.0, 1500.0), 35e-15),
        Sink::new("ff5", Point::new(700.0, 900.0), 25e-15),
        Sink::new("ff6", Point::new(2400.0, 800.0), 25e-15),
        Sink::new("ff7", Point::new(1100.0, 2500.0), 30e-15),
    ];
    let instance = Instance::new("quickstart", sinks);
    println!("instance: {instance}");

    // The delay/slew library: cached on disk after the first run.
    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;

    // Synthesize with the paper's settings: 100 ps slew limit, 80 ps
    // synthesis target, R = 45 routing grid.
    let options = CtsOptions::default();
    let synth = Synthesizer::new(&library, options);
    let result = synth.synthesize(&instance)?;

    println!(
        "synthesized: {} levels, {} buffers, {:.0} µm of wire",
        result.levels, result.buffers, result.wirelength_um
    );
    println!(
        "engine estimate: skew {:.1} ps, latency {:.3} ns, worst slew {:.1} ps",
        result.report.skew() / PS,
        result.report.latency / NS,
        result.report.worst_slew / PS
    );

    // SPICE-verify the synthesized netlist — the numbers the paper reports.
    let verified = cts::verify_tree(
        &result.tree,
        result.source,
        &tech,
        &VerifyOptions::default(),
    )?;
    println!(
        "verified:        skew {:.1} ps, latency {:.3} ns, worst slew {:.1} ps",
        verified.skew / PS,
        verified.max_latency / NS,
        verified.worst_slew / PS
    );
    assert!(
        verified.worst_slew <= synth.options().slew_limit,
        "slew limit violated"
    );
    println!("slew limit of 100 ps honored ✓");
    Ok(())
}
