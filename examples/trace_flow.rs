//! Trace flow: the `cts-obs` walkthrough CI runs end-to-end — a traced
//! batch run asserted **bit-identical** to an untraced one, the Chrome
//! trace-event export re-parsed with the workspace's own JSON parser,
//! and the wire-level `stats` op round-tripped exactly (bucket counts
//! and percentile bits equal between server and client).
//!
//! Three acts:
//!
//! 1. **Tracing changes nothing.** Run a batch untraced, install a
//!    recorder, run it again: every tree, report, and SPICE number must
//!    match bit for bit, while the recorder captures spans from every
//!    pipeline layer.
//! 2. **The trace is valid.** Export the Chrome trace-event JSON and
//!    re-parse it with `cts::net::Json` — structurally valid, every
//!    event `ph:"X"` with a name and microsecond timestamps (load the
//!    same file in Perfetto / `chrome://tracing`).
//! 3. **`stats` round-trips exactly.** Serve the traced service over
//!    TCP, fetch `stats` with the client, and check the decoded
//!    histograms against the service's own: identical bucket counts,
//!    bit-identical percentiles recomputed client-side, and wire
//!    percentile fields equal to what the decoded buckets re-derive.
//!
//! ```sh
//! cargo run --release --example trace_flow
//! ```

use cts::net::{Client, Json, Server};
use cts::obs::Recorder;
use cts::{
    BatchOptions, BatchOutput, BatchRunner, CtsOptions, Instance, ServiceOptions, SynthesisRequest,
    SynthesisService, Technology,
};
use std::sync::Arc;

fn run_batch(
    lib: &cts::DelaySlewLibrary,
    tech: &Technology,
    suite: &[Instance],
) -> Result<BatchOutput, cts::CtsError> {
    let options = CtsOptions::builder()
        .threads(2)
        .build()
        .expect("valid options");
    let mut batch = BatchOptions::default();
    batch.shards = 2;
    BatchRunner::new(lib, tech, options, batch).run(suite)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    let suite: Vec<Instance> = (0..4)
        .map(|k| {
            cts::benchmarks::generate_custom(
                &format!("trace{k}"),
                7 + k,
                2600.0 + 250.0 * k as f64,
                0x0b5 + k as u64,
            )
        })
        .collect();

    // Act 1: a traced batch is bit-identical to an untraced one.
    let untraced = run_batch(&library, &tech, &suite)?;
    let recorder = Recorder::install();
    let traced = run_batch(&library, &tech, &suite)?;
    assert_eq!(traced.items.len(), untraced.items.len());
    for (t, u) in traced.items.iter().zip(&untraced.items) {
        assert_eq!(t.result.tree, u.result.tree, "{}: tree drift", t.name);
        assert_eq!(t.result.report, u.result.report, "{}: report drift", t.name);
        assert_eq!(t.verified, u.verified, "{}: SPICE drift", t.name);
        assert_eq!(t.result.level_stats, u.result.level_stats, "{}", t.name);
    }
    recorder.collect();
    let summaries = recorder.summaries();
    assert!(
        summaries.iter().any(|s| s.name == "pipeline.merge_level"),
        "traced run captured no merge spans"
    );
    println!(
        "act 1: {} instances bit-identical traced vs untraced; {} span families recorded",
        suite.len(),
        summaries.len()
    );

    // Act 2: the Chrome trace export re-parses with our own JSON parser.
    let trace = recorder.chrome_trace();
    let parsed = Json::parse(&trace)?;
    // The export is the flat trace-event array form (no {"traceEvents"}
    // envelope) — Perfetto and chrome://tracing load both.
    let events = parsed.as_arr().expect("trace is a JSON array of events");
    assert!(!events.is_empty(), "trace exported no events");
    for event in events {
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert!(event.get("name").and_then(Json::as_str).is_some());
        assert!(event.get("ts").and_then(Json::as_f64).is_some());
        assert!(event.get("dur").and_then(Json::as_f64).is_some());
    }
    std::fs::write("target/trace_flow.json", &trace)?;
    println!(
        "act 2: {} trace events re-parsed cleanly; wrote target/trace_flow.json (open in Perfetto)",
        events.len()
    );

    // Act 3: the stats op round-trips histograms exactly. Serve the
    // still-installed recorder's process over TCP and compare the
    // client's decoded view against the service's own histograms.
    let options = CtsOptions::builder().threads(1).build()?;
    let mut svc_options = ServiceOptions::default();
    svc_options.workers = 2;
    let service = Arc::new(SynthesisService::new(
        Arc::new(library.clone()),
        Arc::new(tech.clone()),
        options,
        svc_options,
    ));
    let tickets: Vec<_> = suite
        .iter()
        .map(|inst| {
            service
                .submit(SynthesisRequest::new(inst.clone()))
                .expect("service accepts while running")
        })
        .collect();
    for ticket in tickets {
        ticket.wait()?;
    }

    let server = Server::bind("127.0.0.1:0", Arc::clone(&service))?;
    let addr = server.local_addr();
    let running = std::thread::spawn(move || server.run());
    let mut client = Client::connect(addr)?;
    let remote = client.stats()?;
    let local = service.stats();

    // Bucket counts identical, percentile bits identical — the decoded
    // histogram answers exactly as the server-side one.
    assert_eq!(
        remote.synth_latency.nonzero_buckets(),
        local.synth_latency.nonzero_buckets()
    );
    assert_eq!(remote.synth_latency, local.synth_latency);
    assert_eq!(remote.verify_latency, local.verify_latency);
    assert_eq!(remote.queue_wait, local.queue_wait_by_priority);
    for p in [50.0, 90.0, 99.0, 100.0] {
        assert_eq!(
            remote.synth_latency.percentile(p),
            local.synth_latency.percentile(p),
            "p{p} drifted across the wire"
        );
    }
    assert_eq!(remote.metrics.completed, suite.len() as u64);
    assert!(
        remote.metrics.queue_depth_high_water >= 1,
        "the queue was never observed non-empty"
    );
    assert!(
        remote.spans.iter().any(|s| s.name == "service.synth"),
        "server-side recorder summaries missing from the stats reply"
    );

    // The wire's derived percentile fields equal what the decoded
    // buckets recompute: pull the raw frame fields via a second raw
    // exchange through the JSON layer.
    let raw = cts::net::proto::encode_response(
        Some(0),
        &cts::net::proto::Response::Stats(Box::new(cts::net::StatsReply {
            workers: remote.workers,
            metrics: remote.metrics,
            queue_wait: remote.queue_wait.clone(),
            synth_latency: remote.synth_latency.clone(),
            verify_latency: remote.verify_latency.clone(),
            spans: remote.spans.clone(),
            dropped: remote.dropped,
        })),
    )
    .to_string();
    let reparsed = Json::parse(&raw)?;
    let wire_p90 = reparsed
        .get("synth_latency")
        .and_then(|h| h.get("p90_ns"))
        .and_then(Json::as_u64)
        .expect("stats frame carries p90_ns");
    assert_eq!(wire_p90, remote.synth_latency.percentile(90.0));
    println!(
        "act 3: stats round-trip exact — synth p50/p90/p99 = {}/{}/{} ns over {} samples",
        remote.synth_latency.percentile(50.0),
        remote.synth_latency.percentile(90.0),
        remote.synth_latency.percentile(99.0),
        remote.synth_latency.count()
    );

    client.shutdown()?;
    running.join().unwrap()?;
    Recorder::uninstall();
    println!("\ntrace_flow: all assertions held");
    Ok(())
}
