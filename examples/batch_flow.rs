//! Batch flow: the `BatchRunner` walkthrough — shard a suite of instances
//! over the worker pool with SPICE verification overlapped against the
//! remaining synthesis, then compare against a plain serial loop.
//!
//! This is also the end-to-end smoke test CI runs on every push (small
//! instances; the point is exercising the batch path, not benchmark
//! scale).
//!
//! ```sh
//! cargo run --release --example batch_flow            # 6 small instances
//! cargo run --release --example batch_flow -- 12      # instance count
//! ```

use cts::benchmarks::generate_custom;
use cts::spice::units::{NS, PS};
use cts::{BatchOptions, BatchRunner, CtsOptions, Instance, Synthesizer, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let count: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(6);
    // A queue of small independent requests — the production shape the
    // batch driver is built for (a benchmark suite works the same way).
    let suite: Vec<Instance> = (0..count)
        .map(|k| generate_custom(&format!("req{k}"), 8 + k % 5, 2500.0, 0xba7c + k as u64))
        .collect();

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;

    // Shard across every core, verification overlapped (the defaults).
    // The batch shards are the parallel axis, so synthesis stays serial.
    let options = CtsOptions::builder().threads(1).build()?;
    let runner = BatchRunner::new(&library, &tech, options.clone(), BatchOptions::default());
    let t0 = std::time::Instant::now();
    let out = runner.run(&suite)?;
    let batch_seconds = t0.elapsed().as_secs_f64();

    println!(
        "{:<7} {:>7} {:>12} {:>10} {:>13} {:>6}",
        "name", "#sinks", "worst slew", "skew", "max latency", "#buf"
    );
    for item in &out.items {
        println!(
            "{:<7} {:>7} {:>9.1} ps {:>7.1} ps {:>10.2} ns {:>6}",
            item.name,
            item.sinks,
            item.worst_slew() / PS,
            item.skew() / PS,
            item.max_latency() / NS,
            item.result.buffers
        );
    }
    let s = &out.summary;
    println!(
        "\nsuite: {} instances, {} sinks, {} buffers, {:.1} mm wire, worst slew {:.1} ps, \
         worst skew {:.1} ps, deepest topology {} levels",
        s.instances,
        s.sinks,
        s.buffers,
        s.wirelength_um / 1000.0,
        s.worst_slew / PS,
        s.worst_skew / PS,
        s.levels_max
    );

    // The batch contract: per-instance results are byte-identical to a
    // serial synthesize/verify loop — sharding and overlap change wall
    // time only.
    let serial = Synthesizer::new(&library, options);
    let t0 = std::time::Instant::now();
    for (item, instance) in out.items.iter().zip(&suite) {
        let reference = serial.synthesize(instance)?;
        assert_eq!(
            item.result.tree, reference.tree,
            "{}: tree drift",
            item.name
        );
        assert_eq!(item.result.report, reference.report);
    }
    let serial_synth_seconds = t0.elapsed().as_secs_f64();
    println!(
        "\nbatch (synthesize + verify, overlapped): {batch_seconds:.1} s; \
         serial re-synthesis alone: {serial_synth_seconds:.1} s"
    );
    println!("determinism: batch results identical to the serial loop ✓");
    Ok(())
}
