//! GSRC flow: synthesize one GSRC bookshelf instance end to end and print
//! a Table 5.1-style row (worst slew / skew / max latency, SPICE-verified).
//!
//! Run with (r1 by default; pass r1..r5):
//! ```sh
//! cargo run --release -p cts --example gsrc_flow -- r2
//! ```

use cts::benchmarks::{generate_gsrc, GsrcBenchmark};
use cts::spice::units::{NS, PS};
use cts::{CtsOptions, Synthesizer, Technology, VerifyOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "r1".into());
    let bench = GsrcBenchmark::all()
        .into_iter()
        .find(|b| b.name() == which)
        .ok_or_else(|| format!("unknown GSRC benchmark '{which}' (use r1..r5)"))?;

    let instance = generate_gsrc(bench);
    println!("instance: {instance}");

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    let synth = Synthesizer::new(&library, CtsOptions::default());

    let t0 = std::time::Instant::now();
    let result = synth.synthesize(&instance)?;
    println!(
        "synthesized in {:.1} s: {} buffers, {:.1} mm wire, {} levels",
        t0.elapsed().as_secs_f64(),
        result.buffers,
        result.wirelength_um / 1000.0,
        result.levels
    );

    let verified = cts::verify_tree(
        &result.tree,
        result.source,
        &tech,
        &VerifyOptions::default(),
    )?;
    println!(
        "\n{:<6} {:>8} {:>12} {:>10} {:>14}",
        "bench", "#sinks", "worst slew", "skew", "max latency"
    );
    println!(
        "{:<6} {:>8} {:>9.1} ps {:>7.1} ps {:>11.2} ns",
        bench.name(),
        instance.sinks().len(),
        verified.worst_slew / PS,
        verified.skew / PS,
        verified.max_latency / NS
    );
    Ok(())
}
