//! GSRC flow: synthesize GSRC bookshelf instances through the sharded
//! batch driver and print Table 5.1-style rows (worst slew / skew / max
//! latency, SPICE-verified).
//!
//! Run with (r1 by default; pass r1..r5, or `all` for the whole suite;
//! an optional second argument names a directory of real bookshelf
//! files — any `r<i>.bms` present is loaded instead of the synthetic
//! equivalent):
//! ```sh
//! cargo run --release --example gsrc_flow -- r2
//! cargo run --release --example gsrc_flow -- all
//! cargo run --release --example gsrc_flow -- all /path/to/gsrc/files
//! ```

use cts::benchmarks::{generate_gsrc, gsrc_from_dir, GsrcBenchmark, SuiteSource};
use cts::spice::units::{NS, PS};
use cts::{BatchOptions, BatchRunner, CtsOptions, Instance, Technology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let which = std::env::args().nth(1).unwrap_or_else(|| "r1".into());
    let dir = std::env::args().nth(2);
    let selected: Vec<GsrcBenchmark> = if which == "all" {
        GsrcBenchmark::all().to_vec()
    } else {
        let bench = GsrcBenchmark::all()
            .into_iter()
            .find(|b| b.name() == which)
            .ok_or_else(|| format!("unknown GSRC benchmark '{which}' (use r1..r5 or all)"))?;
        vec![bench]
    };
    let suite: Vec<Instance> = match &dir {
        // Real benchmark ingestion: load any converted bookshelf file in
        // the directory, fall back per file to the synthetic equivalent.
        Some(dir) => selected
            .iter()
            .map(|&b| {
                let entry = gsrc_from_dir(b, dir)?;
                match &entry.source {
                    SuiteSource::File(path) => println!("{}: loaded {}", b, path.display()),
                    SuiteSource::Synthetic => println!("{b}: no file in {dir}, synthetic"),
                }
                Ok(entry.instance)
            })
            .collect::<Result<_, String>>()?,
        None => selected.iter().map(|&b| generate_gsrc(b)).collect(),
    };
    for instance in &suite {
        println!("instance: {instance}");
    }

    let tech = Technology::nominal_45nm();
    let library = cts::timing::load_or_characterize(
        "target/ctslib_fast.v1.txt",
        &tech,
        &cts::timing::CharacterizeConfig::fast(),
    )?;
    // Even a single instance goes through the batch driver — it is the one
    // entry point for 1..N instances, and with `all` the suite shards
    // across the cores with verification overlapped. Multi-instance runs
    // parallelize on the shard axis (per-instance merge parallelism on top
    // would oversubscribe the cores); a lone instance keeps the per-level
    // parallel merges instead.
    let threads = if suite.len() > 1 { 1 } else { 0 };
    let options = CtsOptions::builder().threads(threads).build()?;
    let runner = BatchRunner::new(&library, &tech, options, BatchOptions::default());
    let t0 = std::time::Instant::now();
    let out = runner.run(&suite)?;
    println!(
        "batch of {} synthesized+verified in {:.1} s: {} buffers, {:.1} mm wire",
        out.summary.instances,
        t0.elapsed().as_secs_f64(),
        out.summary.buffers,
        out.summary.wirelength_um / 1000.0
    );

    println!(
        "\n{:<6} {:>8} {:>12} {:>10} {:>14}",
        "bench", "#sinks", "worst slew", "skew", "max latency"
    );
    for item in &out.items {
        println!(
            "{:<6} {:>8} {:>9.1} ps {:>7.1} ps {:>11.2} ns",
            item.name,
            item.sinks,
            item.worst_slew() / PS,
            item.skew() / PS,
            item.max_latency() / NS
        );
    }
    Ok(())
}
