//! Scale smoke: synthesize a synthetic scale-tier instance end to end
//! (unverified — SPICE verification of 10⁵+ sinks is a batch job, not a
//! smoke test) and report throughput, split by pipeline stage.
//!
//! Exits non-zero when a wall-clock budget is given and exceeded, which
//! is how CI pins "a 100k-sink instance synthesizes inside the budget":
//! ```sh
//! cargo run --release --example scale_flow -- 100000 300
//! cargo run --release --example scale_flow -- 1000000        # no budget
//! ```

use cts::benchmarks::generate_scale;
use cts::timing::fast_library;
use cts::{CtsOptions, Synthesizer};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_sinks: usize = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "100000".into())
        .parse()
        .map_err(|e| format!("sink count: {e}"))?;
    let budget_secs: Option<f64> = match std::env::args().nth(2) {
        Some(s) => Some(s.parse().map_err(|e| format!("budget seconds: {e}"))?),
        None => None,
    };

    let t0 = Instant::now();
    let instance = generate_scale(n_sinks, 0x5ca1e);
    println!(
        "generated {} ({} sinks, {:.0} µm die) in {:.2} s",
        instance.name(),
        instance.sinks().len(),
        instance.die().width(),
        t0.elapsed().as_secs_f64()
    );

    let options = CtsOptions::builder().threads(1).build()?;
    let synth = Synthesizer::new(fast_library(), options);
    let t1 = Instant::now();
    let result = synth.synthesize_unverified(&instance)?;
    let elapsed = t1.elapsed().as_secs_f64();

    println!(
        "synthesized {} sinks in {elapsed:.2} s ({:.0} sinks/s)",
        n_sinks,
        n_sinks as f64 / elapsed
    );
    println!(
        "  stage split: topology {:.2} s ({:.0} sinks/s), merge {:.2} s ({:.0} sinks/s)",
        result.topology_seconds,
        n_sinks as f64 / result.topology_seconds.max(1e-12),
        result.merge_seconds,
        n_sinks as f64 / result.merge_seconds.max(1e-12),
    );
    println!(
        "  tree: {} nodes, {} buffers, est. latency {:.3} ns",
        result.tree.len(),
        result.buffers,
        result.report.latency * 1e9
    );

    if let Some(budget) = budget_secs {
        if elapsed > budget {
            eprintln!("FAIL: {elapsed:.2} s exceeds the {budget:.0} s budget");
            std::process::exit(1);
        }
        println!("within budget ({elapsed:.2} s <= {budget:.0} s)");
    }
    Ok(())
}
