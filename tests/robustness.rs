//! Failure injection and degenerate inputs: the flow must either handle or
//! cleanly reject pathological instances.

use cts::geom::Point;
use cts::{CtsError, CtsOptions, Instance, Sink, Synthesizer};
use cts_timing::fast_library;

#[test]
fn single_sink() {
    let synth = Synthesizer::new(fast_library(), CtsOptions::default());
    let inst = Instance::new("one", vec![Sink::new("s", Point::new(5.0, 5.0), 20e-15)]);
    let r = synth.synthesize(&inst).expect("single sink must work");
    assert_eq!(r.levels, 0);
    assert_eq!(r.report.skew(), 0.0);
}

#[test]
fn two_coincident_sinks() {
    let synth = Synthesizer::new(fast_library(), CtsOptions::default());
    let p = Point::new(10.0, 10.0);
    let inst = Instance::new(
        "coincident",
        vec![Sink::new("a", p, 20e-15), Sink::new("b", p, 20e-15)],
    );
    let r = synth.synthesize(&inst).expect("coincident sinks must work");
    assert_eq!(r.tree.sinks_under(r.source).len(), 2);
    assert!(r.report.skew() < 1e-12);
}

#[test]
fn collinear_sinks() {
    let synth = Synthesizer::new(fast_library(), CtsOptions::default());
    let sinks = (0..9)
        .map(|i| Sink::new(format!("s{i}"), Point::new(i as f64 * 800.0, 0.0), 25e-15))
        .collect();
    let inst = Instance::new("line", sinks);
    let r = synth.synthesize(&inst).expect("collinear sinks must work");
    assert_eq!(r.tree.sinks_under(r.source).len(), 9);
}

#[test]
fn extreme_cap_spread() {
    let synth = Synthesizer::new(fast_library(), CtsOptions::default());
    let inst = Instance::new(
        "caps",
        vec![
            Sink::new("tiny", Point::new(0.0, 0.0), 1e-15),
            Sink::new("huge", Point::new(1500.0, 0.0), 80e-15),
            Sink::new("mid", Point::new(700.0, 900.0), 25e-15),
        ],
    );
    let r = synth.synthesize(&inst).expect("cap spread must work");
    assert_eq!(r.tree.sinks_under(r.source).len(), 3);
}

#[test]
fn impossible_slew_target_is_rejected_not_hung() {
    let mut opts = CtsOptions::default();
    // 1 ps slew target: no buffer can meet this on any wire.
    opts.slew_target = 1e-12;
    opts.slew_limit = 1e-12;
    let synth = Synthesizer::new(fast_library(), opts);
    let inst = Instance::new(
        "impossible",
        vec![
            Sink::new("a", Point::new(0.0, 0.0), 20e-15),
            Sink::new("b", Point::new(3000.0, 0.0), 20e-15),
        ],
    );
    match synth.synthesize(&inst) {
        Err(CtsError::SlewUnachievable { .. }) => {}
        Err(other) => panic!("expected SlewUnachievable, got {other}"),
        Ok(_) => panic!("1 ps slew target cannot succeed"),
    }
}

#[test]
fn invalid_options_surface_as_errors() {
    type OptionTweak = Box<dyn Fn(&mut CtsOptions)>;
    let cases: Vec<OptionTweak> = vec![
        Box::new(|o| o.slew_limit = -1.0),
        Box::new(|o| o.slew_target = 0.0),
        Box::new(|o| o.grid_resolution = 0),
        Box::new(|o| o.cost_alpha = -2.0),
        Box::new(|o| o.binary_search_iters = 0),
    ];
    let inst = Instance::new("opts", vec![Sink::new("s", Point::ORIGIN, 20e-15)]);
    for mutate in cases {
        let mut opts = CtsOptions::default();
        mutate(&mut opts);
        let synth = Synthesizer::new(fast_library(), opts);
        assert!(
            matches!(synth.synthesize(&inst), Err(CtsError::BadOptions(_))),
            "invalid options must be rejected"
        );
    }
}

#[test]
fn giant_die_small_sink_count() {
    // 30 mm between two sinks: dozens of buffer stages on one path.
    let synth = Synthesizer::new(fast_library(), CtsOptions::default());
    let inst = Instance::new(
        "span",
        vec![
            Sink::new("west", Point::new(0.0, 0.0), 25e-15),
            Sink::new("east", Point::new(30_000.0, 0.0), 25e-15),
        ],
    );
    let r = synth.synthesize(&inst).expect("giant span must work");
    assert!(
        r.buffers >= 10,
        "30 mm of wire needs many buffers, got {}",
        r.buffers
    );
    assert!(
        r.report.worst_slew <= synth.options().slew_limit * 1.1,
        "slew {} ps",
        r.report.worst_slew / 1e-12
    );
}
