//! The statistical determinism suite: the Monte Carlo variation axis must
//! be a *pure function* of (base library, seed, sigma, instance) — the same
//! corners produce bit-identical summaries no matter how the work is
//! scheduled (synthesis threads, batch shards, verification overlap,
//! service workers) and the same (seed, sigma) always derives the same
//! perturbed library, whichever cache (or no cache) produced it.

use cts::benchmarks::generate_custom;
use cts::timing::save_library_string;
use cts::{
    corner_seed, library_fingerprint, perturb_library, BatchOptions, BatchRunner,
    CornerLibraryCache, CtsOptions, Instance, PerturbSigma, ServiceOptions, SynthesisRequest,
    SynthesisService, Synthesizer, Technology, VariationMode, VariationSummary,
};
use cts_timing::fast_library;
use std::sync::Arc;

fn suite(n: usize) -> Vec<Instance> {
    (0..n)
        .map(|i| generate_custom(&format!("vd{i}"), 5 + i % 4, 1800.0, 0xD0C + i as u64))
        .collect()
}

fn variation_options(corners: usize, mode: VariationMode) -> CtsOptions {
    let mut o = CtsOptions::default();
    o.threads = 1;
    o.variation.corners = corners;
    o.variation.seed = 2010;
    o.variation.mode = mode;
    o
}

/// Serial ground truth: one synthesizer, one fresh cache, corners walked
/// in index order.
fn serial_reference(options: &CtsOptions, instances: &[Instance]) -> Vec<VariationSummary> {
    let synth = Synthesizer::new(fast_library(), options.clone());
    let cache = CornerLibraryCache::new();
    let fp = library_fingerprint(fast_library());
    instances
        .iter()
        .map(|inst| {
            let nominal = synth.synthesize(inst).expect("synthesis");
            synth
                .evaluate_variation_with(inst, &nominal, &cache, fp)
                .expect("corner evaluation")
                .expect("variation enabled")
        })
        .collect()
}

#[test]
fn same_seed_and_sigma_always_derive_the_same_library() {
    let base = fast_library();
    let fp = library_fingerprint(base);
    let sigma = PerturbSigma {
        buffer_delay: 0.07,
        wire_delay: 0.04,
        slew: 0.02,
    };
    let seed = corner_seed(2010, 3);

    // Two independent caches and a cache-free derivation must agree byte
    // for byte (the serialized library is the canonical byte form).
    let a = CornerLibraryCache::new().get_or_derive(base, fp, seed, &sigma);
    let b = CornerLibraryCache::new().get_or_derive(base, fp, seed, &sigma);
    let direct = perturb_library(base, seed, &sigma);
    assert_eq!(save_library_string(&a), save_library_string(&b));
    assert_eq!(save_library_string(&a), save_library_string(&direct));

    // And it is a genuinely different library from the base, while a
    // different corner of the same stream differs from both.
    assert_ne!(library_fingerprint(&a), fp);
    let other = perturb_library(base, corner_seed(2010, 4), &sigma);
    assert_ne!(save_library_string(&a), save_library_string(&other));
}

#[test]
fn corner_summaries_survive_threads_shards_and_overlap() {
    let tech = Technology::nominal_45nm();
    let instances = suite(3);
    let options = variation_options(5, VariationMode::Evaluate);
    let reference = serial_reference(&options, &instances);

    // Synthesis-thread sweep: the merge parallelism axis must not reach
    // the corner walk.
    for threads in [1usize, 2, 4] {
        let mut o = options.clone();
        o.threads = threads;
        assert_eq!(
            serial_reference(&o, &instances),
            reference,
            "summary drifted at {threads} synthesis threads"
        );
    }

    // Batch sweep: shard count and verification overlap are scheduling
    // details; every configuration folds the same rows.
    for shards in [1usize, 2, 3] {
        for overlap_verify in [false, true] {
            let batch = BatchOptions {
                shards,
                overlap_verify,
                verify: false,
                ..BatchOptions::default()
            };
            let runner = BatchRunner::new(fast_library(), &tech, options.clone(), batch);
            let out = runner.run(&instances).expect("batch run");
            for (item, want) in out.items.iter().zip(&reference) {
                assert_eq!(
                    item.variation.as_ref(),
                    Some(want),
                    "{}: summary drifted at {shards} shards (overlap {overlap_verify})",
                    item.name
                );
            }
        }
    }
}

#[test]
fn corner_summaries_survive_service_workers() {
    let tech = Technology::nominal_45nm();
    let instances = suite(3);
    let options = variation_options(5, VariationMode::Evaluate);
    let reference = serial_reference(&options, &instances);

    for workers in [1usize, 2, 4] {
        let mut svc = ServiceOptions::default();
        svc.workers = workers;
        svc.verify = false;
        let service = SynthesisService::new(
            Arc::new(fast_library().clone()),
            Arc::new(tech.clone()),
            options.clone(),
            svc,
        );
        let tickets: Vec<_> = instances
            .iter()
            .map(|inst| service.submit(SynthesisRequest::new(inst.clone())).unwrap())
            .collect();
        for (ticket, want) in tickets.into_iter().zip(&reference) {
            let done = ticket.wait().expect("synthesis succeeds");
            assert_eq!(
                done.item.variation.as_ref(),
                Some(want),
                "{}: summary drifted at {workers} service workers",
                done.item.name
            );
        }
        service.shutdown();
    }
}

#[test]
fn resynthesize_mode_is_schedule_independent() {
    let tech = Technology::nominal_45nm();
    let instances = suite(2);
    let options = variation_options(3, VariationMode::Resynthesize);
    let reference = serial_reference(&options, &instances);
    assert!(reference
        .iter()
        .all(|s| s.rows.iter().all(|r| r.resynthesized)));

    let batch = BatchOptions {
        shards: 2,
        verify: false,
        ..BatchOptions::default()
    };
    let runner = BatchRunner::new(fast_library(), &tech, options.clone(), batch);
    let out = runner.run(&instances).expect("batch run");
    for (item, want) in out.items.iter().zip(&reference) {
        assert_eq!(item.variation.as_ref(), Some(want), "{}", item.name);
    }
}

#[test]
fn golden_corner_skew_bits_are_pinned() {
    // One corner of one instance, pinned to exact bits: any change to the
    // perturbation draw order, the xoshiro stream, the fold, or the
    // synthesis flow itself moves these bits and must be deliberate.
    let instances = suite(1);
    let options = variation_options(2, VariationMode::Evaluate);
    let summary = &serial_reference(&options, &instances)[0];

    assert_eq!(summary.rows[0].seed, corner_seed(2010, 0));
    assert_eq!(
        summary.rows[0].skew.to_bits(),
        0x3DC8_267F_38E5_E92C,
        "corner 0 skew bits moved: got {:#018x}",
        summary.rows[0].skew.to_bits()
    );
    assert_eq!(
        summary.skew.max.to_bits(),
        summary.rows.iter().map(|r| r.skew.to_bits()).max().unwrap()
    );
}
