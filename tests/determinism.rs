//! Reproducibility: identical inputs produce identical trees, reports, and
//! serialized artifacts — byte for byte.

use cts::benchmarks::{bookshelf, generate_gsrc, generate_ispd, GsrcBenchmark, IspdBenchmark};
use cts::{
    BatchOptions, BatchRunner, CtsOptions, Instance, ServiceOptions, SynthesisRequest,
    SynthesisService, Synthesizer, Technology, VerifyOptions,
};
use cts_timing::fast_library;
use std::sync::Arc;

#[test]
fn benchmark_generation_is_stable() {
    // Regression pins: if the generator changes, every recorded experiment
    // changes meaning. These fingerprints catch silent drift.
    let r1 = generate_gsrc(GsrcBenchmark::R1);
    let sum: f64 = r1.sinks().iter().map(|s| s.location.x + s.location.y).sum();
    let first = &r1.sinks()[0];
    // Loose fingerprint (exact values depend only on the seeded RNG).
    assert_eq!(r1.sinks().len(), 267);
    assert!(sum > 0.0 && sum.is_finite());
    let again = generate_gsrc(GsrcBenchmark::R1);
    assert_eq!(first, &again.sinks()[0]);
    assert_eq!(r1, again);
}

#[test]
fn synthesis_is_deterministic_across_runs() {
    let lib = fast_library();
    let synth = Synthesizer::new(lib, CtsOptions::default());
    let instance = cts::benchmarks::generate_custom("det", 14, 4500.0, 77);
    let a = synth.synthesize(&instance).expect("first run");
    let b = synth.synthesize(&instance).expect("second run");
    assert_eq!(a.tree, b.tree, "trees must match node for node");
    assert_eq!(a.report, b.report);
    assert_eq!(a.buffers, b.buffers);
    assert_eq!(a.wirelength_um, b.wirelength_um);
}

/// The parallel pipeline's contract: for a GSRC-style instance, synthesis
/// with one worker and with many workers produces identical trees, buffer
/// counts, and skew — bit for bit. Merges run on detached sub-forests and
/// graft back in deterministic pair order, so the arena layout cannot
/// depend on scheduling.
#[test]
fn thread_count_does_not_change_results() {
    let lib = fast_library();
    let instance = cts::benchmarks::generate_scaled_gsrc(cts::benchmarks::GsrcBenchmark::R1, 40);
    let mut serial = CtsOptions::default();
    serial.threads = 1;
    let mut wide = CtsOptions::default();
    wide.threads = 4;

    let a = Synthesizer::new(lib, serial)
        .synthesize(&instance)
        .expect("serial synthesis");
    let b = Synthesizer::new(lib, wide)
        .synthesize(&instance)
        .expect("parallel synthesis");

    assert_eq!(a.tree, b.tree, "trees must match node for node");
    assert_eq!(a.buffers, b.buffers, "buffer counts must match");
    assert_eq!(
        a.report.skew(),
        b.report.skew(),
        "skew must be bit-identical"
    );
    assert_eq!(a.report, b.report);
    assert_eq!(a.wirelength_um, b.wirelength_um);
    assert_eq!(a.level_stats, b.level_stats);

    // And `0` (auto) agrees too, whatever the hardware provides.
    let mut auto = CtsOptions::default();
    auto.threads = 0;
    let c = Synthesizer::new(lib, auto)
        .synthesize(&instance)
        .expect("auto-threaded synthesis");
    assert_eq!(a.tree, c.tree);
}

/// The batch driver's contract: a multi-instance batch produces per-
/// instance `CtsResult`s byte-identical to serial `Synthesizer::synthesize`
/// calls — for every shard count and with verification overlap on or off.
/// Sharding, scratch reuse, and the two-stage scheduling change wall time
/// only.
#[test]
fn batch_shard_count_and_overlap_do_not_change_results() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let suite: Vec<Instance> = vec![
        cts::benchmarks::generate_custom("b0", 9, 2800.0, 11),
        cts::benchmarks::generate_custom("b1", 12, 3600.0, 12),
        cts::benchmarks::generate_scaled_gsrc(GsrcBenchmark::R1, 10),
    ];
    let mut options = CtsOptions::default();
    options.threads = 1;

    // Serial references: the plain per-instance loop the batch must match.
    let synth = Synthesizer::new(lib, options.clone());
    let references: Vec<_> = suite
        .iter()
        .map(|inst| {
            let r = synth.synthesize(inst).expect("serial synthesis");
            let v = cts::verify_tree(&r.tree, r.source, &tech, &VerifyOptions::default())
                .expect("serial verification");
            (r, v)
        })
        .collect();

    for shards in [1usize, 2, 4] {
        for overlap_verify in [true, false] {
            let mut batch = BatchOptions::default();
            batch.shards = shards;
            batch.overlap_verify = overlap_verify;
            let runner = BatchRunner::new(lib, &tech, options.clone(), batch);
            let out = runner
                .run(&suite)
                .unwrap_or_else(|e| panic!("batch shards={shards}: {e}"));
            assert_eq!(out.items.len(), suite.len());
            for (item, (reference, verified)) in out.items.iter().zip(&references) {
                let ctxt = format!(
                    "{} with shards={shards}, overlap_verify={overlap_verify}",
                    item.name
                );
                assert_eq!(item.result.tree, reference.tree, "{ctxt}: tree drift");
                assert_eq!(item.result.source, reference.source, "{ctxt}");
                assert_eq!(item.result.report, reference.report, "{ctxt}");
                assert_eq!(item.result.buffers, reference.buffers, "{ctxt}");
                assert_eq!(item.result.wirelength_um, reference.wirelength_um, "{ctxt}");
                assert_eq!(item.result.level_stats, reference.level_stats, "{ctxt}");
                assert_eq!(
                    item.verified.as_ref().expect("verification enabled"),
                    verified,
                    "{ctxt}: SPICE numbers drift"
                );
            }
        }
    }
}

/// The service's contract: a request streamed through the long-running
/// [`SynthesisService`] resolves to results byte-identical to a direct
/// serial `Synthesizer::synthesize` + `verify_tree` call — for every
/// worker count. Queueing, priorities, warm per-worker scratch, and the
/// overlapped verify stage change wall time only.
#[test]
fn service_worker_count_does_not_change_results() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let suite: Vec<Instance> = vec![
        cts::benchmarks::generate_custom("s0", 8, 2600.0, 21),
        cts::benchmarks::generate_custom("s1", 11, 3400.0, 22),
        cts::benchmarks::generate_scaled_gsrc(GsrcBenchmark::R1, 12),
    ];
    let mut options = CtsOptions::default();
    options.threads = 1;

    // Serial references: the plain per-instance loop the service must match.
    let synth = Synthesizer::new(lib, options.clone());
    let references: Vec<_> = suite
        .iter()
        .map(|inst| {
            let r = synth.synthesize(inst).expect("serial synthesis");
            let v = cts::verify_tree(&r.tree, r.source, &tech, &VerifyOptions::default())
                .expect("serial verification");
            (r, v)
        })
        .collect();

    for workers in [1usize, 2, 4] {
        let mut svc_options = ServiceOptions::default();
        svc_options.workers = workers;
        let service = SynthesisService::new(
            Arc::new(lib.clone()),
            Arc::new(tech.clone()),
            options.clone(),
            svc_options,
        );
        let tickets: Vec<_> = suite
            .iter()
            .enumerate()
            .map(|(k, inst)| {
                // Mixed priorities: scheduling order must not leak into
                // the results.
                service
                    .submit(SynthesisRequest::new(inst.clone()).with_priority(k as i32 % 2))
                    .expect("service accepts")
            })
            .collect();
        for (ticket, ((reference, verified), inst)) in
            tickets.into_iter().zip(references.iter().zip(&suite))
        {
            let done = ticket
                .wait()
                .unwrap_or_else(|e| panic!("workers={workers}: {e}"));
            let ctxt = format!("{} with workers={workers}", inst.name());
            assert_eq!(done.item.result.tree, reference.tree, "{ctxt}: tree drift");
            assert_eq!(done.item.result.source, reference.source, "{ctxt}");
            assert_eq!(done.item.result.report, reference.report, "{ctxt}");
            assert_eq!(done.item.result.buffers, reference.buffers, "{ctxt}");
            assert_eq!(
                done.item.result.wirelength_um, reference.wirelength_um,
                "{ctxt}"
            );
            assert_eq!(
                done.item.result.level_stats, reference.level_stats,
                "{ctxt}"
            );
            assert_eq!(
                done.item.verified.as_ref().expect("verification enabled"),
                verified,
                "{ctxt}: SPICE numbers drift"
            );
        }
        service.shutdown();
    }
}

/// The observability contract: installing a span recorder must not
/// change synthesis results — not the tree, not the timing report, not
/// the SPICE numbers, not the serialized wire frame — by a single byte.
/// Tracing observes the flow; it never participates in it.
#[test]
fn tracing_does_not_change_results() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let instance = cts::benchmarks::generate_custom("traced", 13, 4200.0, 33);
    let mut options = CtsOptions::default();
    options.threads = 2;
    // Exercise the Monte Carlo corner axis under tracing too.
    options.variation.corners = 4;

    let run_once = || {
        let mut svc_options = ServiceOptions::default();
        svc_options.workers = 2;
        let service = SynthesisService::new(
            Arc::new(lib.clone()),
            Arc::new(tech.clone()),
            options.clone(),
            svc_options,
        );
        let ticket = service
            .submit(SynthesisRequest::new(instance.clone()))
            .expect("service accepts");
        let result = ticket.wait().expect("request completes");
        service.shutdown();
        result
    };

    // Baseline: no recorder installed anywhere in the process.
    let baseline = run_once();

    // Traced: the same run with a recording recorder installed.
    let recorder = cts::obs::Recorder::install();
    let traced = run_once();
    let summaries = {
        recorder.collect();
        recorder.summaries()
    };
    cts::obs::Recorder::uninstall();

    assert_eq!(traced.item.result.tree, baseline.item.result.tree);
    assert_eq!(traced.item.result.source, baseline.item.result.source);
    assert_eq!(traced.item.result.report, baseline.item.result.report);
    assert_eq!(traced.item.result.buffers, baseline.item.result.buffers);
    assert_eq!(
        traced.item.result.wirelength_um,
        baseline.item.result.wirelength_um
    );
    assert_eq!(
        traced.item.result.level_stats,
        baseline.item.result.level_stats
    );
    assert_eq!(traced.item.verified, baseline.item.verified);
    assert_eq!(traced.item.variation, baseline.item.variation);

    // The wire frame a server would push for each run is byte-identical
    // (modulo the two wall-clock duration fields, which vary run to run
    // whether or not tracing is on — zeroed so the comparison pins every
    // deterministic byte).
    let frame = |r: &cts::SynthesisResult| {
        let mut r = r.clone();
        r.item.synth_seconds = 0.0;
        r.item.verify_seconds = 0.0;
        let event = cts::net::proto::ResultEvent {
            id: r.id.0,
            outcome: cts::net::Outcome::from_service(&Ok(r)),
        };
        cts::net::proto::encode_event(&event).to_string()
    };
    assert_eq!(frame(&traced), frame(&baseline));

    // And the recorder actually recorded: the traced run produced spans
    // from every layer it crossed.
    let names: Vec<&str> = summaries.iter().map(|s| s.name).collect();
    for expected in [
        "pipeline.match_level",
        "pipeline.merge_level",
        "service.synth",
        "service.queue_wait",
        "verify.tree",
        "batch.corner_stage",
    ] {
        assert!(
            names.contains(&expected),
            "span '{expected}' missing from traced run; got {names:?}"
        );
    }
}

#[test]
fn bookshelf_roundtrip_is_identity_for_all_benchmarks() {
    for b in GsrcBenchmark::all() {
        let inst = generate_gsrc(b);
        let text = bookshelf::to_string(&inst);
        let back = bookshelf::parse_str(b.name(), &text).expect("parse");
        assert_eq!(inst.sinks().len(), back.sinks().len());
    }
    for b in IspdBenchmark::all() {
        let inst = generate_ispd(b);
        let text = bookshelf::to_string(&inst);
        let back = bookshelf::parse_str(b.name(), &text).expect("parse");
        assert_eq!(inst.sinks().len(), back.sinks().len());
    }
}

#[test]
fn library_serialization_roundtrip_preserves_queries() {
    use cts::timing::{load_library_str, save_library_string, Load};
    let lib = fast_library();
    let text = save_library_string(lib);
    let back = load_library_str(&text).expect("parse");
    for drive in lib.buffer_ids() {
        for load in lib.buffer_ids() {
            let q1 = lib.single_wire(drive, Load::Buffer(load), 55e-12, 640.0);
            let q2 = back.single_wire(drive, Load::Buffer(load), 55e-12, 640.0);
            assert_eq!(q1, q2, "query drift after roundtrip ({drive}, {load})");
        }
    }
}
