//! Service metrics under concurrency: counters must be monotone while
//! four workers hammer mixed batches, and the final totals must equal
//! what a serial accounting of the same work predicts. The counters are
//! relaxed atomics — this suite pins that "relaxed" never means
//! "backwards" or "lossy", only "momentarily skewed between counters".

use cts::{
    CtsOptions, Instance, ServiceMetrics, ServiceOptions, SynthesisRequest, SynthesisService,
    Technology,
};
use cts_timing::fast_library;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Every cumulative counter pair must satisfy `before <= after`;
/// `queue_depth` is a gauge and exempt.
fn assert_monotone(before: &ServiceMetrics, after: &ServiceMetrics) {
    let pairs = [
        ("submitted", before.submitted, after.submitted),
        ("completed", before.completed, after.completed),
        ("cancelled", before.cancelled, after.cancelled),
        ("expired", before.expired, after.expired),
        ("failed", before.failed, after.failed),
        (
            "stages_simulated",
            before.stages_simulated,
            after.stages_simulated,
        ),
        ("stages_reused", before.stages_reused, after.stages_reused),
        ("symbolic_hits", before.symbolic_hits, after.symbolic_hits),
        (
            "symbolic_misses",
            before.symbolic_misses,
            after.symbolic_misses,
        ),
        (
            "sinks_synthesized",
            before.sinks_synthesized,
            after.sinks_synthesized,
        ),
        (
            "sinks_verified",
            before.sinks_verified,
            after.sinks_verified,
        ),
        (
            "corners_evaluated",
            before.corners_evaluated,
            after.corners_evaluated,
        ),
        (
            "corner_lib_hits",
            before.corner_lib_hits,
            after.corner_lib_hits,
        ),
        (
            "corner_lib_misses",
            before.corner_lib_misses,
            after.corner_lib_misses,
        ),
        (
            "queue_depth_high_water",
            before.queue_depth_high_water,
            after.queue_depth_high_water,
        ),
    ];
    for (name, b, a) in pairs {
        assert!(b <= a, "counter '{name}' went backwards: {b} -> {a}");
    }
    let seconds = [
        ("synth_seconds", before.synth_seconds, after.synth_seconds),
        (
            "verify_seconds",
            before.verify_seconds,
            after.verify_seconds,
        ),
        (
            "topology_seconds",
            before.topology_seconds,
            after.topology_seconds,
        ),
        ("merge_seconds", before.merge_seconds, after.merge_seconds),
    ];
    for (name, b, a) in seconds {
        assert!(b <= a, "accumulator '{name}' went backwards: {b} -> {a}");
    }
}

#[test]
fn hammered_counters_stay_monotone_and_sum_exactly() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let mut options = CtsOptions::default();
    options.threads = 1; // the 4 worker shards are the parallel axis

    // Eight distinct tiny instances, so verification always simulates
    // fresh work (no cross-request stage reuse to reason about).
    let instances: Vec<Instance> = (0..8)
        .map(|k| {
            cts::benchmarks::generate_custom(
                &format!("m{k}"),
                6 + k,
                2200.0 + 300.0 * k as f64,
                100 + k as u64,
            )
        })
        .collect();
    let total_sinks: u64 = instances.iter().map(|i| i.sinks().len() as u64).sum();

    let mut svc_options = ServiceOptions::default();
    svc_options.workers = 4;
    svc_options.verify = true;
    let service = Arc::new(SynthesisService::new(
        Arc::new(lib.clone()),
        Arc::new(tech),
        options,
        svc_options,
    ));

    // A sampler thread snapshots metrics as fast as it can for the whole
    // run; any counter moving backwards fails the test at join.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut samples = 0u64;
            let mut previous = service.metrics();
            while !stop.load(Ordering::Acquire) {
                let now = service.metrics();
                assert_monotone(&previous, &now);
                previous = now;
                samples += 1;
            }
            samples
        })
    };

    // Two mixed batches (atomic admission) across a priority spread.
    let mut tickets = Vec::new();
    for half in instances.chunks(4) {
        let requests: Vec<SynthesisRequest> = half
            .iter()
            .enumerate()
            .map(|(k, inst)| SynthesisRequest::new(inst.clone()).with_priority(k as i32 % 3 - 1))
            .collect();
        tickets.extend(service.submit_batch(requests).expect("batch admitted"));
    }
    for ticket in tickets {
        ticket.wait().expect("request completes");
    }
    service.shutdown();
    stop.store(true, Ordering::Release);
    let samples = sampler.join().expect("sampler saw only monotone counters");
    assert!(samples > 0, "the sampler never ran");

    // Final totals: exactly the serial accounting of the same work.
    let m = service.metrics();
    assert_eq!(m.submitted, 8);
    assert_eq!(m.completed, 8);
    assert_eq!(m.cancelled, 0);
    assert_eq!(m.expired, 0);
    assert_eq!(m.failed, 0);
    assert_eq!(m.queue_depth, 0);
    assert_eq!(m.sinks_synthesized, total_sinks);
    assert_eq!(m.sinks_verified, total_sinks);
    assert_eq!(m.corners_evaluated, 0, "no request enabled variation");
    // The high-water gauge saw at least one queued request and never
    // more than everything submitted at once.
    assert!(
        (1..=8).contains(&m.queue_depth_high_water),
        "queue_depth_high_water = {}",
        m.queue_depth_high_water
    );

    // The latency histograms agree with the counters: one synth and one
    // verify sample per completed request, and the per-priority queue
    // wait histograms partition all eight.
    let stats = service.stats();
    assert_eq!(stats.synth_latency.count(), 8);
    assert_eq!(stats.verify_latency.count(), 8);
    let waits: u64 = stats
        .queue_wait_by_priority
        .iter()
        .map(|(_, h)| h.count())
        .sum();
    assert_eq!(waits, 8);
    let priorities: Vec<i32> = stats
        .queue_wait_by_priority
        .iter()
        .map(|&(p, _)| p)
        .collect();
    assert_eq!(priorities, vec![-1, 0, 1], "sorted priority keys");
}
