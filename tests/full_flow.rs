//! End-to-end integration: synthesize benchmark-shaped instances and check
//! the paper's headline claims on the SPICE-verified netlist.

use cts::benchmarks::{generate_custom, generate_scaled_gsrc, GsrcBenchmark};
use cts::spice::units::PS;
use cts::{CtsOptions, Synthesizer, Technology, VerifyOptions};
use cts_timing::fast_library;

/// Headline claim (§5.1 / Table 5.1): the verified worst slew honors the
/// 100 ps limit, and skew stays a small fraction of latency.
#[test]
fn scaled_gsrc_honors_slew_and_skew() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let synth = Synthesizer::new(lib, CtsOptions::default());

    // A scaled-down r1 (same die, fewer sinks) keeps runtime test-friendly
    // while exercising multi-level merges and long routes.
    let instance = generate_scaled_gsrc(GsrcBenchmark::R1, 24);
    let result = synth.synthesize(&instance).expect("synthesis");
    assert_eq!(result.tree.sinks_under(result.source).len(), 24);
    assert!(result.buffers > 0, "a 7 mm die demands buffers");

    let verified = cts::verify_tree(
        &result.tree,
        result.source,
        &tech,
        &VerifyOptions::default(),
    )
    .expect("verification");
    assert!(
        verified.worst_slew <= synth.options().slew_limit,
        "worst slew {} ps breaks the 100 ps limit",
        verified.worst_slew / PS
    );
    // The paper reports skew at 3-5 % of latency on full-size instances
    // with its production-tuned flow; this reproduction lands at 10-20 %
    // on scaled instances (see EXPERIMENTS.md for the gap analysis). The
    // bound below guards against regressions, not parity.
    assert!(
        verified.skew <= 0.22 * verified.max_latency,
        "skew {} ps vs latency {} ps",
        verified.skew / PS,
        verified.max_latency / PS
    );
}

/// The engine's estimates must track verified reality (the paper's
/// argument for library-based analysis): latency within a few percent,
/// skew within a hand-countable number of ps.
#[test]
fn engine_tracks_verification() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let synth = Synthesizer::new(lib, CtsOptions::default());
    let instance = generate_custom("track", 16, 5000.0, 99);
    let result = synth.synthesize(&instance).expect("synthesis");
    let verified = cts::verify_tree(
        &result.tree,
        result.source,
        &tech,
        &VerifyOptions::default(),
    )
    .expect("verification");

    let latency_err = (result.report.latency - verified.max_latency).abs() / verified.max_latency;
    assert!(
        latency_err < 0.08,
        "engine latency off by {:.1} % ({} vs {} ps)",
        latency_err * 100.0,
        result.report.latency / PS,
        verified.max_latency / PS
    );
    let skew_err = (result.report.skew() - verified.skew).abs();
    assert!(
        skew_err < 40.0 * PS,
        "engine skew {} ps vs verified {} ps",
        result.report.skew() / PS,
        verified.skew / PS
    );
}

/// Aggressive insertion vs the merge-node-only policy (Fig. 1.2): on a die
/// too large for merge-node buffering, only the aggressive flow keeps the
/// verified slew legal.
#[test]
fn aggressive_beats_merge_node_only_buffering() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let opts = CtsOptions::default();
    let instance = generate_custom("wide", 12, 9000.0, 5);

    let aggressive = Synthesizer::new(lib, opts.clone())
        .synthesize(&instance)
        .expect("aggressive synthesis");
    let v_aggressive = cts::verify_tree(
        &aggressive.tree,
        aggressive.source,
        &tech,
        &VerifyOptions::default(),
    )
    .expect("verify aggressive");

    let baseline = cts::core::baseline::merge_node_buffering(lib, &opts, &instance)
        .expect("baseline construction");
    let v_baseline = cts::verify_tree(
        &baseline.tree,
        baseline.source,
        &tech,
        &VerifyOptions::default(),
    );

    assert!(
        v_aggressive.worst_slew <= opts.slew_limit,
        "aggressive slew {} ps must be legal",
        v_aggressive.worst_slew / PS
    );
    // The baseline either fails verification outright (a node never
    // completes its transition) or reports a slew violation.
    match v_baseline {
        Err(_) => {}
        Ok(v) => assert!(
            v.worst_slew > opts.slew_limit,
            "merge-node-only buffering should not hold slew on a 9 mm die, got {} ps",
            v.worst_slew / PS
        ),
    }
}

/// All three H-correction modes deliver structurally valid, slew-legal
/// trees on the same instance.
#[test]
fn hcorrection_modes_full_flow() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let instance = generate_custom("hmodes", 12, 4000.0, 11);
    for mode in [
        cts::HCorrection::Off,
        cts::HCorrection::ReEstimate,
        cts::HCorrection::Correct,
    ] {
        let mut opts = CtsOptions::default();
        opts.h_correction = mode;
        let synth = Synthesizer::new(lib, opts);
        let result = synth.synthesize(&instance).expect("synthesis");
        assert_eq!(result.tree.sinks_under(result.source).len(), 12);
        let verified = cts::verify_tree(
            &result.tree,
            result.source,
            &tech,
            &VerifyOptions::default(),
        )
        .expect("verification");
        assert!(
            verified.worst_slew <= synth.options().slew_limit,
            "{mode}: slew {} ps",
            verified.worst_slew / PS
        );
    }
}
