//! Cross-crate timing accuracy: the library-based engine against full
//! circuit simulation on synthesized trees of varying shapes.

use cts::benchmarks::generate_custom;
use cts::spice::units::PS;
use cts::{CtsOptions, Synthesizer, Technology, TimingEngine, VerifyOptions};
use cts_timing::fast_library;

/// Per-sink arrival times from the engine and the simulator must agree in
/// *ordering* for clearly separated sinks — the engine steers the binary
/// search, so systematic inversions would corrupt balancing.
#[test]
fn per_sink_arrival_ordering_agrees() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let synth = Synthesizer::new(lib, CtsOptions::default());
    let instance = generate_custom("order", 10, 6000.0, 123);
    let result = synth.synthesize(&instance).expect("synthesis");

    let engine = TimingEngine::new(lib);
    let est = engine.evaluate(&result.tree, result.source, synth.options().source_slew);
    let ver = cts::verify_tree(
        &result.tree,
        result.source,
        &tech,
        &VerifyOptions::default(),
    )
    .expect("verification");

    let est_map = est.arrival_map();
    let ver_map: std::collections::HashMap<_, _> = ver.sink_arrivals.iter().copied().collect();
    let mut checked = 0;
    for (&a, &ta) in &est_map {
        for (&b, &tb) in &est_map {
            // Only check pairs the engine separates by > 20 ps.
            if ta + 20.0 * PS < tb {
                assert!(
                    ver_map[&a] < ver_map[&b] + 10.0 * PS,
                    "engine says {a} << {b} but simulation disagrees"
                );
                checked += 1;
            }
        }
    }
    assert!(
        checked > 0,
        "test must exercise at least one separated pair"
    );
}

/// Engine worst-slew and verified worst-slew agree within the margin the
/// flow reserves (target 80 ps vs limit 100 ps).
#[test]
fn worst_slew_estimates_track() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let synth = Synthesizer::new(lib, CtsOptions::default());
    for seed in [1u64, 2, 3] {
        let instance = generate_custom("slews", 8, 7000.0, seed);
        let result = synth.synthesize(&instance).expect("synthesis");
        let ver = cts::verify_tree(
            &result.tree,
            result.source,
            &tech,
            &VerifyOptions::default(),
        )
        .expect("verification");
        let err = (result.report.worst_slew - ver.worst_slew).abs();
        assert!(
            err < 25.0 * PS,
            "seed {seed}: engine slew {} ps vs verified {} ps",
            result.report.worst_slew / PS,
            ver.worst_slew / PS
        );
    }
}

/// The Elmore-based DME baseline really is optimistic: its model skew is
/// near zero, but simulation of the same unbuffered tree reveals slew
/// violations on a big die (the gap the paper's Chapter 3 documents).
#[test]
fn dme_model_vs_reality_gap() {
    let lib = fast_library();
    let opts = CtsOptions::default();
    let instance = generate_custom("gap", 10, 9000.0, 17);
    let base = cts::core::baseline::dme_zero_skew(lib, &opts, &instance).expect("dme");

    // Elmore believes the tree is balanced...
    let delays: Vec<f64> = base.elmore_sink_delays.iter().map(|&(_, d)| d).collect();
    let spread = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - delays.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = delays.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        spread <= 0.02 * max.max(1e-12),
        "DME should be Elmore-balanced"
    );

    // ...but the unbuffered net on a 9 mm die cannot pass a slew check.
    let tech = Technology::nominal_45nm();
    match cts::verify_tree(&base.tree, base.source, &tech, &VerifyOptions::default()) {
        Err(_) => {} // transition never completes: maximal violation
        Ok(v) => assert!(
            v.worst_slew > opts.slew_limit,
            "unbuffered 9 mm tree should violate slew, got {} ps",
            v.worst_slew / PS
        ),
    }
}
