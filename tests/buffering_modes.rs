//! Both buffering modes — the default greedy inserter and the van
//! Ginneken bottom-up candidate search — must deliver slew-legal,
//! SPICE-verified trees across the reduced evaluation suite, and the
//! van Ginneken mode must be deterministic and never estimate worse
//! latency than greedy on the same topology (its search space contains
//! every greedy placement).

use cts::benchmarks::reduced_suite;
use cts::spice::units::PS;
use cts::{Buffering, CtsOptions, Synthesizer, Technology, VerifyOptions};
use cts_timing::fast_library;

#[test]
fn both_modes_hold_slew_across_the_reduced_suite() {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    for mode in [Buffering::Greedy, Buffering::VanGinneken] {
        let mut options = CtsOptions::default();
        options.buffering = mode;
        let synth = Synthesizer::new(lib, options);
        for instance in reduced_suite(16) {
            let result = synth.synthesize(&instance).expect("synthesis");
            let verified = cts::verify_tree(
                &result.tree,
                result.source,
                &tech,
                &VerifyOptions::default(),
            )
            .expect("verification");
            assert!(
                verified.worst_slew <= synth.options().slew_limit,
                "{mode} on {}: worst slew {} ps breaks the {} ps limit",
                instance.name(),
                verified.worst_slew / PS,
                synth.options().slew_limit / PS
            );
        }
    }
}

#[test]
fn van_ginneken_is_deterministic_and_tracks_greedy() {
    let lib = fast_library();
    let greedy = Synthesizer::new(lib, CtsOptions::default());
    let mut vg_options = CtsOptions::default();
    vg_options.buffering = Buffering::VanGinneken;
    let vg = Synthesizer::new(lib, vg_options);

    for instance in reduced_suite(24) {
        let g = greedy.synthesize_unverified(&instance).expect("greedy");
        let v1 = vg.synthesize_unverified(&instance).expect("vg");
        let v2 = vg.synthesize_unverified(&instance).expect("vg again");
        assert_eq!(
            v1.tree,
            v2.tree,
            "{}: VG must be deterministic",
            instance.name()
        );
        assert_eq!(v1.report.latency, v2.report.latency, "{}", instance.name());
        // VG is per-side optimal for the committed-arrival estimate (the
        // maze-level tests pin that), but per-side optimality does not
        // compose to global tree latency: different placements change
        // the loads and unbuffered depths presented to upstream merges.
        // Bound the divergence instead — both modes must land in the
        // same latency regime on the same topology. (VG leaves more
        // unbuffered top wire per side — cheapest for the local arrival
        // estimate — which upstream stages then pay for; observed up to
        // ~1.4x on the reduced ISPD dies.)
        assert!(
            v1.report.latency <= g.report.latency * 1.5,
            "{}: VG latency {} ps far off greedy's {} ps",
            instance.name(),
            v1.report.latency / PS,
            g.report.latency / PS
        );
    }
}
