//! Property-based tests for the Manhattan geometry substrate.

use cts_geom::{ManhattanArc, Point, Rect, RoutingGrid, Segment};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    // Chip-scale coordinates: ±20 mm in µm.
    -20_000.0..20_000.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (coord(), coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Manhattan distance is a metric: symmetry, identity, triangle
    /// inequality.
    #[test]
    fn manhattan_is_a_metric(a in point(), b in point(), c in point()) {
        let ab = a.manhattan_dist(b);
        let ba = b.manhattan_dist(a);
        prop_assert!((ab - ba).abs() < 1e-9 * ab.max(1.0));
        prop_assert!(a.manhattan_dist(a) == 0.0);
        let ac = a.manhattan_dist(c);
        let cb = c.manhattan_dist(b);
        prop_assert!(ab <= ac + cb + 1e-9 * (ac + cb).max(1.0));
    }

    /// L2 <= L1 <= sqrt(2) * L2.
    #[test]
    fn norm_equivalence(a in point(), b in point()) {
        let l1 = a.manhattan_dist(b);
        let l2 = a.euclidean_dist(b);
        prop_assert!(l2 <= l1 + 1e-9);
        prop_assert!(l1 <= l2 * std::f64::consts::SQRT_2 + 1e-9);
    }

    /// The rotated frame preserves information and maps L1 to Chebyshev.
    #[test]
    fn rotation_roundtrip(p in point()) {
        let (u, v) = p.to_rotated();
        let q = Point::from_rotated(u, v);
        prop_assert!(p.manhattan_dist(q) < 1e-6);
    }

    /// Bounding boxes contain all of their points.
    #[test]
    fn bounding_contains_all(pts in prop::collection::vec(point(), 1..40)) {
        let bb = Rect::bounding(pts.iter().copied()).unwrap();
        for p in &pts {
            prop_assert!(bb.contains(*p));
        }
    }

    /// A detour-free merge arc, when it exists, satisfies both radius
    /// constraints everywhere along the arc.
    #[test]
    fn merge_arc_radii_are_exact(
        n1 in point(),
        n2 in point(),
        frac in 0.0..1.0f64,
    ) {
        let d = n1.manhattan_dist(n2);
        prop_assume!(d > 1e-6);
        let l1 = frac * d;
        let l2 = d - l1;
        let arc = ManhattanArc::from_radii(n1, n2, l1, l2)
            .expect("tight radii must always produce an arc");
        // Scale-aware bound: coordinates up to 4e4, so 1e-7 relative.
        prop_assert!(arc.radius_error() <= 1e-6 * d.max(1.0),
            "radius error {} for d = {}", arc.radius_error(), d);
        prop_assert!(arc.segment().is_manhattan_arc());
    }

    /// Segment closest-point never does worse than both endpoints.
    #[test]
    fn closest_point_dominates_endpoints(a in point(), b in point(), p in point()) {
        let s = Segment::new(a, b);
        let q = s.closest_point_manhattan(p);
        let dq = q.manhattan_dist(p);
        prop_assert!(dq <= a.manhattan_dist(p) + 1e-9 * dq.max(1.0));
        prop_assert!(dq <= b.manhattan_dist(p) + 1e-9 * dq.max(1.0));
    }

    /// Every grid keeps its pitch under the dynamic-sizing cap, covers both
    /// endpoints, and nearest_cell is consistent with cell_center.
    #[test]
    fn grid_invariants(a in point(), b in point()) {
        let g = RoutingGrid::between(a, b, 45);
        prop_assert!(g.pitch_x() <= cts_geom::MAX_CELL_PITCH_UM + 1e-9);
        prop_assert!(g.pitch_y() <= cts_geom::MAX_CELL_PITCH_UM + 1e-9);
        prop_assert!(g.region().contains(a));
        prop_assert!(g.region().contains(b));
        for p in [a, b, a.midpoint(b)] {
            let c = g.nearest_cell(p);
            prop_assert!(g.in_bounds(c));
            // Center of the chosen cell is within one cell of the query.
            prop_assert!(g.cell_center(c).manhattan_dist(p)
                <= g.pitch_x() + g.pitch_y() + 1e-9);
        }
    }

    /// Grid neighbors are symmetric: if b is a neighbor of a, a is one of b.
    #[test]
    fn grid_neighbor_symmetry(a in point(), b in point(), col in 0u32..1000, row in 0u32..1000) {
        let g = RoutingGrid::between(a, b, 45);
        let id = cts_geom::CellId::new(col % g.cols(), row % g.rows());
        for n in g.neighbors(id) {
            prop_assert!(g.neighbors(n).any(|m| m == id));
        }
    }
}
