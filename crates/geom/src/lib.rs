//! Manhattan (rectilinear) geometry substrate for clock tree synthesis.
//!
//! Clock routing in the target paper — and in VLSI physical design generally —
//! happens in the L1 (Manhattan) metric: wires run horizontally and
//! vertically, so the length of a shortest connection between two points is
//! `|dx| + |dy|`. This crate provides the geometric vocabulary the rest of
//! the workspace builds on:
//!
//! * [`Point`] — a location in µm with Manhattan-distance helpers,
//! * [`Rect`] — axis-aligned bounding boxes,
//! * [`ManhattanArc`] — the ±45° segments that arise as loci of equal
//!   Manhattan distance (the "merge segments" of DME-style algorithms),
//! * [`RoutingGrid`] — the dynamically sized maze-routing grid of §4.2 of the
//!   paper (default R = 45 cells per dimension of the bounding box).
//!
//! All coordinates are in micrometers (µm) throughout the workspace.
//!
//! # Example
//!
//! ```
//! use cts_geom::{Point, RoutingGrid};
//!
//! let a = Point::new(0.0, 0.0);
//! let b = Point::new(300.0, 400.0);
//! assert_eq!(a.manhattan_dist(b), 700.0);
//!
//! let grid = RoutingGrid::between(a, b, 45);
//! assert!(grid.cell_count() >= 45 * 45);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arc;
mod grid;
mod point;
mod rect;
mod segment;

pub use arc::ManhattanArc;
pub use grid::{CellId, RoutingGrid, MAX_CELL_PITCH_UM};
pub use point::Point;
pub use rect::Rect;
pub use segment::Segment;

/// Relative tolerance used by geometric equality checks in this crate.
///
/// Coordinates are in µm; a nanometer (1e-3 µm) is far below manufacturing
/// grid resolution, so two coordinates closer than this are "the same".
pub const GEOM_EPS: f64 = 1e-6;

/// Returns `true` if `a` and `b` are equal within [`GEOM_EPS`] scaled by
/// magnitude.
///
/// ```
/// assert!(cts_geom::approx_eq(1.0, 1.0 + 1e-9));
/// assert!(!cts_geom::approx_eq(1.0, 1.1));
/// ```
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= GEOM_EPS * scale
}
