//! Manhattan arcs: loci of prescribed Manhattan distances from two centers.
//!
//! The DME merge-segment construction (paper §2.2) needs "the set of points
//! at Manhattan distance `l1` from `n1` and `l2` from `n2`". In the L1
//! metric a "circle" of radius `r` is a diamond (a square rotated 45°), and
//! the intersection of two diamonds whose radii sum to at least the
//! center-to-center distance is a ±45° segment — a *Manhattan arc*.

use crate::{Point, Segment};

/// The locus of points at Manhattan distance `l1` from one center and `l2`
/// from another — the merge segment of zero-skew clock routing.
///
/// Constructed with [`ManhattanArc::from_radii`]; the result is a ±45°
/// [`Segment`] (possibly degenerate to a point).
///
/// ```
/// use cts_geom::{ManhattanArc, Point};
/// let n1 = Point::new(0.0, 0.0);
/// let n2 = Point::new(10.0, 0.0);
/// // Balanced merge point exactly in the middle:
/// let arc = ManhattanArc::from_radii(n1, n2, 5.0, 5.0).unwrap();
/// let seg = arc.segment();
/// assert!(seg.is_manhattan_arc());
/// assert!((seg.midpoint().x - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManhattanArc {
    segment: Segment,
    l1: f64,
    l2: f64,
    n1: Point,
    n2: Point,
}

impl ManhattanArc {
    /// Computes the detour-free Manhattan arc at distance `l1` from `n1` and
    /// `l2` from `n2`.
    ///
    /// This is the merge-segment construction of zero-skew routing, which is
    /// only meaningful when the connection takes no detour: `l1 + l2` must
    /// equal `dist(n1, n2)` (within a small numerical slack). Returns `None`
    /// for negative/non-finite radii or radii that are not tight — callers
    /// that need extra wirelength (wire snaking) handle that separately, as
    /// the paper's balance stage does (§4.2.1).
    ///
    /// The implementation works in the rotated frame `(u, v) = (x+y, x−y)`,
    /// where each diamond becomes an axis-aligned square of half-side `l`,
    /// and two tightly touching square boundaries meet in an axis-aligned
    /// segment in `(u, v)` — i.e. a ±45° segment in `(x, y)`.
    pub fn from_radii(n1: Point, n2: Point, l1: f64, l2: f64) -> Option<ManhattanArc> {
        if l1 < 0.0 || l2 < 0.0 || !l1.is_finite() || !l2.is_finite() {
            return None;
        }
        let d = n1.manhattan_dist(n2);
        let slack = 1e-9 * d.max(1.0);
        if (l1 + l2 - d).abs() > slack {
            return None;
        }

        // Work in the rotated frame: squares [u±l], [v±l] around each center.
        let (u1, v1) = n1.to_rotated();
        let (u2, v2) = n2.to_rotated();

        // Intersect the two squares (as filled boxes); for the detour-free
        // case l1 + l2 == d the intersection of the *boundaries* equals the
        // intersection of the boxes, which is a segment or point.
        let ulo = (u1 - l1).max(u2 - l2);
        let uhi = (u1 + l1).min(u2 + l2);
        let vlo = (v1 - l1).max(v2 - l2);
        let vhi = (v1 + l1).min(v2 + l2);
        if ulo > uhi + slack || vlo > vhi + slack {
            return None;
        }
        // One of the two dimensions is (numerically) collapsed when radii are
        // tight; pick the thinner dimension as the fixed one.
        let (a, b) = if (uhi - ulo) <= (vhi - vlo) {
            let u = (ulo + uhi) / 2.0;
            (Point::from_rotated(u, vlo), Point::from_rotated(u, vhi))
        } else {
            let v = (vlo + vhi) / 2.0;
            (Point::from_rotated(ulo, v), Point::from_rotated(uhi, v))
        };
        Some(ManhattanArc {
            segment: Segment::new(a, b),
            l1,
            l2,
            n1,
            n2,
        })
    }

    /// The arc as a plain segment (±45° or degenerate).
    pub fn segment(&self) -> Segment {
        self.segment
    }

    /// Radius from the first center used to construct the arc.
    pub fn radius1(&self) -> f64 {
        self.l1
    }

    /// Radius from the second center used to construct the arc.
    pub fn radius2(&self) -> f64 {
        self.l2
    }

    /// First center.
    pub fn center1(&self) -> Point {
        self.n1
    }

    /// Second center.
    pub fn center2(&self) -> Point {
        self.n2
    }

    /// Maximum deviation, over sampled arc points, of the Manhattan distances
    /// to the two centers from the prescribed radii. Useful for testing and
    /// assertions; ideally zero.
    pub fn radius_error(&self) -> f64 {
        let mut worst: f64 = 0.0;
        const STEPS: usize = 16;
        for i in 0..=STEPS {
            let p = self.segment.at(i as f64 / STEPS as f64);
            worst = worst
                .max((p.manhattan_dist(self.n1) - self.l1).abs())
                .max((p.manhattan_dist(self.n2) - self.l2).abs());
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_arc_between_horizontal_centers() {
        let n1 = Point::new(0.0, 0.0);
        let n2 = Point::new(10.0, 0.0);
        let arc = ManhattanArc::from_radii(n1, n2, 4.0, 6.0).unwrap();
        assert!(arc.segment().is_manhattan_arc());
        assert!(arc.radius_error() < 1e-6, "err = {}", arc.radius_error());
    }

    #[test]
    fn diagonal_centers_give_full_antidiagonal() {
        // Centers aligned at 45°: the tight arc is the anti-diagonal segment
        // between (0, 5) and (5, 0), every point of which is at Manhattan
        // distance 5 from both centers.
        let n1 = Point::new(0.0, 0.0);
        let n2 = Point::new(5.0, 5.0);
        let arc = ManhattanArc::from_radii(n1, n2, 5.0, 5.0).unwrap();
        assert!(arc.radius_error() < 1e-6);
        assert!(arc.segment().length() > 1.0);
    }

    #[test]
    fn too_small_radii_yield_none() {
        let n1 = Point::new(0.0, 0.0);
        let n2 = Point::new(10.0, 0.0);
        assert!(ManhattanArc::from_radii(n1, n2, 3.0, 3.0).is_none());
    }

    #[test]
    fn loose_radii_yield_none() {
        let n1 = Point::new(0.0, 0.0);
        let n2 = Point::new(1.0, 0.0);
        // Radii that overshoot the distance are a snaking case, not an arc.
        assert!(ManhattanArc::from_radii(n1, n2, 10.0, 1.0).is_none());
    }

    #[test]
    fn negative_radius_rejected() {
        let n1 = Point::new(0.0, 0.0);
        let n2 = Point::new(2.0, 0.0);
        assert!(ManhattanArc::from_radii(n1, n2, -1.0, 3.0).is_none());
    }

    #[test]
    fn coincident_centers_zero_radii() {
        let n = Point::new(3.0, 3.0);
        let arc = ManhattanArc::from_radii(n, n, 0.0, 0.0).unwrap();
        assert!(arc.segment().is_degenerate());
        assert_eq!(arc.segment().a, n);
    }

    #[test]
    fn endpoint_arc_when_one_radius_zero() {
        let n1 = Point::new(0.0, 0.0);
        let n2 = Point::new(4.0, 2.0);
        let arc = ManhattanArc::from_radii(n1, n2, 0.0, 6.0).unwrap();
        assert!(arc.segment().is_degenerate());
        assert_eq!(arc.segment().a, n1);
    }
}
