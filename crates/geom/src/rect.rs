//! Axis-aligned rectangles (bounding boxes, chip outlines).

use crate::Point;
use std::fmt;

/// An axis-aligned rectangle, used for chip outlines, routing regions and
/// bounding boxes.
///
/// A `Rect` is stored by its lower-left and upper-right corners and is always
/// normalized (`lo.x <= hi.x`, `lo.y <= hi.y`). Degenerate rectangles (zero
/// width and/or height) are allowed: the bounding box of a single point is a
/// zero-area `Rect`.
///
/// ```
/// use cts_geom::{Point, Rect};
/// let r = Rect::from_corners(Point::new(10.0, 0.0), Point::new(0.0, 5.0));
/// assert_eq!(r.width(), 10.0);
/// assert_eq!(r.height(), 5.0);
/// assert!(r.contains(Point::new(5.0, 2.5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    lo: Point,
    hi: Point,
}

impl Rect {
    /// Creates the rectangle spanning two arbitrary corner points.
    pub fn from_corners(a: Point, b: Point) -> Rect {
        Rect {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// Creates a rectangle from origin `(0,0)` to `(w, h)`.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `h` is negative or non-finite.
    pub fn with_size(w: f64, h: f64) -> Rect {
        assert!(
            w >= 0.0 && h >= 0.0 && w.is_finite() && h.is_finite(),
            "rectangle size must be finite and non-negative, got {w} x {h}"
        );
        Rect {
            lo: Point::ORIGIN,
            hi: Point::new(w, h),
        }
    }

    /// Smallest rectangle containing every point of the iterator, or `None`
    /// for an empty iterator.
    ///
    /// ```
    /// use cts_geom::{Point, Rect};
    /// let pts = [Point::new(1.0, 7.0), Point::new(-2.0, 3.0)];
    /// let bb = Rect::bounding(pts.iter().copied()).unwrap();
    /// assert_eq!(bb.lo(), Point::new(-2.0, 3.0));
    /// assert_eq!(bb.hi(), Point::new(1.0, 7.0));
    /// ```
    pub fn bounding<I: IntoIterator<Item = Point>>(points: I) -> Option<Rect> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for p in it {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        Some(Rect { lo, hi })
    }

    /// Lower-left corner.
    pub fn lo(&self) -> Point {
        self.lo
    }

    /// Upper-right corner.
    pub fn hi(&self) -> Point {
        self.hi
    }

    /// Width (x extent) in µm.
    pub fn width(&self) -> f64 {
        self.hi.x - self.lo.x
    }

    /// Height (y extent) in µm.
    pub fn height(&self) -> f64 {
        self.hi.y - self.lo.y
    }

    /// Area in µm².
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// The longer of width and height — the `l` of the paper's complexity
    /// analysis (§4.3).
    pub fn longer_dim(&self) -> f64 {
        self.width().max(self.height())
    }

    /// Geometric center.
    pub fn center(&self) -> Point {
        self.lo.midpoint(self.hi)
    }

    /// Returns `true` if `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.lo.x && p.x <= self.hi.x && p.y >= self.lo.y && p.y <= self.hi.y
    }

    /// Returns the rectangle grown by `margin` on every side.
    ///
    /// A negative margin shrinks the rectangle; it is clamped so the result
    /// stays normalized (collapsing to the center line/point if needed).
    pub fn expand(&self, margin: f64) -> Rect {
        let lo = Point::new(self.lo.x - margin, self.lo.y - margin);
        let hi = Point::new(self.hi.x + margin, self.hi.y + margin);
        if lo.x > hi.x || lo.y > hi.y {
            let c = self.center();
            Rect { lo: c, hi: c }
        } else {
            Rect { lo, hi }
        }
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Clamps `p` to the closest point inside the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.lo.x, self.hi.x),
            p.y.clamp(self.lo.y, self.hi.y),
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} — {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalize() {
        let r = Rect::from_corners(Point::new(5.0, -1.0), Point::new(-5.0, 9.0));
        assert_eq!(r.lo(), Point::new(-5.0, -1.0));
        assert_eq!(r.hi(), Point::new(5.0, 9.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 10.0);
        assert_eq!(r.longer_dim(), 10.0);
    }

    #[test]
    fn bounding_of_points() {
        assert!(Rect::bounding(std::iter::empty()).is_none());
        let single = Rect::bounding([Point::new(2.0, 2.0)]).unwrap();
        assert_eq!(single.area(), 0.0);
        assert!(single.contains(Point::new(2.0, 2.0)));
    }

    #[test]
    fn contains_boundary() {
        let r = Rect::with_size(4.0, 4.0);
        assert!(r.contains(Point::ORIGIN));
        assert!(r.contains(Point::new(4.0, 4.0)));
        assert!(!r.contains(Point::new(4.0001, 0.0)));
    }

    #[test]
    fn expand_and_collapse() {
        let r = Rect::with_size(2.0, 2.0);
        let grown = r.expand(1.0);
        assert_eq!(grown.width(), 4.0);
        let collapsed = r.expand(-5.0);
        assert_eq!(collapsed.area(), 0.0);
        assert_eq!(collapsed.center(), r.center());
    }

    #[test]
    fn union_covers_both() {
        let a = Rect::with_size(1.0, 1.0);
        let b = Rect::from_corners(Point::new(3.0, 3.0), Point::new(4.0, 5.0));
        let u = a.union(&b);
        assert!(u.contains(Point::ORIGIN));
        assert!(u.contains(Point::new(4.0, 5.0)));
    }

    #[test]
    fn clamp_projects_inside() {
        let r = Rect::with_size(2.0, 2.0);
        assert_eq!(r.clamp(Point::new(-1.0, 5.0)), Point::new(0.0, 2.0));
        assert_eq!(r.clamp(Point::new(1.0, 1.0)), Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn with_size_rejects_negative() {
        let _ = Rect::with_size(-1.0, 2.0);
    }
}
