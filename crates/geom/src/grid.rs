//! The maze-routing grid of the paper's routing stage (§4.2.2).
//!
//! The region between two nodes to be merged is partitioned into routing
//! grid cells. The paper uses a default resolution of **R = 45 cells per
//! dimension** of the bounding box and *grows* the resolution for long nets
//! so that enough candidate buffer locations exist along any path, while the
//! cell count (and thus routing time) stays steady for short nets.

use crate::{Point, Rect};
use std::fmt;

/// Identifier of a routing-grid cell: `(column, row)` indices.
///
/// Cell `(0, 0)` is the lower-left cell. `CellId` is deliberately a plain
/// index pair (not a linear offset) so that neighbor math is legible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct CellId {
    /// Column index (x direction).
    pub col: u32,
    /// Row index (y direction).
    pub row: u32,
}

impl CellId {
    /// Creates a cell id from column and row indices.
    pub const fn new(col: u32, row: u32) -> CellId {
        CellId { col, row }
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}r{}", self.col, self.row)
    }
}

/// A uniform routing grid over a rectangular region.
///
/// The grid is the search space of the bi-directional maze router: cell
/// centers are candidate wire bend points and buffer locations. Resolution
/// is chosen per net pair (see [`RoutingGrid::between`]), implementing the
/// paper's dynamic grid sizing.
///
/// ```
/// use cts_geom::{Point, RoutingGrid};
/// let g = RoutingGrid::between(Point::new(0.0, 0.0), Point::new(900.0, 450.0), 45);
/// let s = g.nearest_cell(Point::new(0.0, 0.0));
/// let t = g.nearest_cell(Point::new(900.0, 450.0));
/// assert!(g.cell_center(s).manhattan_dist(Point::new(0.0, 0.0)) <= g.pitch());
/// assert_ne!(s, t);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingGrid {
    region: Rect,
    cols: u32,
    rows: u32,
    pitch_x: f64,
    pitch_y: f64,
}

/// Maximum distance (µm) between adjacent candidate buffer sites the dynamic
/// sizing rule tolerates. With 10× unit parasitics (0.2 fF/µm), slew
/// degrades over a few hundred µm of wire, so candidate sites must be
/// considerably denser than that for the router to land a buffer near the
/// ideal spot.
pub const MAX_CELL_PITCH_UM: f64 = 120.0;

impl RoutingGrid {
    /// Builds the routing grid for merging two nodes, with dynamic
    /// resolution.
    ///
    /// The region is the bounding box of `a` and `b`, expanded by 10% of its
    /// longer dimension (at least one pitch) so that slight detours around
    /// the box remain representable. The base resolution is `r_default`
    /// cells per dimension (the paper's R = 45); if that would make cells
    /// coarser than [`MAX_CELL_PITCH_UM`], the resolution grows until the
    /// pitch is fine enough — the paper's "for large distance the routing
    /// grid size can increase dynamically".
    ///
    /// # Panics
    ///
    /// Panics if `r_default` is zero or the points are non-finite.
    pub fn between(a: Point, b: Point, r_default: u32) -> RoutingGrid {
        let (cols, rows) = RoutingGrid::dims_between(a, b, r_default);
        RoutingGrid::between_with_dims(a, b, cols, rows)
    }

    /// The column/row counts [`RoutingGrid::between`] would pick for this
    /// pair.
    ///
    /// # Panics
    ///
    /// Panics if `r_default` is zero or the points are non-finite.
    pub fn dims_between(a: Point, b: Point, r_default: u32) -> (u32, u32) {
        assert!(
            a.is_finite() && b.is_finite(),
            "grid corners must be finite"
        );
        RoutingGrid::dims_for_region(RoutingGrid::region_between(a, b), r_default)
    }

    /// The dynamic-resolution rule alone: the column/row counts for a
    /// region of the given dimensions. A pure function of the region's
    /// **width and height** (exact `f64` values) and `r_default` — which is
    /// what makes the counts cacheable across the many similar merges of a
    /// topology level.
    ///
    /// # Panics
    ///
    /// Panics if `r_default` is zero.
    pub fn dims_for_region(region: Rect, r_default: u32) -> (u32, u32) {
        assert!(r_default > 0, "grid resolution must be positive");
        let mut cols = r_default;
        let mut rows = r_default;
        while region.width() / cols as f64 > MAX_CELL_PITCH_UM {
            cols *= 2;
        }
        while region.height() / rows as f64 > MAX_CELL_PITCH_UM {
            rows *= 2;
        }
        (cols, rows)
    }

    /// [`RoutingGrid::between`] with precomputed column/row counts (from
    /// [`RoutingGrid::dims_between`], possibly cached by the caller). For
    /// matching dims the result is identical — bit for bit — to calling
    /// `between` directly: the region, pitches, and cell centers are the
    /// same arithmetic either way.
    ///
    /// # Panics
    ///
    /// Panics if `cols`/`rows` is zero or the points are non-finite.
    pub fn between_with_dims(a: Point, b: Point, cols: u32, rows: u32) -> RoutingGrid {
        assert!(
            a.is_finite() && b.is_finite(),
            "grid corners must be finite"
        );
        RoutingGrid::over_region(RoutingGrid::region_between(a, b), cols, rows)
    }

    /// The routed region between two points: their bounding box expanded by
    /// 10% of its longer dimension (at least one pitch) so slight detours
    /// around the box remain representable. Degenerate boxes (coincident or
    /// axis-aligned points) still need an area to route in and get a
    /// minimal square around the centroid.
    ///
    /// Note for dimension caching: the expanded region's width/height are
    /// *not* a pure function of the pair's span — the expansion arithmetic
    /// rounds against the absolute coordinates — so cache keys must use the
    /// region dimensions themselves, not the raw span.
    pub fn region_between(a: Point, b: Point) -> Rect {
        let bb = Rect::from_corners(a, b);
        let span = bb.longer_dim().max(1.0);
        bb.expand(0.10 * span)
    }

    /// Builds a grid with explicit column/row counts over `region`.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn over_region(region: Rect, cols: u32, rows: u32) -> RoutingGrid {
        assert!(cols > 0 && rows > 0, "grid must have at least one cell");
        RoutingGrid {
            region,
            cols,
            rows,
            pitch_x: region.width() / cols as f64,
            pitch_y: region.height() / rows as f64,
        }
    }

    /// The routed region.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Cell pitch: Manhattan distance between horizontally or vertically
    /// adjacent cell centers, conservatively the larger of the two axes.
    pub fn pitch(&self) -> f64 {
        self.pitch_x.max(self.pitch_y)
    }

    /// Horizontal pitch (µm).
    pub fn pitch_x(&self) -> f64 {
        self.pitch_x
    }

    /// Vertical pitch (µm).
    pub fn pitch_y(&self) -> f64 {
        self.pitch_y
    }

    /// Center point of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    pub fn cell_center(&self, id: CellId) -> Point {
        assert!(
            self.in_bounds(id),
            "cell {id} outside {}x{} grid",
            self.cols,
            self.rows
        );
        Point::new(
            self.region.lo().x + (id.col as f64 + 0.5) * self.pitch_x,
            self.region.lo().y + (id.row as f64 + 0.5) * self.pitch_y,
        )
    }

    /// Returns `true` if `id` addresses a cell of this grid.
    pub fn in_bounds(&self, id: CellId) -> bool {
        id.col < self.cols && id.row < self.rows
    }

    /// The cell whose center is nearest to `p` (clamped into the region).
    pub fn nearest_cell(&self, p: Point) -> CellId {
        let q = self.region.clamp(p);
        let col = if self.pitch_x > 0.0 {
            (((q.x - self.region.lo().x) / self.pitch_x).floor() as i64)
                .clamp(0, self.cols as i64 - 1) as u32
        } else {
            0
        };
        let row = if self.pitch_y > 0.0 {
            (((q.y - self.region.lo().y) / self.pitch_y).floor() as i64)
                .clamp(0, self.rows as i64 - 1) as u32
        } else {
            0
        };
        CellId::new(col, row)
    }

    /// Linear index of a cell (row-major), for dense per-cell storage.
    pub fn linear_index(&self, id: CellId) -> usize {
        id.row as usize * self.cols as usize + id.col as usize
    }

    /// The 4-connected neighbors of a cell (von Neumann neighborhood),
    /// in-bounds only.
    pub fn neighbors(&self, id: CellId) -> impl Iterator<Item = CellId> + '_ {
        let deltas: [(i64, i64); 4] = [(1, 0), (-1, 0), (0, 1), (0, -1)];
        deltas.into_iter().filter_map(move |(dc, dr)| {
            let col = id.col as i64 + dc;
            let row = id.row as i64 + dr;
            if col >= 0 && row >= 0 {
                let cand = CellId::new(col as u32, row as u32);
                self.in_bounds(cand).then_some(cand)
            } else {
                None
            }
        })
    }

    /// Manhattan distance between the centers of two cells.
    pub fn cell_dist(&self, a: CellId, b: CellId) -> f64 {
        self.cell_center(a).manhattan_dist(self.cell_center(b))
    }
}

impl fmt::Display for RoutingGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} grid over {} (pitch {:.2} µm)",
            self.cols,
            self.rows,
            self.region,
            self.pitch()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_resolution_for_short_nets() {
        let g = RoutingGrid::between(Point::ORIGIN, Point::new(100.0, 80.0), 45);
        assert_eq!(g.cols(), 45);
        assert_eq!(g.rows(), 45);
    }

    #[test]
    fn resolution_grows_for_long_nets() {
        let g = RoutingGrid::between(Point::ORIGIN, Point::new(20_000.0, 500.0), 45);
        assert!(g.cols() > 45, "cols = {}", g.cols());
        assert!(g.pitch_x() <= MAX_CELL_PITCH_UM);
    }

    #[test]
    fn nearest_cell_roundtrip() {
        let g = RoutingGrid::between(Point::ORIGIN, Point::new(450.0, 450.0), 45);
        for &(x, y) in &[(0.0, 0.0), (450.0, 450.0), (225.0, 10.0)] {
            let p = Point::new(x, y);
            let c = g.nearest_cell(p);
            assert!(g.in_bounds(c));
            assert!(g.cell_center(c).manhattan_dist(p) <= g.pitch_x() + g.pitch_y());
        }
    }

    #[test]
    fn nearest_cell_clamps_outside_points() {
        let g = RoutingGrid::between(Point::ORIGIN, Point::new(100.0, 100.0), 10);
        let far = Point::new(1e6, -1e6);
        let c = g.nearest_cell(far);
        assert!(g.in_bounds(c));
    }

    #[test]
    fn neighbors_are_in_bounds_and_adjacent() {
        let g = RoutingGrid::between(Point::ORIGIN, Point::new(100.0, 100.0), 5);
        let corner = CellId::new(0, 0);
        let n: Vec<_> = g.neighbors(corner).collect();
        assert_eq!(n.len(), 2);
        let middle = CellId::new(2, 2);
        let n: Vec<_> = g.neighbors(middle).collect();
        assert_eq!(n.len(), 4);
        for m in n {
            let d = (m.col as i64 - 2).abs() + (m.row as i64 - 2).abs();
            assert_eq!(d, 1);
        }
    }

    #[test]
    fn cached_dims_reproduce_between_exactly() {
        // The grid cache in the maze scratch rebuilds grids from cached
        // (cols, rows); the rebuilt grid must be bit-identical to a fresh
        // `between` call for the synthesis flow to stay deterministic.
        let pairs = [
            (Point::new(13.5, -7.25), Point::new(913.5, 442.75)),
            (Point::ORIGIN, Point::new(20_000.0, 500.0)),
            (Point::new(5.0, 5.0), Point::new(5.0, 5.0)),
            (Point::new(-300.0, 90.0), Point::new(120.0, 90.0)),
        ];
        for (a, b) in pairs {
            let fresh = RoutingGrid::between(a, b, 45);
            let (cols, rows) = RoutingGrid::dims_between(a, b, 45);
            let rebuilt = RoutingGrid::between_with_dims(a, b, cols, rows);
            assert_eq!(fresh, rebuilt);
            // `dims_for_region` keyed by the exact region dimensions is the
            // cacheable decomposition of `between`.
            let region = RoutingGrid::region_between(a, b);
            assert_eq!((cols, rows), RoutingGrid::dims_for_region(region, 45));
            assert_eq!(fresh.region(), region);
        }
    }

    #[test]
    fn coincident_points_still_make_a_grid() {
        let p = Point::new(5.0, 5.0);
        let g = RoutingGrid::between(p, p, 45);
        assert!(g.cell_count() > 0);
        assert!(g.region().contains(p));
    }

    #[test]
    fn linear_index_bijective() {
        let g = RoutingGrid::over_region(Rect::with_size(10.0, 10.0), 7, 3);
        let mut seen = vec![false; g.cell_count()];
        for row in 0..g.rows() {
            for col in 0..g.cols() {
                let i = g.linear_index(CellId::new(col, row));
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cells_rejected() {
        let _ = RoutingGrid::over_region(Rect::with_size(1.0, 1.0), 0, 3);
    }
}
