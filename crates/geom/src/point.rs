//! Points in the Manhattan plane.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A location on the chip, in micrometers.
///
/// `Point` is the fundamental coordinate type of the workspace: clock sinks,
/// merge nodes, buffer sites and routing-grid cell centers are all `Point`s.
/// Distances between points are Manhattan (L1) unless a method says
/// otherwise, because clock wires are rectilinear.
///
/// ```
/// use cts_geom::Point;
/// let sink = Point::new(120.0, 40.5);
/// assert_eq!(sink.manhattan_dist(Point::ORIGIN), 160.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in µm.
    pub x: f64,
    /// Vertical coordinate in µm.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates (µm).
    ///
    /// ```
    /// let p = cts_geom::Point::new(3.0, 4.0);
    /// assert_eq!((p.x, p.y), (3.0, 4.0));
    /// ```
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Manhattan (L1) distance to `other`, i.e. the minimum rectilinear
    /// wirelength required to connect the two points.
    ///
    /// ```
    /// use cts_geom::Point;
    /// let d = Point::new(0.0, 0.0).manhattan_dist(Point::new(3.0, -4.0));
    /// assert_eq!(d, 7.0);
    /// ```
    pub fn manhattan_dist(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Euclidean (L2) distance to `other`. Used only for tie-breaking and
    /// reporting; routing always uses [`Point::manhattan_dist`].
    pub fn euclidean_dist(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation: returns the point a fraction `t` of the way from
    /// `self` to `other` (straight line in coordinate space).
    ///
    /// `t = 0` yields `self`, `t = 1` yields `other`. Values outside `[0, 1]`
    /// extrapolate.
    ///
    /// ```
    /// use cts_geom::Point;
    /// let m = Point::new(0.0, 0.0).lerp(Point::new(10.0, 20.0), 0.5);
    /// assert_eq!(m, Point::new(5.0, 10.0));
    /// ```
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Rotated coordinates `(u, v) = (x + y, x − y)`.
    ///
    /// In the rotated frame, Manhattan distance becomes Chebyshev (L∞)
    /// distance and Manhattan arcs become axis-aligned segments; this is the
    /// standard trick for merge-segment computations.
    pub fn to_rotated(self) -> (f64, f64) {
        (self.x + self.y, self.x - self.y)
    }

    /// Inverse of [`Point::to_rotated`].
    pub fn from_rotated(u: f64, v: f64) -> Point {
        Point::new((u + v) / 2.0, (u - v) / 2.0)
    }

    /// Returns `true` if both coordinates are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Component-wise minimum.
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn manhattan_distance_basics() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -2.0);
        assert_eq!(a.manhattan_dist(b), 7.0);
        assert_eq!(b.manhattan_dist(a), 7.0);
        assert_eq!(a.manhattan_dist(a), 0.0);
    }

    #[test]
    fn euclidean_never_exceeds_manhattan() {
        let a = Point::new(-3.0, 8.0);
        let b = Point::new(10.0, 1.5);
        assert!(a.euclidean_dist(b) <= a.manhattan_dist(b));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(2.0, 3.0);
        let b = Point::new(6.0, -1.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(4.0, 1.0));
    }

    #[test]
    fn rotated_roundtrip() {
        let p = Point::new(12.5, -7.25);
        let (u, v) = p.to_rotated();
        let q = Point::from_rotated(u, v);
        assert!(approx_eq(p.x, q.x) && approx_eq(p.y, q.y));
    }

    #[test]
    fn rotated_maps_manhattan_to_chebyshev() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 5.0);
        let (ua, va) = a.to_rotated();
        let (ub, vb) = b.to_rotated();
        let chebyshev = (ua - ub).abs().max((va - vb).abs());
        assert!(approx_eq(chebyshev, a.manhattan_dist(b)));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a + b, Point::new(4.0, 6.0));
        assert_eq!(b - a, Point::new(2.0, 2.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
    }
}
