//! Line segments, including the degenerate single-point case.

use crate::{approx_eq, Point};
use std::fmt;

/// A straight segment between two points (possibly degenerate).
///
/// Merge segments in DME-style algorithms and the `v1–v2` line of the
/// paper's binary-search stage (§4.2.3) are both `Segment`s. A segment whose
/// endpoints coincide represents a single point — common for merge "regions"
/// that collapse under detour-free balancing.
///
/// ```
/// use cts_geom::{Point, Segment};
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
/// assert_eq!(s.length(), 10.0);
/// assert_eq!(s.at(0.25), Point::new(2.5, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    pub fn new(a: Point, b: Point) -> Segment {
        Segment { a, b }
    }

    /// Creates the degenerate segment consisting of a single point.
    pub fn point(p: Point) -> Segment {
        Segment { a: p, b: p }
    }

    /// Euclidean length of the segment.
    pub fn length(&self) -> f64 {
        self.a.euclidean_dist(self.b)
    }

    /// Manhattan length of the segment.
    pub fn manhattan_length(&self) -> f64 {
        self.a.manhattan_dist(self.b)
    }

    /// Returns `true` if the segment is a single point.
    pub fn is_degenerate(&self) -> bool {
        approx_eq(self.a.x, self.b.x) && approx_eq(self.a.y, self.b.y)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment (`0 ↦ a`, `1 ↦ b`).
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Midpoint of the segment.
    pub fn midpoint(&self) -> Point {
        self.at(0.5)
    }

    /// The point of the segment closest (in Manhattan distance) to `p`,
    /// found by dense parametric sampling.
    ///
    /// Manhattan projection onto an arbitrary segment has no single closed
    /// form across all slopes; for the short merge segments this crate deals
    /// with, sampling at 1/256 resolution is well below the manufacturing
    /// grid and keeps the code obviously correct.
    pub fn closest_point_manhattan(&self, p: Point) -> Point {
        if self.is_degenerate() {
            return self.a;
        }
        let mut best = self.a;
        let mut best_d = best.manhattan_dist(p);
        const STEPS: usize = 256;
        for i in 1..=STEPS {
            let q = self.at(i as f64 / STEPS as f64);
            let d = q.manhattan_dist(p);
            if d < best_d {
                best_d = d;
                best = q;
            }
        }
        best
    }

    /// Returns `true` if the segment is a Manhattan arc: a single point or a
    /// segment of slope exactly ±1 (where loci of equal Manhattan distance
    /// live).
    pub fn is_manhattan_arc(&self) -> bool {
        if self.is_degenerate() {
            return true;
        }
        let dx = self.b.x - self.a.x;
        let dy = self.b.y - self.a.y;
        approx_eq(dx.abs(), dy.abs())
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_segment() {
        let s = Segment::point(Point::new(1.0, 1.0));
        assert!(s.is_degenerate());
        assert_eq!(s.length(), 0.0);
        assert!(s.is_manhattan_arc());
        assert_eq!(s.closest_point_manhattan(Point::new(9.0, 9.0)), s.a);
    }

    #[test]
    fn parametrization() {
        let s = Segment::new(Point::ORIGIN, Point::new(4.0, 8.0));
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
        assert_eq!(s.midpoint(), Point::new(2.0, 4.0));
    }

    #[test]
    fn manhattan_arc_detection() {
        let arc = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, -3.0));
        assert!(arc.is_manhattan_arc());
        let not_arc = Segment::new(Point::new(0.0, 0.0), Point::new(3.0, 1.0));
        assert!(!not_arc.is_manhattan_arc());
    }

    #[test]
    fn closest_point_is_no_worse_than_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let p = Point::new(8.0, 2.0);
        let q = s.closest_point_manhattan(p);
        assert!(q.manhattan_dist(p) <= s.a.manhattan_dist(p));
        assert!(q.manhattan_dist(p) <= s.b.manhattan_dist(p));
    }
}
