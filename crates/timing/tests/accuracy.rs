//! Accuracy validation: the fitted library must match direct simulation on
//! held-out (off-grid) points, and must beat the closed-form baselines —
//! the paper's core claim for its delay model (Chapter 3).

use cts_spice::stages::{branch_stage, single_wire_stage, BranchConfig, SingleWireConfig};
use cts_spice::units::*;
use cts_spice::{SimOptions, Technology};
use cts_timing::{fast_library, metrics, BufferId, Load, RcTree};

fn opts() -> SimOptions {
    let mut o = SimOptions::default_for(6.0 * NS);
    o.dt = 0.5 * PS;
    o
}

/// Library lookups reproduce simulator measurements at points *between* the
/// characterization grid samples.
#[test]
fn library_matches_simulation_off_grid() {
    let tech = Technology::nominal_45nm();
    let lib = fast_library();
    let buffers = tech.buffer_library();

    // Off-grid combinations: (drive, load, l_input, L) chosen away from the
    // fast-config grid points {10,500,1200} x {5,300,900,1800}.
    let cases = [
        (0usize, 1usize, 250.0, 450.0),
        (1, 0, 700.0, 1200.0),
        (2, 2, 950.0, 700.0),
    ];
    for &(d, l, l_input, length) in &cases {
        let cfg = SingleWireConfig {
            input_buf: &buffers[1],
            l_input_um: l_input,
            drive: &buffers[d],
            l_um: length,
            load: &buffers[l],
            wire: tech.wire(),
            ramp_slew: 80.0 * PS,
            rising: true,
        };
        let truth = single_wire_stage(&tech, &cfg).measure(&opts()).unwrap();
        let pred = lib.single_wire(
            BufferId(d),
            Load::Buffer(BufferId(l)),
            truth.input_slew,
            length,
        );

        let err_intrinsic = (pred.buffer_delay - truth.intrinsic_delay).abs();
        let err_wire = (pred.wire_delay - truth.wire_delay).abs();
        let err_slew = (pred.output_slew - truth.wire_slew).abs();
        // Tolerances: a few ps absolute or ~10 % relative, whichever is
        // looser — the fast config uses coarse quadratic fits.
        let tol = |truth_val: f64| (0.10 * truth_val).max(3.0 * PS);
        assert!(
            err_intrinsic < tol(truth.intrinsic_delay),
            "intrinsic d={d} l={l}: pred {} ps vs truth {} ps",
            pred.buffer_delay / PS,
            truth.intrinsic_delay / PS
        );
        assert!(
            err_wire < tol(truth.wire_delay),
            "wire d={d} l={l}: pred {} ps vs truth {} ps",
            pred.wire_delay / PS,
            truth.wire_delay / PS
        );
        assert!(
            err_slew < tol(truth.wire_slew),
            "slew d={d} l={l}: pred {} ps vs truth {} ps",
            pred.output_slew / PS,
            truth.wire_slew / PS
        );
    }
}

/// Branch lookups reproduce simulator measurements off-grid, including the
/// left/right asymmetry.
#[test]
fn branch_library_matches_simulation_off_grid() {
    let tech = Technology::nominal_45nm();
    let lib = fast_library();
    let buffers = tech.buffer_library();

    let cfg = BranchConfig {
        input_buf: &buffers[1],
        l_input_um: 350.0,
        drive: &buffers[1],
        l_left_um: 300.0,
        l_right_um: 1000.0,
        load_left: &buffers[0],
        load_right: &buffers[2],
        wire: tech.wire(),
        ramp_slew: 80.0 * PS,
        rising: true,
    };
    let truth = branch_stage(&tech, &cfg).measure(&opts()).unwrap();
    let pred = lib.branch(
        BufferId(1),
        (Load::Buffer(BufferId(0)), Load::Buffer(BufferId(2))),
        truth.input_slew,
        (300.0, 1000.0),
    );

    let tol = |t: f64| (0.15 * t).max(4.0 * PS);
    assert!(
        (pred.left_delay - truth.left_delay).abs() < tol(truth.left_delay),
        "left delay: {} vs {} ps",
        pred.left_delay / PS,
        truth.left_delay / PS
    );
    assert!(
        (pred.right_delay - truth.right_delay).abs() < tol(truth.right_delay),
        "right delay: {} vs {} ps",
        pred.right_delay / PS,
        truth.right_delay / PS
    );
    assert!(
        (pred.left_slew - truth.left_slew).abs() < tol(truth.left_slew),
        "left slew: {} vs {} ps",
        pred.left_slew / PS,
        truth.left_slew / PS
    );
    assert!(
        pred.right_slew > pred.left_slew,
        "asymmetry must be preserved"
    );
}

/// Paper §3.1: on *step-driven* RC lines Elmore overestimates the 50 %
/// delay and the two-moment D2M metric corrects most of that error. (For
/// slow realistic drivers the wire lag approaches m1 — the step response is
/// where the closed-form metrics are defined and compared.)
#[test]
fn model_accuracy_ladder_step_response() {
    use cts_spice::{simulate, Circuit, Waveform};
    let tech = Technology::nominal_45nm();
    let length = 1400.0;
    let load_cap = tech.buffer_library()[1].input_cap(&tech);

    // Direct simulation: near-ideal step into the distributed wire.
    let mut c = Circuit::new(&tech);
    let near = c.add_node("near");
    let far_node = c.add_node("far");
    c.add_wire(near, far_node, length, tech.wire());
    c.add_cap(far_node, load_cap);
    c.drive(
        near,
        Waveform::from_samples(vec![0.0, 1.0 * FS], vec![0.0, tech.vdd()]),
    );
    let res = simulate(&c, &opts()).unwrap();
    let truth = res.waveform(far_node).t50(tech.vdd()).unwrap();

    // Closed-form metrics on the same RC tree.
    let mut rc = RcTree::new(0.0);
    let far = rc.add_wire(
        rc.root(),
        tech.wire().resistance(length),
        tech.wire().capacitance(length),
        32,
    );
    rc.add_cap(far, load_cap);
    let (m1, m2) = rc.m1_m2(far);

    let err_elmore = (metrics::elmore_delay(m1) - truth).abs();
    let err_d2m = (metrics::d2m_delay(m1, m2) - truth).abs();
    assert!(
        metrics::elmore_delay(m1) > truth,
        "Elmore must overestimate the step 50% delay: {} vs {} ps",
        metrics::elmore_delay(m1) / PS,
        truth / PS
    );
    assert!(
        err_d2m < err_elmore,
        "D2M ({} ps err) must beat Elmore ({} ps err)",
        err_d2m / PS,
        err_elmore / PS
    );
}

/// With a realistic (resistive, slewing) driver the closed-form story
/// breaks down — exactly the paper's argument for characterization: the
/// library's wire-delay prediction tracks simulation within a couple of ps
/// where the step-calibrated D2M no longer describes the measurement.
#[test]
fn library_beats_step_metrics_under_realistic_drive() {
    let tech = Technology::nominal_45nm();
    let lib = fast_library();
    let buffers = tech.buffer_library();
    let length = 1400.0;

    let cfg = SingleWireConfig {
        input_buf: &buffers[1],
        l_input_um: 400.0,
        drive: &buffers[1],
        l_um: length,
        load: &buffers[1],
        wire: tech.wire(),
        ramp_slew: 80.0 * PS,
        rising: true,
    };
    let truth = single_wire_stage(&tech, &cfg).measure(&opts()).unwrap();

    let mut rc = RcTree::new(buffers[1].output_cap(&tech));
    let far = rc.add_wire(
        rc.root(),
        tech.wire().resistance(length),
        tech.wire().capacitance(length),
        32,
    );
    rc.add_cap(far, buffers[1].input_cap(&tech));
    let (m1, m2) = rc.m1_m2(far);

    let err_d2m = (metrics::d2m_delay(m1, m2) - truth.wire_delay).abs();
    let pred = lib.single_wire(
        BufferId(1),
        Load::Buffer(BufferId(1)),
        truth.input_slew,
        length,
    );
    let err_lib = (pred.wire_delay - truth.wire_delay).abs();
    assert!(
        err_lib < err_d2m,
        "library ({} ps err) must beat D2M ({} ps err) under realistic drive",
        err_lib / PS,
        err_d2m / PS
    );
    assert!(err_lib < 3.0 * PS, "library err = {} ps", err_lib / PS);
}

/// The PERI slew composition approximates simulated output slews at the
/// right order of magnitude but with visible error — the motivation for
/// characterizing slew instead of composing it.
#[test]
fn peri_slew_is_rough() {
    let tech = Technology::nominal_45nm();
    let buffers = tech.buffer_library();
    let length = 1000.0;
    let cfg = SingleWireConfig {
        input_buf: &buffers[1],
        l_input_um: 400.0,
        drive: &buffers[2],
        l_um: length,
        load: &buffers[1],
        wire: tech.wire(),
        ramp_slew: 80.0 * PS,
        rising: true,
    };
    let truth = single_wire_stage(&tech, &cfg).measure(&opts()).unwrap();

    let mut rc = RcTree::new(buffers[2].output_cap(&tech));
    let far = rc.add_wire(
        rc.root(),
        tech.wire().resistance(length),
        tech.wire().capacitance(length),
        32,
    );
    rc.add_cap(far, buffers[1].input_cap(&tech));
    let (m1, m2) = rc.m1_m2(far);
    // Slew at the buffer output feeds the wire; approximate it by the
    // measured output slew minus the wire's own spread is unavailable in
    // closed form — use the measured input slew as PERI would.
    let step = metrics::step_slew_s2m(m1, m2);
    let peri = metrics::peri_ramp_slew(step, truth.input_slew);
    // Same order of magnitude...
    assert!(peri > 0.2 * truth.wire_slew && peri < 5.0 * truth.wire_slew);
}
