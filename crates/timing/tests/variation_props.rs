//! Property tests for the process-variation axis: perturbed libraries
//! stay physical for any sigma in [0, 0.3], sigma zero is the identity,
//! and distinct seeds give distinct corners.
//!
//! The library under test is a small synthetic one built from the
//! public fitting API (linear surfaces over coarse grids), so these
//! properties run in milliseconds without SPICE characterization.

use cts_spice::{BufferType, WireParams};
use cts_timing::fit::PolyFit;
use cts_timing::{
    corner_seed, perturb_library, BranchFns, BufferId, DelaySlewLibrary, Load, PerturbSigma,
    SingleWireFns,
};
use proptest::prelude::*;

/// A two-buffer library with linear fitted surfaces — the same shape the
/// in-crate unit tests use, rebuilt here from the public API.
fn synthetic_library() -> DelaySlewLibrary {
    let buffers = vec![BufferType::new("A", 10.0), BufferType::new("B", 20.0)];
    let grid: Vec<Vec<f64>> = (0..4)
        .flat_map(|i| (0..4).map(move |j| vec![i as f64 * 40e-12, j as f64 * 700.0]))
        .collect();
    let lin2 = |a: f64, b: f64, c: f64| {
        let vals: Vec<f64> = grid.iter().map(|p| a + b * p[0] + c * p[1]).collect();
        PolyFit::fit(2, 1, &grid, &vals).unwrap()
    };
    let single_for = |scale: f64| SingleWireFns {
        intrinsic: lin2(20e-12 * scale, 0.1, 0.0),
        wire_delay: lin2(0.0, 0.0, 1e-15 * scale),
        wire_slew: lin2(10e-12, 0.5, 50e-15 * scale),
    };
    let single = vec![
        single_for(1.0),
        single_for(1.1),
        single_for(0.6),
        single_for(0.7),
    ];

    let grid3: Vec<Vec<f64>> = (0..3)
        .flat_map(|i| {
            (0..3).flat_map(move |j| {
                (0..3).map(move |k| vec![i as f64 * 40e-12, j as f64 * 700.0, k as f64 * 700.0])
            })
        })
        .collect();
    let lin3 = |a: f64, b: (f64, f64, f64)| {
        let vals: Vec<f64> = grid3
            .iter()
            .map(|p| a + b.0 * p[0] + b.1 * p[1] + b.2 * p[2])
            .collect();
        PolyFit::fit(3, 1, &grid3, &vals).unwrap()
    };
    let branch_for = || BranchFns {
        intrinsic: lin3(25e-12, (0.1, 0.0, 0.0)),
        left_delay: lin3(0.0, (0.0, 2e-15, 1e-15)),
        right_delay: lin3(0.0, (0.0, 1e-15, 2e-15)),
        left_slew: lin3(15e-12, (0.5, 60e-15, 20e-15)),
        right_slew: lin3(15e-12, (0.5, 20e-15, 60e-15)),
    };
    let mut branch = Vec::new();
    for d in 0..2 {
        for ll in 0..2 {
            for lr in ll..2 {
                branch.push(((d, ll, lr), branch_for()));
            }
        }
    }
    DelaySlewLibrary::from_parts(1.1, WireParams::gsrc_10x(), buffers, single, branch)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sigma in [0, 0.3] keeps every query finite and physical:
    /// delays non-negative, slews strictly positive.
    #[test]
    fn perturbed_library_stays_finite_and_positive(
        seed in 0u64..1_000_000,
        corner in 0u64..1024,
        sb in 0.0..0.3f64,
        sw in 0.0..0.3f64,
        ss in 0.0..0.3f64,
    ) {
        let base = synthetic_library();
        let sigma = PerturbSigma { buffer_delay: sb, wire_delay: sw, slew: ss };
        let p = perturb_library(&base, corner_seed(seed, corner), &sigma);
        for (drive, load) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            for (slew_in, len) in [(10e-12, 100.0), (60e-12, 1400.0), (120e-12, 2100.0)] {
                let t = p.single_wire(
                    BufferId(drive),
                    Load::Buffer(BufferId(load)),
                    slew_in,
                    len,
                );
                prop_assert!(t.buffer_delay.is_finite() && t.buffer_delay >= 0.0);
                prop_assert!(t.wire_delay.is_finite() && t.wire_delay >= 0.0);
                prop_assert!(t.output_slew.is_finite() && t.output_slew > 0.0);
            }
            let b = p.branch(
                BufferId(drive),
                (Load::Buffer(BufferId(load)), Load::Buffer(BufferId(load))),
                60e-12,
                (700.0, 1100.0),
            );
            prop_assert!(b.buffer_delay.is_finite() && b.buffer_delay >= 0.0);
            prop_assert!(b.left_delay.is_finite() && b.left_delay >= 0.0);
            prop_assert!(b.right_delay.is_finite() && b.right_delay >= 0.0);
            prop_assert!(b.left_slew.is_finite() && b.left_slew > 0.0);
            prop_assert!(b.right_slew.is_finite() && b.right_slew > 0.0);
        }
    }

    /// Sigma zero is the exact identity, for every seed: the perturbed
    /// library equals the base bit-for-bit (`PartialEq` over the fitted
    /// coefficients).
    #[test]
    fn sigma_zero_is_identity(seed in 0u64..1_000_000, corner in 0u64..1024) {
        let base = synthetic_library();
        let zero = PerturbSigma { buffer_delay: 0.0, wire_delay: 0.0, slew: 0.0 };
        let p = perturb_library(&base, corner_seed(seed, corner), &zero);
        prop_assert_eq!(p, base);
    }

    /// Distinct stream seeds with nonzero sigma produce distinct
    /// libraries, and the same seed reproduces the same library.
    #[test]
    fn distinct_seeds_distinct_streams(
        seed in 0u64..1_000_000,
        delta in 1u64..1_000_000,
        corner in 0u64..1024,
        s in 0.01..0.3f64,
    ) {
        let base = synthetic_library();
        let sigma = PerturbSigma { buffer_delay: s, wire_delay: s, slew: s };
        let a = perturb_library(&base, corner_seed(seed, corner), &sigma);
        let a2 = perturb_library(&base, corner_seed(seed, corner), &sigma);
        let b = perturb_library(&base, corner_seed(seed + delta, corner), &sigma);
        prop_assert_eq!(&a, &a2);
        prop_assert!(a != b, "seeds {} and {} collided", seed, seed + delta);
    }
}
