//! Closed-form delay and slew metrics — the baselines of paper §3.1.
//!
//! The paper implemented the higher-moment metrics of Alpert et al. ("delay
//! and slew metrics made easy") and the PERI ramp-input extension, found
//! them better than Elmore but still insufficient (they cannot model curved
//! input waveforms), and moved to SPICE characterization. We implement the
//! same ladder so the ablation can be reproduced:
//!
//! * [`elmore_delay`] — first moment, the classic overestimate,
//! * [`d2m_delay`] — the two-moment D2M metric `ln 2 · m1² / √m2`,
//! * [`step_slew_s2m`] — a two-moment 10–90 % slew estimate from the
//!   impulse-response spread,
//! * [`peri_ramp_delay`] / [`peri_ramp_slew`] — PERI: extending step-input
//!   metrics to ramp inputs (output slew ≈ √(input² + step²)).

/// ln 9 — the 10–90 % width of a single-pole exponential in units of its
/// time constant.
const LN9: f64 = 2.197_224_577_336_219_6;

/// Elmore delay: the first moment `m1` itself (seconds). Known to
/// overestimate the 50 % delay of RC trees, often severely at near nodes.
pub fn elmore_delay(m1: f64) -> f64 {
    m1
}

/// The D2M two-moment delay metric: `ln 2 · m1² / √m2` (seconds).
///
/// Exact for a single pole, and empirically accurate at far nodes of RC
/// trees (where the response is dominated by one pole).
///
/// # Panics
///
/// Panics if `m2 <= 0`.
pub fn d2m_delay(m1: f64, m2: f64) -> f64 {
    assert!(m2 > 0.0, "second moment must be positive, got {m2}");
    std::f64::consts::LN_2 * m1 * m1 / m2.sqrt()
}

/// Two-moment 10–90 % step slew estimate (seconds).
///
/// Models the step response as a single pole with variance-matched time
/// constant: σ² = 2·m2 − m1², slew ≈ ln 9 · √σ² (exact for one pole, where
/// σ = τ). Falls back to the Elmore time constant when the variance is
/// numerically negative (can happen on heavily mismatched fits).
pub fn step_slew_s2m(m1: f64, m2: f64) -> f64 {
    let var = 2.0 * m2 - m1 * m1;
    if var > 0.0 {
        LN9 * var.sqrt()
    } else {
        LN9 * m1
    }
}

/// PERI ramp-input 50 % delay (seconds): to first order the 50 % delay of a
/// linear system is shift-invariant in the input's 50 % crossing, so the
/// step delay metric carries over unchanged.
pub fn peri_ramp_delay(step_delay: f64, _input_slew: f64) -> f64 {
    step_delay
}

/// PERI ramp-input output slew (seconds): the root-sum-square extension
/// `√(slew_in² + slew_step²)`, exact in the variance sense for convolution.
pub fn peri_ramp_slew(step_slew: f64, input_slew: f64) -> f64 {
    (step_slew * step_slew + input_slew * input_slew).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rctree::RcTree;
    use cts_spice::units::*;

    #[test]
    fn d2m_exact_for_single_pole() {
        let tau = 100.0 * PS;
        let (m1, m2) = (tau, tau * tau);
        let d = d2m_delay(m1, m2);
        assert!((d - std::f64::consts::LN_2 * tau).abs() < 1e-18);
        // Elmore overestimates the 50% point of an exponential by 1/ln2.
        assert!(elmore_delay(m1) > d);
    }

    #[test]
    fn s2m_exact_for_single_pole() {
        let tau = 80.0 * PS;
        let slew = step_slew_s2m(tau, tau * tau);
        assert!((slew - 2.197_224_577 * tau).abs() < 1e-15);
    }

    #[test]
    fn d2m_at_most_elmore_on_rc_lines() {
        // On distributed lines D2M <= Elmore (it corrects the overestimate).
        let mut t = RcTree::new(0.0);
        let end = t.add_wire(t.root(), 500.0, 200.0 * FF, 32);
        let (m1, m2) = t.m1_m2(end);
        assert!(d2m_delay(m1, m2) <= elmore_delay(m1));
        assert!(d2m_delay(m1, m2) > 0.0);
    }

    #[test]
    fn peri_slew_dominated_by_larger_term() {
        let s = peri_ramp_slew(30.0 * PS, 40.0 * PS);
        assert!((s - 50.0 * PS).abs() < 1e-15);
        assert!(peri_ramp_slew(0.0, 70.0 * PS) == 70.0 * PS);
    }

    #[test]
    fn s2m_negative_variance_fallback() {
        // m2 < m1^2/2 => negative variance; must not NaN.
        let s = step_slew_s2m(100.0 * PS, 1000.0 * PS * PS);
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    #[should_panic(expected = "second moment")]
    fn d2m_rejects_bad_m2() {
        let _ = d2m_delay(1e-12, 0.0);
    }
}
