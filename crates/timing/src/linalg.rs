//! Minimal dense linear algebra for least-squares fitting.
//!
//! The paper fits its delay/slew surfaces in MATLAB; we solve the same
//! ordinary-least-squares problems with our own primitives: a Cholesky
//! factorization of the normal equations, with a Householder-QR fallback for
//! borderline-conditioned systems. Matrices here are tiny (tens of columns),
//! so clarity beats blocking/vectorization.

/// Column-major dense matrix, sized at construction.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    /// data[c * rows + r]
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `self^T * self` (the Gram matrix of the columns).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut acc = 0.0;
                for r in 0..self.rows {
                    acc += self[(r, i)] * self[(r, j)];
                }
                g[(i, j)] = acc;
                g[(j, i)] = acc;
            }
        }
        g
    }

    /// `self^T * v`.
    pub fn t_mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "dimension mismatch");
        (0..self.cols)
            .map(|c| (0..self.rows).map(|r| self[(r, c)] * v[r]).sum())
            .collect()
    }

    /// `self * v`.
    pub fn mul_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[c * self.rows + r]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[c * self.rows + r]
    }
}

/// Solves the SPD system `a x = b` by Cholesky factorization.
///
/// Returns `None` if `a` is not (numerically) positive definite.
pub fn solve_cholesky(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "cholesky needs a square matrix");
    assert_eq!(b.len(), n, "dimension mismatch");
    // Lower-triangular factor L with a = L L^T.
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        let dj = d.sqrt();
        l[(j, j)] = dj;
        for i in (j + 1)..n {
            let mut v = a[(i, j)];
            for k in 0..j {
                v -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = v / dj;
        }
    }
    // Forward then back substitution.
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[(i, k)] * y[k];
        }
        y[i] = acc / l[(i, i)];
    }
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in (i + 1)..n {
            acc -= l[(k, i)] * x[k];
        }
        x[i] = acc / l[(i, i)];
    }
    Some(x)
}

/// Solves the least-squares problem `min ||a x - b||` by Householder QR.
///
/// Requires `a.rows() >= a.cols()`. Returns `None` if `a` is rank-deficient.
pub fn solve_qr_least_squares(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let (m, n) = (a.rows(), a.cols());
    assert!(m >= n, "least squares needs rows >= cols");
    assert_eq!(b.len(), m, "dimension mismatch");
    let mut r = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Householder vector for column `col`, rows col..m.
        let mut norm = 0.0;
        for i in col..m {
            norm += r[(i, col)] * r[(i, col)];
        }
        let norm = norm.sqrt();
        if norm < 1e-300 {
            return None;
        }
        let alpha = if r[(col, col)] > 0.0 { -norm } else { norm };
        let mut v = vec![0.0; m - col];
        v[0] = r[(col, col)] - alpha;
        for i in (col + 1)..m {
            v[i - col] = r[(i, col)];
        }
        let vtv: f64 = v.iter().map(|x| x * x).sum();
        if vtv < 1e-300 {
            continue; // column already triangular
        }
        // Apply H = I - 2 v v^T / (v^T v) to R and rhs.
        for j in col..n {
            let mut dot = 0.0;
            for i in col..m {
                dot += v[i - col] * r[(i, j)];
            }
            let f = 2.0 * dot / vtv;
            for i in col..m {
                r[(i, j)] -= f * v[i - col];
            }
        }
        let mut dot = 0.0;
        for i in col..m {
            dot += v[i - col] * rhs[i];
        }
        let f = 2.0 * dot / vtv;
        for i in col..m {
            rhs[i] -= f * v[i - col];
        }
    }

    // Back substitution on the upper-triangular R.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let d = r[(i, i)];
        if d.abs() < 1e-12 {
            return None;
        }
        let mut acc = rhs[i];
        for k in (i + 1)..n {
            acc -= r[(i, k)] * x[k];
        }
        x[i] = acc / d;
    }
    Some(x)
}

/// Solves the least-squares problem, trying the (fast) normal equations
/// first and falling back to QR when Cholesky detects ill-conditioning.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    let gram = a.gram();
    let atb = a.t_mul_vec(b);
    solve_cholesky(&gram, &atb).or_else(|| solve_qr_least_squares(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_spd() {
        // a = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 4.0;
        a[(0, 1)] = 2.0;
        a[(1, 0)] = 2.0;
        a[(1, 1)] = 3.0;
        let x = solve_cholesky(&a, &[10.0, 9.0]).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = Matrix::zeros(2, 2);
        a[(0, 0)] = 1.0;
        a[(1, 1)] = -1.0;
        assert!(solve_cholesky(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn qr_recovers_exact_solution() {
        // Overdetermined but consistent: y = 2 + 3x.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let a = Matrix::from_fn(5, 2, |r, c| if c == 0 { 1.0 } else { xs[r] });
        let b: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let sol = solve_qr_least_squares(&a, &b).unwrap();
        assert!((sol[0] - 2.0).abs() < 1e-10);
        assert!((sol[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Noisy line fit: the residual of the LS solution must not exceed
        // that of nearby perturbed solutions.
        let xs: Vec<f64> = (0..20).map(|i| i as f64 / 4.0).collect();
        let b: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + if i % 2 == 0 { 0.05 } else { -0.05 })
            .collect();
        let a = Matrix::from_fn(xs.len(), 2, |r, c| if c == 0 { 1.0 } else { xs[r] });
        let x = least_squares(&a, &b).unwrap();
        let resid = |sol: &[f64]| -> f64 {
            a.mul_vec(sol)
                .iter()
                .zip(&b)
                .map(|(p, y)| (p - y) * (p - y))
                .sum()
        };
        let base = resid(&x);
        for d in [-1e-3, 1e-3] {
            let mut p = x.clone();
            p[0] += d;
            assert!(resid(&p) >= base);
            let mut p = x.clone();
            p[1] += d;
            assert!(resid(&p) >= base);
        }
    }

    #[test]
    fn qr_detects_rank_deficiency() {
        // Two identical columns.
        let a = Matrix::from_fn(4, 2, |r, _| r as f64 + 1.0);
        assert!(solve_qr_least_squares(&a, &[1.0, 2.0, 3.0, 4.0]).is_none());
    }

    #[test]
    fn gram_and_mat_vec() {
        let a = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        let g = a.gram();
        assert_eq!(g.rows(), 2);
        // Column 0 = [0,1,2], column 1 = [1,2,3].
        assert_eq!(g[(0, 0)], 5.0);
        assert_eq!(g[(0, 1)], 8.0);
        assert_eq!(g[(1, 1)], 14.0);
        assert_eq!(a.t_mul_vec(&[1.0, 1.0, 1.0]), vec![3.0, 6.0]);
        assert_eq!(a.mul_vec(&[1.0, 2.0]), vec![2.0, 5.0, 8.0]);
    }
}
