//! Delay and slew modeling for buffered clock tree synthesis.
//!
//! This crate implements Chapter 3 of the paper: the reasons simple models
//! fail, and the SPICE-characterized polynomial library that replaces them.
//!
//! * [`RcTree`] + [`metrics`] — the baselines: Elmore delay, response
//!   moments, the two-moment D2M delay metric and PERI ramp extensions.
//!   These are what the paper implemented, measured, and found insufficient
//!   (§3.1); the workspace keeps them for DME-style merge computation and
//!   for accuracy ablations.
//! * [`mod@characterize`] — sweeps the Fig. 3.3 (single-wire) and Fig. 3.5
//!   (branch) circuits on the [`cts_spice`] simulator across input slew and
//!   wire lengths for every buffer combination.
//! * [`fit`] — least-squares polynomial surfaces/volumes over the sweep
//!   data (the MATLAB surface fits of Figs. 3.4/3.6/3.7).
//! * [`DelaySlewLibrary`] — the queryable library: buffer intrinsic delay,
//!   wire delay, and wire output slew as functions of input slew and
//!   length(s), per (driving buffer, load buffer) combination, with sink
//!   loads mapped to the nearest buffer by capacitance.
//! * [`save_library_string`] / [`load_library_str`] — plain-text caching so
//!   the (expensive) characterization runs once.
//! * [`variation`] — deterministic process-variation corners: seeded
//!   perturbation of a characterized library plus a keyed derivation
//!   cache, the substrate of the workspace's Monte Carlo axis.
//!
//! # Example
//!
//! ```no_run
//! use cts_spice::Technology;
//! use cts_timing::{characterize, BufferId, CharacterizeConfig, Load};
//!
//! let tech = Technology::nominal_45nm();
//! let lib = characterize(&tech, &CharacterizeConfig::fast())?;
//! let timing = lib.single_wire(
//!     BufferId(0),
//!     Load::Buffer(BufferId(0)),
//!     60e-12, // 60 ps input slew
//!     800.0,  // 800 µm of wire
//! );
//! assert!(timing.output_slew > 0.0);
//! # Ok::<(), cts_timing::CharacterizeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod fit;
mod io;
mod library;
mod linalg;
pub mod metrics;
mod rctree;
pub mod variation;

pub use characterize::{
    characterize, sweep_branch, sweep_single_wire, BranchSample, CharacterizeConfig,
    CharacterizeError, SingleWireSample,
};
pub use io::{
    load_library_file, load_library_str, save_library_file, save_library_string, ParseLibraryError,
};
pub use library::{
    BranchFns, BranchTiming, BufferId, DelaySlewLibrary, Load, SingleWireFns, StageTiming,
};
pub use rctree::{RcNodeId, RcTree};
pub use variation::{
    corner_seed, library_fingerprint, perturb_library, CornerLibraryCache, PerturbSigma,
};

use cts_spice::Technology;
use std::sync::OnceLock;

/// Cache-file revision for [`fast_library`]'s on-disk cache. The file name
/// also embeds a fingerprint hash of the fast config and the nominal
/// technology parameters, so *numeric* drift in either invalidates the
/// cache automatically; bump this only when the characterization
/// **pipeline code** (sweeps, fits, stage circuits) changes behavior
/// without touching those parameters.
const FAST_LIB_CACHE_REV: &str = "v1";

/// FNV-1a over the debug renderings of the characterization inputs — the
/// staleness key embedded in the cache file name.
fn fast_lib_fingerprint(tech: &Technology, cfg: &CharacterizeConfig) -> u64 {
    let text = format!("{FAST_LIB_CACHE_REV}|{tech:?}|{cfg:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Returns a process-wide delay/slew library for
/// [`Technology::nominal_45nm`], characterized with
/// [`CharacterizeConfig::fast`] on first use and cached thereafter — in
/// memory per process, and on disk under the workspace `target/` directory
/// so the many test binaries of a `cargo test` run pay the characterization
/// cost once per machine instead of once per binary. The text serialization
/// is exact (17-significant-digit floats), so cached and freshly
/// characterized libraries answer queries identically.
///
/// Set `CTS_NO_LIB_CACHE` to any non-empty value other than `0` to bypass
/// the disk cache and characterize in-process — the manual escape hatch
/// for validating cache-vs-fresh equivalence or working around a damaged
/// `target/` directory. The cache honors `CARGO_TARGET_DIR` when set and
/// falls back to the workspace-relative `target/` otherwise.
///
/// Flows that need the full-resolution library should run [`fn@characterize`]
/// with [`CharacterizeConfig::standard`] themselves (the benchmark binaries
/// cache it on disk).
///
/// # Panics
///
/// Panics if characterization fails — with the nominal technology and fast
/// config this indicates a broken build, not a recoverable condition.
pub fn fast_library() -> &'static DelaySlewLibrary {
    static LIB: OnceLock<DelaySlewLibrary> = OnceLock::new();
    LIB.get_or_init(|| {
        let tech = Technology::nominal_45nm();
        let cfg = CharacterizeConfig::fast();
        let cache_disabled = std::env::var("CTS_NO_LIB_CACHE")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if cache_disabled {
            return characterize(&tech, &cfg)
                .expect("fast characterization of the nominal technology must succeed");
        }
        let target_dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target")
            });
        let path = target_dir.join(format!(
            "ctslib_fast.{FAST_LIB_CACHE_REV}-{:016x}.txt",
            fast_lib_fingerprint(&tech, &cfg)
        ));
        load_or_characterize(&path, &tech, &cfg)
            .expect("fast characterization of the nominal technology must succeed")
    })
}

/// Loads a delay/slew library from `path`, or characterizes one with the
/// given config and caches it there. Examples and the benchmark binaries
/// use this so the multi-minute standard characterization runs once per
/// machine.
///
/// # Errors
///
/// Returns a description if characterization fails; a *stale or corrupt*
/// cache file is regenerated rather than reported.
pub fn load_or_characterize(
    path: impl AsRef<std::path::Path>,
    tech: &Technology,
    cfg: &CharacterizeConfig,
) -> Result<DelaySlewLibrary, String> {
    let path = path.as_ref();
    if let Ok(lib) = load_library_file(path) {
        return Ok(lib);
    }
    let lib = characterize(tech, cfg).map_err(|e| e.to_string())?;
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    // Write-then-rename so concurrent processes sharing the cache (test
    // and bench runs against one `target/`) never observe a torn file.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    let cached = save_library_file(&lib, &tmp)
        .map_err(|e| e.to_string())
        .and_then(|()| {
            std::fs::rename(&tmp, path).map_err(|e| {
                let _ = std::fs::remove_file(&tmp);
                format!("renaming {} into place: {e}", tmp.display())
            })
        });
    if let Err(e) = cached {
        eprintln!(
            "warning: could not cache library at {}: {e}",
            path.display()
        );
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_library_is_cached_and_consistent() {
        let a = fast_library() as *const _;
        let b = fast_library() as *const _;
        assert_eq!(a, b, "must return the same cached instance");
        let lib = fast_library();
        assert_eq!(lib.buffers().len(), 3);
        assert!((lib.vdd() - 1.1).abs() < 1e-12);
    }
}
