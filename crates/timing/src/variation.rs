//! Process-variation corners: deterministic perturbation of a
//! characterized [`DelaySlewLibrary`] plus a keyed derivation cache.
//!
//! Monte Carlo corner analysis reduces to "evaluate the same instance
//! under N perturbed libraries" (sampling-based buffer insertion under
//! variability, arXiv:1705.04990). This module supplies the library
//! half of that axis:
//!
//! - [`corner_seed`] mixes a user seed with a corner index into an
//!   independent per-corner stream seed (pinned — see the unit tests).
//! - [`perturb_library`] derives a perturbed copy of a base library by
//!   scaling every fitted surface with a factor `1 + sigma * u`,
//!   `u ~ U(-1, 1)` drawn from the workspace's pinned xoshiro stream.
//! - [`CornerLibraryCache`] memoizes derivations keyed by
//!   `(base fingerprint, corner seed, sigma bits)` so a service
//!   evaluating hundreds of corners per instance derives each corner
//!   library once.
//!
//! Determinism contract: the perturbation draw order is fixed (single
//! fits in index order, three draws each; branch fits in stored order,
//! five draws each), every draw happens even when its sigma is zero
//! (stream alignment), and `sigma == 0` multiplies by exactly `1.0`,
//! reproducing the base library bit-for-bit. The cache is a pure
//! memoizer — hit or miss, the returned library is identical.

use crate::io::save_library_string;
use crate::library::DelaySlewLibrary;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Relative perturbation half-widths for one corner draw.
///
/// Each fitted surface is scaled by `1 + sigma * u` with `u ~ U(-1, 1)`,
/// so a sigma of `0.1` means "up to ±10 % on that parameter class".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerturbSigma {
    /// Half-width applied to buffer intrinsic-delay surfaces.
    pub buffer_delay: f64,
    /// Half-width applied to wire-delay surfaces.
    pub wire_delay: f64,
    /// Half-width applied to slew surfaces.
    pub slew: f64,
}

impl PerturbSigma {
    /// The cache-key rendering: exact IEEE-754 bits of each sigma, so
    /// two configs share a cache slot iff their sigmas are bit-equal.
    fn key_bits(&self) -> [u64; 3] {
        [
            self.buffer_delay.to_bits(),
            self.wire_delay.to_bits(),
            self.slew.to_bits(),
        ]
    }
}

/// Mixes a user-facing variation seed and a corner index into the
/// per-corner stream seed fed to [`perturb_library`].
///
/// SplitMix64-style finalizer: adjacent `(seed, corner)` pairs land on
/// decorrelated streams. The mapping is part of the determinism
/// contract and pinned by a unit test — changing it invalidates golden
/// corner values everywhere.
pub fn corner_seed(seed: u64, corner: u64) -> u64 {
    let mut z = seed ^ corner.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a fingerprint of a library's exact serialized text — the "base
/// library" component of the corner-cache key.
///
/// Uses the same hash (and the same serialization,
/// [`crate::save_library_string`]) as the on-disk fast-library cache,
/// so bit-identical libraries fingerprint identically across processes.
pub fn library_fingerprint(lib: &DelaySlewLibrary) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in save_library_string(lib).bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derives the perturbed library for one corner.
///
/// One [`StdRng`] is seeded from `corner_seed` (see [`corner_seed`] for
/// the mixing) and consumed in a fixed order: every single-wire fit in
/// index order draws three factors (intrinsic → `sigma.buffer_delay`,
/// wire delay → `sigma.wire_delay`, wire slew → `sigma.slew`), then
/// every branch fit in stored order draws five (intrinsic, left/right
/// delay, left/right slew). Draws happen even at sigma zero so the
/// stream stays aligned across sigma configurations; a zero sigma
/// yields a factor of exactly `1.0` and reproduces the base surface
/// bit-for-bit.
///
/// Scaled surfaces stay finite for finite sigma, and the library's
/// query-time clamps (`max(0.0)` on delays, `max(1e-15)` on slews) keep
/// perturbed timing physical even for large sigmas.
pub fn perturb_library(
    base: &DelaySlewLibrary,
    corner_seed: u64,
    sigma: &PerturbSigma,
) -> DelaySlewLibrary {
    let mut rng = StdRng::seed_from_u64(corner_seed);
    let mut factor = |s: f64| 1.0 + s * rng.gen_range(-1.0..1.0);

    let single = base
        .single_slice()
        .iter()
        .map(|fns| crate::SingleWireFns {
            intrinsic: fns.intrinsic.scaled(factor(sigma.buffer_delay)),
            wire_delay: fns.wire_delay.scaled(factor(sigma.wire_delay)),
            wire_slew: fns.wire_slew.scaled(factor(sigma.slew)),
        })
        .collect();
    let branch = base
        .branch_slice()
        .iter()
        .map(|(key, fns)| {
            (
                *key,
                crate::BranchFns {
                    intrinsic: fns.intrinsic.scaled(factor(sigma.buffer_delay)),
                    left_delay: fns.left_delay.scaled(factor(sigma.wire_delay)),
                    right_delay: fns.right_delay.scaled(factor(sigma.wire_delay)),
                    left_slew: fns.left_slew.scaled(factor(sigma.slew)),
                    right_slew: fns.right_slew.scaled(factor(sigma.slew)),
                },
            )
        })
        .collect();
    DelaySlewLibrary::from_parts(
        base.vdd(),
        base.wire(),
        base.buffers().to_vec(),
        single,
        branch,
    )
}

/// Cache key: (base library fingerprint, corner seed, sigma bits).
type CornerKey = (u64, u64, [u64; 3]);

/// Memoizes [`perturb_library`] derivations across corners, instances
/// and worker threads.
///
/// Keyed by `(base fingerprint, corner seed, sigma bits)`; values are
/// shared via [`Arc`] so concurrent shards evaluating the same corner
/// reuse one derivation. The cache is bounded: once `capacity` entries
/// are resident, further misses derive without inserting (still
/// counted as misses), so memory stays bounded while results remain
/// exactly the derivation output either way.
#[derive(Debug)]
pub struct CornerLibraryCache {
    entries: Mutex<HashMap<CornerKey, Arc<DelaySlewLibrary>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for CornerLibraryCache {
    fn default() -> Self {
        CornerLibraryCache::new()
    }
}

impl CornerLibraryCache {
    /// Default capacity: enough for a few hundred distinct corners.
    const DEFAULT_CAPACITY: usize = 512;

    /// A cache with the default capacity.
    pub fn new() -> CornerLibraryCache {
        CornerLibraryCache::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A cache bounded to at most `capacity` resident derivations.
    pub fn with_capacity(capacity: usize) -> CornerLibraryCache {
        CornerLibraryCache {
            entries: Mutex::new(HashMap::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The perturbed library for `(base_fp, corner_seed, sigma)`,
    /// derived on first request and memoized thereafter.
    ///
    /// `base_fp` must be [`library_fingerprint`]`(base)` — the caller
    /// computes it once per base library rather than per corner.
    pub fn get_or_derive(
        &self,
        base: &DelaySlewLibrary,
        base_fp: u64,
        corner_seed: u64,
        sigma: &PerturbSigma,
    ) -> Arc<DelaySlewLibrary> {
        let key = (base_fp, corner_seed, sigma.key_bits());
        if let Some(hit) = self.entries.lock().expect("corner cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Derive outside the lock: derivation is pure, so a racing
        // thread deriving the same key produces an identical library.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let derived = Arc::new(perturb_library(base, corner_seed, sigma));
        let mut entries = self.entries.lock().expect("corner cache lock");
        if let Some(winner) = entries.get(&key) {
            return Arc::clone(winner);
        }
        if entries.len() < self.capacity {
            entries.insert(key, Arc::clone(&derived));
        }
        derived
    }

    /// Lookups served from a resident entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to derive (whether or not the result was
    /// inserted).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Resident derivations.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("corner cache lock").len()
    }

    /// True when no derivation is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::tests_support::synthetic_library;
    use crate::{BufferId, Load};

    const SIGMA: PerturbSigma = PerturbSigma {
        buffer_delay: 0.1,
        wire_delay: 0.08,
        slew: 0.08,
    };

    #[test]
    fn corner_seed_is_pinned() {
        // Golden values: the per-corner stream mapping must never move.
        assert_eq!(corner_seed(0, 0), 0);
        assert_eq!(corner_seed(2010, 0), 0x625b_aac0_ce81_0d1b);
        assert_eq!(corner_seed(2010, 1), 0xdfcc_78c8_674d_57f6);
        assert_eq!(corner_seed(2011, 1), 0x90f3_aaed_67a2_4c36);
    }

    #[test]
    fn sigma_zero_reproduces_base_exactly() {
        let base = synthetic_library();
        let zero = PerturbSigma {
            buffer_delay: 0.0,
            wire_delay: 0.0,
            slew: 0.0,
        };
        let p = perturb_library(&base, corner_seed(7, 3), &zero);
        assert_eq!(p, base);
    }

    #[test]
    fn same_seed_same_library_distinct_seeds_distinct() {
        let base = synthetic_library();
        let a = perturb_library(&base, corner_seed(7, 3), &SIGMA);
        let b = perturb_library(&base, corner_seed(7, 3), &SIGMA);
        let c = perturb_library(&base, corner_seed(8, 3), &SIGMA);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, base);
    }

    #[test]
    fn perturbed_queries_stay_physical() {
        let base = synthetic_library();
        let p = perturb_library(&base, corner_seed(42, 11), &SIGMA);
        let t = p.single_wire(BufferId(0), Load::Buffer(BufferId(1)), 40e-12, 700.0);
        assert!(t.buffer_delay.is_finite() && t.buffer_delay >= 0.0);
        assert!(t.wire_delay.is_finite() && t.wire_delay >= 0.0);
        assert!(t.output_slew.is_finite() && t.output_slew > 0.0);
    }

    #[test]
    fn fingerprint_distinguishes_libraries() {
        let base = synthetic_library();
        let fp = library_fingerprint(&base);
        assert_eq!(fp, library_fingerprint(&base));
        let p = perturb_library(&base, corner_seed(1, 1), &SIGMA);
        assert_ne!(fp, library_fingerprint(&p));
    }

    #[test]
    fn cache_memoizes_and_counts() {
        let base = synthetic_library();
        let fp = library_fingerprint(&base);
        let cache = CornerLibraryCache::new();
        let s = corner_seed(9, 0);
        let first = cache.get_or_derive(&base, fp, s, &SIGMA);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (0, 1, 1));
        let second = cache.get_or_derive(&base, fp, s, &SIGMA);
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*first, perturb_library(&base, s, &SIGMA));
    }

    #[test]
    fn cache_capacity_bounds_residency_without_changing_results() {
        let base = synthetic_library();
        let fp = library_fingerprint(&base);
        let cache = CornerLibraryCache::with_capacity(2);
        for corner in 0..5u64 {
            let s = corner_seed(3, corner);
            let got = cache.get_or_derive(&base, fp, s, &SIGMA);
            assert_eq!(*got, perturb_library(&base, s, &SIGMA));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 5);
        // Evicted-by-capacity corners keep missing; resident ones hit.
        cache.get_or_derive(&base, fp, corner_seed(3, 0), &SIGMA);
        assert_eq!(cache.hits(), 1);
        cache.get_or_derive(&base, fp, corner_seed(3, 4), &SIGMA);
        assert_eq!(cache.misses(), 6);
    }
}
