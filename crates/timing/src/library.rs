//! The delay/slew library: the paper's pre-characterized timing model
//! (§3.2.3), queried millions of times by the CTS flow.

use crate::fit::PolyFit;
use cts_spice::{BufferType, WireParams};
use std::fmt;

/// Index of a buffer type within a library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub usize);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf#{}", self.0)
    }
}

/// What terminates a wire: another buffer's input, or a clock sink.
///
/// The paper approximates sink-terminated components "by a component ending
/// with a buffer of similar load capacitance" (§3.2.1); [`Load::Sink`] is
/// resolved the same way via [`DelaySlewLibrary::nearest_buffer_by_cap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Load {
    /// The input of a library buffer.
    Buffer(BufferId),
    /// A clock sink with the given input capacitance (farads).
    Sink {
        /// Sink input capacitance (F).
        cap: f64,
    },
}

/// Timing of a single-wire component: a driving buffer plus its output wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Driving buffer intrinsic delay (s).
    pub buffer_delay: f64,
    /// Wire 50 %-to-50 % delay (s).
    pub wire_delay: f64,
    /// 10–90 % slew at the far end of the wire (s).
    pub output_slew: f64,
}

impl StageTiming {
    /// Total stage delay: buffer plus wire (s).
    pub fn total_delay(&self) -> f64 {
        self.buffer_delay + self.wire_delay
    }
}

/// Timing of a branch component: a driving buffer plus two output wires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchTiming {
    /// Driving buffer intrinsic delay (s).
    pub buffer_delay: f64,
    /// Left wire delay (s).
    pub left_delay: f64,
    /// Left far-end slew (s).
    pub left_slew: f64,
    /// Right wire delay (s).
    pub right_delay: f64,
    /// Right far-end slew (s).
    pub right_slew: f64,
}

/// Fitted functions for one (drive, load) single-wire combination, each over
/// `(input slew [s], wire length [µm])`.
#[derive(Debug, Clone, PartialEq)]
pub struct SingleWireFns {
    /// Buffer intrinsic delay surface.
    pub intrinsic: PolyFit,
    /// Wire delay surface.
    pub wire_delay: PolyFit,
    /// Wire output slew surface.
    pub wire_slew: PolyFit,
}

/// Fitted functions for one (drive, load_left, load_right) branch
/// combination, each over `(input slew [s], l_left [µm], l_right [µm])`.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchFns {
    /// Buffer intrinsic delay volume.
    pub intrinsic: PolyFit,
    /// Left wire delay volume.
    pub left_delay: PolyFit,
    /// Right wire delay volume.
    pub right_delay: PolyFit,
    /// Left slew volume.
    pub left_slew: PolyFit,
    /// Right slew volume.
    pub right_slew: PolyFit,
}

/// The pre-characterized delay/slew library.
///
/// Holds, for every buffer combination, polynomial models of buffer
/// intrinsic delay, wire delay and wire slew, fitted to simulations of the
/// Fig. 3.3/3.5 circuits. Build one with [`crate::characterize()`] (or load a
/// cached one via [`crate::load_library_str`]); query with
/// [`DelaySlewLibrary::single_wire`] and [`DelaySlewLibrary::branch`].
#[derive(Debug, Clone, PartialEq)]
pub struct DelaySlewLibrary {
    vdd: f64,
    wire: WireParams,
    buffers: Vec<BufferType>,
    /// Indexed `drive * nb + load`.
    single: Vec<SingleWireFns>,
    /// Keyed by canonical (drive, min load, max load).
    branch: Vec<((usize, usize, usize), BranchFns)>,
}

impl DelaySlewLibrary {
    /// Assembles a library from fitted parts (used by [`crate::characterize()`]
    /// and the loader).
    ///
    /// # Panics
    ///
    /// Panics if `single` does not contain exactly `buffers.len()²` entries
    /// or `branch` lacks a canonical triple.
    pub fn from_parts(
        vdd: f64,
        wire: WireParams,
        buffers: Vec<BufferType>,
        single: Vec<SingleWireFns>,
        branch: Vec<((usize, usize, usize), BranchFns)>,
    ) -> DelaySlewLibrary {
        let nb = buffers.len();
        assert!(nb > 0, "library needs at least one buffer");
        assert_eq!(single.len(), nb * nb, "single-wire fits incomplete");
        for d in 0..nb {
            for ll in 0..nb {
                for lr in ll..nb {
                    assert!(
                        branch.iter().any(|(k, _)| *k == (d, ll, lr)),
                        "missing branch fit ({d},{ll},{lr})"
                    );
                }
            }
        }
        DelaySlewLibrary {
            vdd,
            wire,
            buffers,
            single,
            branch,
        }
    }

    /// Supply voltage the library was characterized at (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Wire parasitics the library was characterized with.
    pub fn wire(&self) -> WireParams {
        self.wire
    }

    /// The buffer types, indexable by [`BufferId`].
    pub fn buffers(&self) -> &[BufferType] {
        &self.buffers
    }

    /// A specific buffer type.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn buffer(&self, id: BufferId) -> &BufferType {
        &self.buffers[id.0]
    }

    /// All buffer ids, smallest first.
    pub fn buffer_ids(&self) -> impl Iterator<Item = BufferId> {
        (0..self.buffers.len()).map(BufferId)
    }

    /// The buffer whose input capacitance is closest to `cap` — the paper's
    /// sink-as-buffer approximation.
    pub fn nearest_buffer_by_cap(&self, cap: f64) -> BufferId {
        let tech_cap = |b: &BufferType| b.stage1_size() * CG_1X_FOR_MATCHING;
        let mut best = 0;
        let mut best_err = f64::INFINITY;
        for (i, b) in self.buffers.iter().enumerate() {
            let err = (tech_cap(b) - cap).abs();
            if err < best_err {
                best_err = err;
                best = i;
            }
        }
        BufferId(best)
    }

    fn resolve(&self, load: Load) -> BufferId {
        match load {
            Load::Buffer(id) => {
                assert!(id.0 < self.buffers.len(), "load buffer out of range");
                id
            }
            Load::Sink { cap } => self.nearest_buffer_by_cap(cap),
        }
    }

    fn single_fns(&self, drive: BufferId, load: BufferId) -> &SingleWireFns {
        assert!(drive.0 < self.buffers.len(), "drive buffer out of range");
        &self.single[drive.0 * self.buffers.len() + load.0]
    }

    /// Timing of a single-wire component: `drive` buffer, `length_um` of
    /// wire, terminated by `load`, with the given input slew (s) at the
    /// driving buffer.
    ///
    /// Queries outside the characterized (slew, length) domain are clamped.
    ///
    /// # Panics
    ///
    /// Panics if `drive` (or a buffer load) is out of range.
    pub fn single_wire(
        &self,
        drive: BufferId,
        load: Load,
        input_slew: f64,
        length_um: f64,
    ) -> StageTiming {
        let load = self.resolve(load);
        let fns = self.single_fns(drive, load);
        let x = [input_slew, length_um];
        StageTiming {
            buffer_delay: fns.intrinsic.eval(&x).max(0.0),
            wire_delay: fns.wire_delay.eval(&x).max(0.0),
            output_slew: fns.wire_slew.eval(&x).max(1e-15),
        }
    }

    /// Timing of a branch component: `drive` buffer into two wires of
    /// lengths `(l_left, l_right)` µm terminated by `loads`.
    ///
    /// Load pairs are resolved to the canonical (sorted) characterized
    /// combination, swapping left/right as needed.
    ///
    /// # Panics
    ///
    /// Panics if `drive` (or a buffer load) is out of range.
    pub fn branch(
        &self,
        drive: BufferId,
        loads: (Load, Load),
        input_slew: f64,
        lengths_um: (f64, f64),
    ) -> BranchTiming {
        assert!(drive.0 < self.buffers.len(), "drive buffer out of range");
        let l0 = self.resolve(loads.0);
        let l1 = self.resolve(loads.1);
        let swapped = l0.0 > l1.0;
        let (ca, cb) = if swapped { (l1.0, l0.0) } else { (l0.0, l1.0) };
        let (la, lb) = if swapped {
            (lengths_um.1, lengths_um.0)
        } else {
            (lengths_um.0, lengths_um.1)
        };
        let fns = &self
            .branch
            .iter()
            .find(|(k, _)| *k == (drive.0, ca, cb))
            .expect("canonical branch fit present (checked at construction)")
            .1;
        let x = [input_slew, la, lb];
        let (d_a, s_a) = (
            fns.left_delay.eval(&x).max(0.0),
            fns.left_slew.eval(&x).max(1e-15),
        );
        let (d_b, s_b) = (
            fns.right_delay.eval(&x).max(0.0),
            fns.right_slew.eval(&x).max(1e-15),
        );
        let buffer_delay = fns.intrinsic.eval(&x).max(0.0);
        if swapped {
            BranchTiming {
                buffer_delay,
                left_delay: d_b,
                left_slew: s_b,
                right_delay: d_a,
                right_slew: s_a,
            }
        } else {
            BranchTiming {
                buffer_delay,
                left_delay: d_a,
                left_slew: s_a,
                right_delay: d_b,
                right_slew: s_b,
            }
        }
    }

    /// The characterized `(slew, length)` domain of a single-wire
    /// combination: `((slew_lo, slew_hi), (len_lo, len_hi))`.
    pub fn single_domain(&self, drive: BufferId, load: Load) -> ((f64, f64), (f64, f64)) {
        let load = self.resolve(load);
        let d = self.single_fns(drive, load).wire_slew.domain();
        (d[0], d[1])
    }

    /// The characterized per-arm length domain `(len_lo, len_hi)` of the
    /// branch fits (identical across combinations by construction).
    pub fn branch_length_domain(&self) -> (f64, f64) {
        let d = self.branch[0].1.left_slew.domain();
        // dims: (slew, l_left, l_right); arm domains are symmetric.
        (d[1].0.min(d[2].0), d[1].1.max(d[2].1))
    }

    /// Longest wire (µm) a `drive` buffer can drive into `load` while
    /// keeping the far-end slew at or below `slew_limit`, for a given input
    /// slew. Found by bisection on the fitted slew surface; returns the
    /// domain maximum if even that respects the limit, or `None` if no
    /// characterized length does.
    pub fn max_wire_length_for_slew(
        &self,
        drive: BufferId,
        load: Load,
        input_slew: f64,
        slew_limit: f64,
    ) -> Option<f64> {
        let ((_, _), (len_lo, len_hi)) = self.single_domain(drive, load);
        let slew_at = |len: f64| self.single_wire(drive, load, input_slew, len).output_slew;
        if slew_at(len_lo) > slew_limit {
            return None;
        }
        if slew_at(len_hi) <= slew_limit {
            return Some(len_hi);
        }
        let (mut lo, mut hi) = (len_lo, len_hi);
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if slew_at(mid) <= slew_limit {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// A restricted library holding only the first `k` buffer types.
    ///
    /// Buffer ids `0..k` keep their meaning (the truncation preserves
    /// ordering), so trees synthesized against a subset evaluate
    /// identically under the full library. Single-wire fits are
    /// re-indexed to the `k × k` grid and branch fits are filtered to
    /// canonical triples whose indices all fall below `k`; both are
    /// bit-copies of the originals, so timing queries that stay within
    /// the subset return byte-identical results.
    ///
    /// Returns `None` when `k` is zero or exceeds the buffer count —
    /// callers surface that as an options error rather than a panic.
    pub fn subset(&self, k: usize) -> Option<DelaySlewLibrary> {
        let nb = self.buffers.len();
        if k == 0 || k > nb {
            return None;
        }
        if k == nb {
            return Some(self.clone());
        }
        let buffers = self.buffers[..k].to_vec();
        let mut single = Vec::with_capacity(k * k);
        for drive in 0..k {
            for load in 0..k {
                single.push(self.single[drive * nb + load].clone());
            }
        }
        let branch = self
            .branch
            .iter()
            .filter(|((d, ll, lr), _)| *d < k && *ll < k && *lr < k)
            .cloned()
            .collect();
        Some(DelaySlewLibrary::from_parts(
            self.vdd, self.wire, buffers, single, branch,
        ))
    }

    // -- accessors for serialization ---------------------------------------

    pub(crate) fn single_slice(&self) -> &[SingleWireFns] {
        &self.single
    }

    pub(crate) fn branch_slice(&self) -> &[((usize, usize, usize), BranchFns)] {
        &self.branch
    }
}

/// 1× gate capacitance used when matching sink caps to buffer input caps.
/// Matches [`cts_spice::Technology::nominal_45nm`]'s `cg_1x`; kept local so
/// the library stays self-contained after deserialization.
const CG_1X_FOR_MATCHING: f64 = 1.2e-15;

impl fmt::Display for DelaySlewLibrary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "delay/slew library[{} buffers, {} single fits, {} branch fits]",
            self.buffers.len(),
            self.single.len(),
            self.branch.len()
        )
    }
}

/// Test-only helpers shared by this crate's test modules.
#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::fit::PolyFit;

    /// Builds a tiny synthetic library with linear fits so query mechanics
    /// can be tested without running characterization.
    pub(crate) fn synthetic_library() -> DelaySlewLibrary {
        let buffers = vec![BufferType::new("A", 10.0), BufferType::new("B", 20.0)];
        let grid: Vec<Vec<f64>> = (0..4)
            .flat_map(|i| (0..4).map(move |j| vec![i as f64 * 40e-12, j as f64 * 700.0]))
            .collect();
        let lin2 = |a: f64, b: f64, c: f64| {
            let vals: Vec<f64> = grid.iter().map(|p| a + b * p[0] + c * p[1]).collect();
            PolyFit::fit(2, 1, &grid, &vals).unwrap()
        };
        let single_for = |scale: f64| SingleWireFns {
            intrinsic: lin2(20e-12 * scale, 0.1, 0.0),
            wire_delay: lin2(0.0, 0.0, 1e-15 * scale),
            wire_slew: lin2(10e-12, 0.5, 50e-15 * scale),
        };
        let single = vec![
            single_for(1.0),
            single_for(1.1),
            single_for(0.6),
            single_for(0.7),
        ];

        let grid3: Vec<Vec<f64>> = (0..3)
            .flat_map(|i| {
                (0..3).flat_map(move |j| {
                    (0..3).map(move |k| vec![i as f64 * 40e-12, j as f64 * 700.0, k as f64 * 700.0])
                })
            })
            .collect();
        let lin3 = |a: f64, b: (f64, f64, f64)| {
            let vals: Vec<f64> = grid3
                .iter()
                .map(|p| a + b.0 * p[0] + b.1 * p[1] + b.2 * p[2])
                .collect();
            PolyFit::fit(3, 1, &grid3, &vals).unwrap()
        };
        let branch_for = || BranchFns {
            intrinsic: lin3(25e-12, (0.1, 0.0, 0.0)),
            left_delay: lin3(0.0, (0.0, 2e-15, 1e-15)),
            right_delay: lin3(0.0, (0.0, 1e-15, 2e-15)),
            left_slew: lin3(15e-12, (0.5, 60e-15, 20e-15)),
            right_slew: lin3(15e-12, (0.5, 20e-15, 60e-15)),
        };
        let mut branch = Vec::new();
        for d in 0..2 {
            for ll in 0..2 {
                for lr in ll..2 {
                    branch.push(((d, ll, lr), branch_for()));
                }
            }
        }
        DelaySlewLibrary::from_parts(1.1, WireParams::gsrc_10x(), buffers, single, branch)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::synthetic_library;
    use super::*;

    #[test]
    fn single_wire_query_evaluates_fits() {
        let lib = synthetic_library();
        let t = lib.single_wire(BufferId(0), Load::Buffer(BufferId(0)), 40e-12, 700.0);
        assert!((t.buffer_delay - (20e-12 + 0.1 * 40e-12)).abs() < 1e-15);
        assert!((t.wire_delay - 0.7e-12).abs() < 1e-16);
        assert!(t.output_slew > 0.0);
        assert!((t.total_delay() - t.buffer_delay - t.wire_delay).abs() < 1e-18);
    }

    #[test]
    fn branch_swap_symmetry() {
        let lib = synthetic_library();
        let fwd = lib.branch(
            BufferId(0),
            (Load::Buffer(BufferId(1)), Load::Buffer(BufferId(0))),
            40e-12,
            (700.0, 1400.0),
        );
        let rev = lib.branch(
            BufferId(0),
            (Load::Buffer(BufferId(0)), Load::Buffer(BufferId(1))),
            40e-12,
            (1400.0, 700.0),
        );
        assert!((fwd.left_delay - rev.right_delay).abs() < 1e-18);
        assert!((fwd.right_slew - rev.left_slew).abs() < 1e-18);
        assert!((fwd.buffer_delay - rev.buffer_delay).abs() < 1e-18);
    }

    #[test]
    fn sink_resolves_to_nearest_buffer() {
        let lib = synthetic_library();
        // Buffer A: stage1 = 10/3 x -> ~4 fF; buffer B: 20/3 x -> ~8 fF.
        let small = lib.nearest_buffer_by_cap(3.0e-15);
        let big = lib.nearest_buffer_by_cap(9.0e-15);
        assert_eq!(small, BufferId(0));
        assert_eq!(big, BufferId(1));
        // Sink loads route through the same tables as buffer loads.
        let via_sink = lib.single_wire(BufferId(0), Load::Sink { cap: 3.0e-15 }, 40e-12, 700.0);
        let via_buf = lib.single_wire(BufferId(0), Load::Buffer(small), 40e-12, 700.0);
        assert_eq!(via_sink, via_buf);
    }

    #[test]
    fn max_length_bisection_respects_limit() {
        let lib = synthetic_library();
        let drive = BufferId(0);
        let load = Load::Buffer(BufferId(0));
        let slew_in = 20e-12;
        let limit = 60e-12;
        let len = lib
            .max_wire_length_for_slew(drive, load, slew_in, limit)
            .expect("limit reachable");
        let at = lib.single_wire(drive, load, slew_in, len).output_slew;
        assert!(at <= limit * (1.0 + 1e-9), "slew at found length: {at}");
        // A slightly longer wire must exceed the limit (when not clamped).
        let beyond = lib
            .single_wire(drive, load, slew_in, len + 10.0)
            .output_slew;
        let ((_, _), (_, len_hi)) = lib.single_domain(drive, load);
        if len + 10.0 < len_hi {
            assert!(beyond > limit);
        }
        // An impossible limit returns None.
        assert!(lib
            .max_wire_length_for_slew(drive, load, slew_in, 1e-15)
            .is_none());
    }

    #[test]
    fn queries_clamp_to_domain() {
        let lib = synthetic_library();
        let inside = lib.single_wire(BufferId(0), Load::Buffer(BufferId(0)), 120e-12, 2100.0);
        let outside = lib.single_wire(BufferId(0), Load::Buffer(BufferId(0)), 10.0, 1e9);
        assert_eq!(inside, outside);
    }

    #[test]
    fn subset_preserves_ids_and_fits() {
        let lib = synthetic_library();
        let sub = lib.subset(1).expect("1 <= k <= nb");
        assert_eq!(sub.buffers().len(), 1);
        assert_eq!(sub.buffers()[0], lib.buffers()[0]);
        // Queries within the subset are bit-identical to the full library.
        let full = lib.single_wire(BufferId(0), Load::Buffer(BufferId(0)), 40e-12, 700.0);
        let cut = sub.single_wire(BufferId(0), Load::Buffer(BufferId(0)), 40e-12, 700.0);
        assert_eq!(full, cut);
        let fullb = lib.branch(
            BufferId(0),
            (Load::Buffer(BufferId(0)), Load::Buffer(BufferId(0))),
            40e-12,
            (700.0, 900.0),
        );
        let cutb = sub.branch(
            BufferId(0),
            (Load::Buffer(BufferId(0)), Load::Buffer(BufferId(0))),
            40e-12,
            (700.0, 900.0),
        );
        assert_eq!(fullb, cutb);
        // Full-width subset is the identity; out-of-range is refused.
        assert_eq!(lib.subset(2).unwrap(), lib);
        assert!(lib.subset(0).is_none());
        assert!(lib.subset(3).is_none());
    }

    #[test]
    #[should_panic(expected = "single-wire fits incomplete")]
    fn from_parts_validates() {
        let lib = synthetic_library();
        let _bad = DelaySlewLibrary::from_parts(
            1.1,
            WireParams::gsrc_10x(),
            lib.buffers().to_vec(),
            Vec::new(),
            Vec::new(),
        );
    }
}
