//! Lightweight RC trees with moment computation — the substrate for the
//! Elmore and higher-moment delay baselines (paper §3.1).

use std::fmt;

/// Index of a node in an [`RcTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RcNodeId(usize);

impl RcNodeId {
    /// Index into per-node arrays.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RcNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rc{}", self.0)
    }
}

/// A grounded RC tree rooted at a driver.
///
/// Node 0 is the root (driving point). Every other node attaches to an
/// existing node through a resistance; every node carries a grounded
/// capacitance. This is the classic structure on which Elmore delay and
/// response moments have closed forms.
///
/// ```
/// use cts_timing::RcTree;
/// // 1 kΩ into 100 fF: Elmore delay = RC = 100 ps.
/// let mut t = RcTree::new(0.0);
/// let leaf = t.add_node(t.root(), 1000.0, 100e-15);
/// assert!((t.elmore_delay(leaf) - 100e-12).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RcTree {
    parent: Vec<Option<RcNodeId>>,
    r_up: Vec<f64>,
    cap: Vec<f64>,
}

impl RcTree {
    /// Creates a tree containing only the root, with `root_cap` farads of
    /// grounded capacitance at the driving point.
    pub fn new(root_cap: f64) -> RcTree {
        assert!(root_cap >= 0.0 && root_cap.is_finite());
        RcTree {
            parent: vec![None],
            r_up: vec![0.0],
            cap: vec![root_cap],
        }
    }

    /// The root (driving point).
    pub fn root(&self) -> RcNodeId {
        RcNodeId(0)
    }

    /// Adds a node hanging from `parent` through `resistance` ohms, carrying
    /// `cap` farads, and returns its id.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range parents, non-positive resistance, or negative
    /// capacitance.
    pub fn add_node(&mut self, parent: RcNodeId, resistance: f64, cap: f64) -> RcNodeId {
        assert!(parent.0 < self.len(), "parent out of range");
        assert!(
            resistance > 0.0 && resistance.is_finite(),
            "resistance must be positive"
        );
        assert!(cap >= 0.0 && cap.is_finite(), "capacitance must be >= 0");
        let id = RcNodeId(self.len());
        self.parent.push(Some(parent));
        self.r_up.push(resistance);
        self.cap.push(cap);
        id
    }

    /// Adds a uniform RC wire from `from` as a chain of `segments` lumps and
    /// returns the far-end node. Total parasitics are `r_total`/`c_total`.
    ///
    /// # Panics
    ///
    /// Panics if `segments == 0` or parasitics are invalid.
    pub fn add_wire(
        &mut self,
        from: RcNodeId,
        r_total: f64,
        c_total: f64,
        segments: usize,
    ) -> RcNodeId {
        assert!(segments > 0, "need at least one segment");
        let rs = r_total / segments as f64;
        let cs = c_total / segments as f64;
        let mut at = from;
        for _ in 0..segments {
            at = self.add_node(at, rs, cs);
        }
        at
    }

    /// Adds extra grounded capacitance at a node (e.g. a sink or gate load).
    pub fn add_cap(&mut self, node: RcNodeId, cap: f64) {
        assert!(node.0 < self.len(), "node out of range");
        assert!(cap >= 0.0 && cap.is_finite());
        self.cap[node.0] += cap;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.len() == 1
    }

    /// Total capacitance of the tree (the load seen by an ideal driver), in
    /// farads.
    pub fn total_cap(&self) -> f64 {
        self.cap.iter().sum()
    }

    /// First `k` moments of the impulse response at every node.
    ///
    /// Returns `moments[j][i]` = the `j+1`-th moment (m₁ … m_k) of node `i`'s
    /// transfer function, computed by the standard path-resistance recursion:
    /// iteratively propagate "moment charges" down and accumulate resistive
    /// drops up. m₁ is the (negative of the) Elmore delay; this method
    /// returns magnitudes with the conventional sign (m₁ > 0 means delay).
    pub fn moments(&self, k: usize) -> Vec<Vec<f64>> {
        assert!(k >= 1, "need at least one moment");
        let n = self.len();
        // v[j][i]: j-th order voltage moment at node i; v[0] = 1 everywhere.
        let mut v_prev = vec![1.0; n];
        let mut out = Vec::with_capacity(k);
        // Children lists for downstream accumulation.
        let mut order: Vec<usize> = (1..n).collect(); // parents precede children by construction
        order.sort_unstable(); // construction already guarantees this; keep explicit

        for _ in 0..k {
            // "Charge" at each node: c_i * v_prev_i; accumulate subtree sums
            // bottom-up.
            let mut subtree_charge: Vec<f64> = (0..n).map(|i| self.cap[i] * v_prev[i]).collect();
            for &i in order.iter().rev() {
                let p = self.parent[i].expect("non-root").0;
                subtree_charge[p] += subtree_charge[i];
            }
            // Moment drop top-down: v_i = v_parent - r_i * subtree_charge_i.
            let mut v_next = vec![0.0; n];
            for &i in &order {
                let p = self.parent[i].expect("non-root").0;
                v_next[i] = v_next[p] - self.r_up[i] * subtree_charge[i];
            }
            // Conventional sign: m1 positive for delay-like quantities.
            out.push(v_next.iter().map(|m| -m).collect::<Vec<f64>>());
            // Next order propagates signed moments.
            v_prev = v_next;
        }
        // Restore alternating signs for higher moments: the recursion above
        // produced signed voltage moments in v_prev; `out` stores magnitudes
        // per convention m_j = (-1)^j * raw. Fix signs for j >= 2.
        for (j, row) in out.iter_mut().enumerate() {
            if j % 2 == 1 {
                // raw m2 is positive already: -(negative raw) flipped it; undo.
                for m in row.iter_mut() {
                    *m = -*m;
                }
            }
        }
        out
    }

    /// Elmore delay (first moment of the impulse response) from the root to
    /// `node`, in seconds.
    pub fn elmore_delay(&self, node: RcNodeId) -> f64 {
        assert!(node.0 < self.len(), "node out of range");
        self.moments(1)[0][node.0]
    }

    /// First and second moments `(m1, m2)` at `node`, both positive for
    /// ordinary RC trees.
    pub fn m1_m2(&self, node: RcNodeId) -> (f64, f64) {
        let m = self.moments(2);
        (m[0][node.0], m[1][node.0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-lump ladder with textbook Elmore values.
    #[test]
    fn elmore_ladder() {
        // root -R1=100-> a (10f) -R2=200-> b (20f)
        let mut t = RcTree::new(0.0);
        let a = t.add_node(t.root(), 100.0, 10e-15);
        let b = t.add_node(a, 200.0, 20e-15);
        // Elmore(a) = R1*(C_a + C_b) = 100*30f = 3 ps
        // Elmore(b) = Elmore(a) + R2*C_b = 3 ps + 200*20f = 7 ps
        assert!((t.elmore_delay(a) - 3e-12).abs() < 1e-18);
        assert!((t.elmore_delay(b) - 7e-12).abs() < 1e-18);
    }

    #[test]
    fn elmore_branch_sees_sibling_load() {
        // root -R-> mid; mid -Ra-> a(Ca); mid -Rb-> b(Cb)
        let mut t = RcTree::new(0.0);
        let mid = t.add_node(t.root(), 100.0, 0.0);
        let a = t.add_node(mid, 50.0, 10e-15);
        let _b = t.add_node(mid, 50.0, 40e-15);
        // Elmore(a) = 100*(10+40)f + 50*10f = 5.5 ps
        assert!((t.elmore_delay(a) - 5.5e-12).abs() < 1e-18);
    }

    #[test]
    fn single_pole_moments() {
        // R into C: m1 = RC, m2 = (RC)^2 for a single pole.
        let mut t = RcTree::new(0.0);
        let leaf = t.add_node(t.root(), 1000.0, 100e-15);
        let (m1, m2) = t.m1_m2(leaf);
        let tau = 1000.0 * 100e-15;
        assert!((m1 - tau).abs() < 1e-18);
        assert!(
            (m2 - tau * tau).abs() < 1e-30,
            "m2 = {m2}, tau^2 = {}",
            tau * tau
        );
    }

    #[test]
    fn wire_helper_distributes() {
        let mut t = RcTree::new(0.0);
        let end = t.add_wire(t.root(), 1000.0, 100e-15, 50);
        // Distributed RC line: Elmore at far end -> RC/2 * (1 + 1/n).
        let d = t.elmore_delay(end);
        let expect = 0.5 * 1000.0 * 100e-15 * (1.0 + 1.0 / 50.0);
        assert!((d - expect).abs() < 1e-15, "d = {d}");
        assert!((t.total_cap() - 100e-15).abs() < 1e-25);
    }

    #[test]
    fn moments_match_distributed_limit() {
        // For a distributed RC line, m1 -> RC/2 as segments -> inf.
        let mut coarse = RcTree::new(0.0);
        let e1 = coarse.add_wire(coarse.root(), 300.0, 60e-15, 4);
        let mut fine = RcTree::new(0.0);
        let e2 = fine.add_wire(fine.root(), 300.0, 60e-15, 64);
        let limit = 0.5 * 300.0 * 60e-15;
        let d_coarse = coarse.elmore_delay(e1);
        let d_fine = fine.elmore_delay(e2);
        assert!((d_fine - limit).abs() < (d_coarse - limit).abs());
    }

    #[test]
    fn added_cap_increases_delay() {
        let mut t = RcTree::new(0.0);
        let leaf = t.add_wire(t.root(), 500.0, 50e-15, 8);
        let before = t.elmore_delay(leaf);
        t.add_cap(leaf, 30e-15);
        assert!(t.elmore_delay(leaf) > before);
    }

    #[test]
    #[should_panic(expected = "resistance must be positive")]
    fn zero_resistance_rejected() {
        let mut t = RcTree::new(0.0);
        let _ = t.add_node(t.root(), 0.0, 1e-15);
    }
}
