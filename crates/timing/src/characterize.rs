//! SPICE characterization sweeps (paper §3.2).
//!
//! For every (driving buffer, load buffer) combination this module sweeps
//! input slew (via the input-shaping wire length) and load wire length on
//! the Fig. 3.3 single-wire circuit, and additionally the two branch wire
//! lengths on the Fig. 3.5 branch circuit, measuring buffer intrinsic
//! delay, wire delay(s) and wire output slew(s). The measurements feed the
//! polynomial fits that become the [`crate::DelaySlewLibrary`].
//!
//! Simulations are independent, so the sweep fans out over the shared
//! [`cts_util::exec`] thread pool.

use crate::fit::{FitError, PolyFit};
use crate::library::{BranchFns, DelaySlewLibrary, SingleWireFns};
use cts_spice::stages::{branch_stage, single_wire_stage, BranchConfig, SingleWireConfig};
use cts_spice::units::{NS, PS};
use cts_spice::{SimError, SimOptions, SolverContext, Technology};
use cts_util::run_parallel_with;
use std::fmt;

/// Sweep and fitting parameters for [`characterize`].
///
/// `standard()` reproduces the paper-scale characterization; `fast()` is a
/// coarse variant for tests (quadratic fits on small grids).
#[derive(Debug, Clone)]
pub struct CharacterizeConfig {
    /// Input-shaping wire lengths (µm); each produces one input-slew sample.
    pub input_wire_lengths_um: Vec<f64>,
    /// Load wire lengths for single-wire components (µm).
    pub wire_lengths_um: Vec<f64>,
    /// Branch wire lengths; the sweep uses the full cartesian square (µm).
    pub branch_lengths_um: Vec<f64>,
    /// Total degree of the 2-D (slew, length) fits. The paper uses 3rd/4th
    /// order.
    pub surface_order: u32,
    /// Total degree of the 3-D (slew, l_left, l_right) fits.
    pub volume_order: u32,
    /// 10–90 % slew of the ideal ramp feeding the shaping buffer (s).
    pub ramp_slew: f64,
    /// Transient options for each characterization run.
    pub sim: SimOptions,
    /// Worker threads for the sweep fan-out (honored as requested; see
    /// [`cts_util::run_parallel`] — oversubscription is allowed).
    pub threads: usize,
}

impl CharacterizeConfig {
    /// Paper-scale characterization: 5 slews × 7 lengths per buffer pair,
    /// cubic surfaces; 3 slews × 4 × 4 branch grids, quadratic volumes.
    pub fn standard() -> CharacterizeConfig {
        CharacterizeConfig {
            input_wire_lengths_um: vec![10.0, 200.0, 500.0, 900.0, 1500.0],
            wire_lengths_um: vec![5.0, 100.0, 300.0, 600.0, 1000.0, 1500.0, 2200.0],
            branch_lengths_um: vec![50.0, 400.0, 900.0, 1500.0],
            surface_order: 3,
            volume_order: 2,
            ramp_slew: 80.0 * PS,
            sim: {
                let mut o = SimOptions::default_for(6.0 * NS);
                o.dt = 0.5 * PS;
                o
            },
            threads: 8,
        }
    }

    /// Coarse characterization for tests: quadratic fits on minimal grids.
    pub fn fast() -> CharacterizeConfig {
        CharacterizeConfig {
            input_wire_lengths_um: vec![10.0, 500.0, 1200.0],
            wire_lengths_um: vec![5.0, 300.0, 900.0, 1800.0],
            branch_lengths_um: vec![50.0, 600.0, 1400.0],
            surface_order: 2,
            volume_order: 2,
            ramp_slew: 80.0 * PS,
            sim: {
                let mut o = SimOptions::default_for(5.0 * NS);
                o.dt = 0.5 * PS;
                o
            },
            threads: 8,
        }
    }
}

/// Errors from the characterization flow.
#[derive(Debug)]
pub enum CharacterizeError {
    /// A characterization simulation failed.
    Sim {
        /// What was being characterized.
        context: String,
        /// The underlying simulator error.
        source: SimError,
    },
    /// A polynomial fit failed.
    Fit {
        /// What was being fitted.
        context: String,
        /// The underlying fit error.
        source: FitError,
    },
}

impl fmt::Display for CharacterizeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CharacterizeError::Sim { context, source } => {
                write!(f, "characterization sim failed ({context}): {source}")
            }
            CharacterizeError::Fit { context, source } => {
                write!(f, "characterization fit failed ({context}): {source}")
            }
        }
    }
}

impl std::error::Error for CharacterizeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CharacterizeError::Sim { source, .. } => Some(source),
            CharacterizeError::Fit { source, .. } => Some(source),
        }
    }
}

/// One single-wire characterization sample.
#[derive(Debug, Clone, Copy)]
pub struct SingleWireSample {
    /// Measured input slew at the driving buffer (s).
    pub input_slew: f64,
    /// Load wire length (µm).
    pub length_um: f64,
    /// Buffer intrinsic delay (s).
    pub intrinsic_delay: f64,
    /// Wire delay (s).
    pub wire_delay: f64,
    /// Wire output slew (s).
    pub wire_slew: f64,
}

/// One branch characterization sample.
#[derive(Debug, Clone, Copy)]
pub struct BranchSample {
    /// Measured input slew at the driving buffer (s).
    pub input_slew: f64,
    /// Left wire length (µm).
    pub l_left_um: f64,
    /// Right wire length (µm).
    pub l_right_um: f64,
    /// Buffer intrinsic delay (s).
    pub intrinsic_delay: f64,
    /// Left wire delay (s).
    pub left_delay: f64,
    /// Right wire delay (s).
    pub right_delay: f64,
    /// Left wire output slew (s).
    pub left_slew: f64,
    /// Right wire output slew (s).
    pub right_slew: f64,
}

/// Runs the single-wire sweep for one (drive, load) pair and returns the raw
/// samples. Exposed so the figure-regeneration binaries can plot raw sweep
/// data (Fig. 3.4) without refitting.
pub fn sweep_single_wire(
    tech: &Technology,
    drive_idx: usize,
    load_idx: usize,
    cfg: &CharacterizeConfig,
) -> Result<Vec<SingleWireSample>, CharacterizeError> {
    let buffers = tech.buffer_library();
    let shaper = shaping_buffer(tech);
    let mut jobs = Vec::new();
    for &l_input in &cfg.input_wire_lengths_um {
        for &l in &cfg.wire_lengths_um {
            jobs.push((l_input, l));
        }
    }
    // Every sweep point shares the same circuit topology (wire lengths
    // only change element values), so a per-worker solver context makes
    // the partition/elimination plan a once-per-worker cost.
    let samples = run_parallel_with(
        cfg.threads,
        &jobs,
        SolverContext::new,
        |ctx, &(l_input, l)| {
            let scfg = SingleWireConfig {
                input_buf: &shaper,
                l_input_um: l_input,
                drive: &buffers[drive_idx],
                l_um: l,
                load: &buffers[load_idx],
                wire: tech.wire(),
                ramp_slew: cfg.ramp_slew,
                rising: true,
            };
            let m = single_wire_stage(tech, &scfg)
                .measure_with(ctx, &cfg.sim)
                .map_err(|source| CharacterizeError::Sim {
                    context: format!(
                        "single wire drive={} load={} Linput={l_input} L={l}",
                        buffers[drive_idx].name(),
                        buffers[load_idx].name()
                    ),
                    source,
                })?;
            Ok(SingleWireSample {
                input_slew: m.input_slew,
                length_um: l,
                intrinsic_delay: m.intrinsic_delay,
                wire_delay: m.wire_delay,
                wire_slew: m.wire_slew,
            })
        },
    )?;
    Ok(samples)
}

/// Runs the branch sweep for one (drive, load_left, load_right) triple.
pub fn sweep_branch(
    tech: &Technology,
    drive_idx: usize,
    load_left_idx: usize,
    load_right_idx: usize,
    cfg: &CharacterizeConfig,
) -> Result<Vec<BranchSample>, CharacterizeError> {
    let buffers = tech.buffer_library();
    let shaper = shaping_buffer(tech);
    let mut jobs = Vec::new();
    for &l_input in &cfg.input_wire_lengths_um {
        for &ll in &cfg.branch_lengths_um {
            for &lr in &cfg.branch_lengths_um {
                jobs.push((l_input, ll, lr));
            }
        }
    }
    let samples = run_parallel_with(
        cfg.threads,
        &jobs,
        SolverContext::new,
        |ctx, &(l_input, ll, lr)| {
            let bcfg = BranchConfig {
                input_buf: &shaper,
                l_input_um: l_input,
                drive: &buffers[drive_idx],
                l_left_um: ll,
                l_right_um: lr,
                load_left: &buffers[load_left_idx],
                load_right: &buffers[load_right_idx],
                wire: tech.wire(),
                ramp_slew: cfg.ramp_slew,
                rising: true,
            };
            let m = branch_stage(tech, &bcfg)
                .measure_with(ctx, &cfg.sim)
                .map_err(|source| CharacterizeError::Sim {
                    context: format!(
                        "branch drive={} loads=({},{}) Linput={l_input} L=({ll},{lr})",
                        buffers[drive_idx].name(),
                        buffers[load_left_idx].name(),
                        buffers[load_right_idx].name()
                    ),
                    source,
                })?;
            Ok(BranchSample {
                input_slew: m.input_slew,
                l_left_um: ll,
                l_right_um: lr,
                intrinsic_delay: m.intrinsic_delay,
                left_delay: m.left_delay,
                right_delay: m.right_delay,
                left_slew: m.left_slew,
                right_slew: m.right_slew,
            })
        },
    )?;
    Ok(samples)
}

/// Builds the complete delay/slew library for a technology: sweeps every
/// buffer combination, fits surfaces/volumes, and assembles the lookup
/// structure.
///
/// # Errors
///
/// Returns [`CharacterizeError`] if any simulation or fit fails. A failure
/// here means the configuration (windows, grids) cannot characterize the
/// technology — there is no meaningful partial library.
pub fn characterize(
    tech: &Technology,
    cfg: &CharacterizeConfig,
) -> Result<DelaySlewLibrary, CharacterizeError> {
    let buffers = tech.buffer_library();
    let nb = buffers.len();

    let mut single = Vec::with_capacity(nb * nb);
    for d in 0..nb {
        for l in 0..nb {
            let samples = sweep_single_wire(tech, d, l, cfg)?;
            single.push(fit_single(&samples, cfg.surface_order, d, l)?);
        }
    }

    let mut branch = Vec::new();
    for d in 0..nb {
        for ll in 0..nb {
            for lr in ll..nb {
                let samples = sweep_branch(tech, d, ll, lr, cfg)?;
                branch.push((
                    (d, ll, lr),
                    fit_branch(&samples, cfg.volume_order, d, ll, lr)?,
                ));
            }
        }
    }

    Ok(DelaySlewLibrary::from_parts(
        tech.vdd(),
        tech.wire(),
        buffers,
        single,
        branch,
    ))
}

fn fit_single(
    samples: &[SingleWireSample],
    order: u32,
    d: usize,
    l: usize,
) -> Result<SingleWireFns, CharacterizeError> {
    let pts: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| vec![s.input_slew, s.length_um])
        .collect();
    let fit = |vals: Vec<f64>, what: &str| {
        PolyFit::fit(2, order, &pts, &vals).map_err(|source| CharacterizeError::Fit {
            context: format!("single {what} drive#{d} load#{l}"),
            source,
        })
    };
    Ok(SingleWireFns {
        intrinsic: fit(
            samples.iter().map(|s| s.intrinsic_delay).collect(),
            "intrinsic",
        )?,
        wire_delay: fit(samples.iter().map(|s| s.wire_delay).collect(), "wire_delay")?,
        wire_slew: fit(samples.iter().map(|s| s.wire_slew).collect(), "wire_slew")?,
    })
}

fn fit_branch(
    samples: &[BranchSample],
    order: u32,
    d: usize,
    ll: usize,
    lr: usize,
) -> Result<BranchFns, CharacterizeError> {
    let pts: Vec<Vec<f64>> = samples
        .iter()
        .map(|s| vec![s.input_slew, s.l_left_um, s.l_right_um])
        .collect();
    let fit = |vals: Vec<f64>, what: &str| {
        PolyFit::fit(3, order, &pts, &vals).map_err(|source| CharacterizeError::Fit {
            context: format!("branch {what} drive#{d} loads#({ll},{lr})"),
            source,
        })
    };
    Ok(BranchFns {
        intrinsic: fit(
            samples.iter().map(|s| s.intrinsic_delay).collect(),
            "intrinsic",
        )?,
        left_delay: fit(samples.iter().map(|s| s.left_delay).collect(), "left_delay")?,
        right_delay: fit(
            samples.iter().map(|s| s.right_delay).collect(),
            "right_delay",
        )?,
        left_slew: fit(samples.iter().map(|s| s.left_slew).collect(), "left_slew")?,
        right_slew: fit(samples.iter().map(|s| s.right_slew).collect(), "right_slew")?,
    })
}

/// The buffer used to shape ideal ramps into realistic curved edges
/// (`Binput` of Fig. 3.3). A mid-size buffer keeps shaped slews in the range
/// the CTS flow actually sees.
fn shaping_buffer(tech: &Technology) -> cts_spice::BufferType {
    tech.buffer_library()
        .into_iter()
        .nth(1)
        .unwrap_or_else(|| cts_spice::BufferType::new("SHAPER", 20.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_util::run_parallel;

    #[test]
    fn fast_config_is_fittable() {
        // Grid sizes must cover the requested polynomial orders.
        let cfg = CharacterizeConfig::fast();
        let n2 = cfg.input_wire_lengths_um.len() * cfg.wire_lengths_um.len();
        assert!(
            n2 >= 6,
            "quadratic surface needs >= 6 samples, grid has {n2}"
        );
        let n3 = cfg.input_wire_lengths_um.len() * cfg.branch_lengths_um.len().pow(2);
        assert!(
            n3 >= 10,
            "quadratic volume needs >= 10 samples, grid has {n3}"
        );
    }

    #[test]
    fn single_sweep_produces_grid_samples() {
        let tech = Technology::nominal_45nm();
        let mut cfg = CharacterizeConfig::fast();
        cfg.input_wire_lengths_um = vec![10.0, 800.0];
        cfg.wire_lengths_um = vec![100.0, 700.0];
        let samples = sweep_single_wire(&tech, 1, 1, &cfg).unwrap();
        assert_eq!(samples.len(), 4);
        // Slews grow with input wire; delays grow with length.
        assert!(samples[0].input_slew < samples[3].input_slew);
        assert!(samples[0].wire_delay < samples[1].wire_delay);
        for s in &samples {
            assert!(s.intrinsic_delay > 0.0 && s.wire_slew > 0.0);
        }
    }

    #[test]
    fn run_parallel_preserves_order_and_errors() {
        let jobs: Vec<usize> = (0..40).collect();
        let out = run_parallel(4, &jobs, |&j| Ok::<_, CharacterizeError>(j * 2)).unwrap();
        assert_eq!(out, jobs.iter().map(|j| j * 2).collect::<Vec<_>>());

        let err = run_parallel(4, &jobs, |&j| {
            if j == 17 {
                Err(CharacterizeError::Sim {
                    context: "boom".into(),
                    source: SimError::EmptyCircuit,
                })
            } else {
                Ok(j)
            }
        });
        assert!(err.is_err());
    }
}
