//! Plain-text save/load for [`DelaySlewLibrary`].
//!
//! Characterization takes minutes at paper scale, so libraries are cached on
//! disk. With no `serde_json` in the sanctioned dependency set, the format
//! is a simple line-oriented text file (whitespace-separated tokens,
//! full-precision floats), with a version header so future layouts can
//! evolve.

use crate::fit::PolyFit;
use crate::library::{BranchFns, DelaySlewLibrary, SingleWireFns};
use cts_spice::{BufferType, WireParams};
use std::fmt;
use std::fs;
use std::path::Path;

const MAGIC: &str = "ctslib-v1";

/// Error from parsing a library file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseLibraryError {
    /// 1-based line number, when attributable.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseLibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "library parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseLibraryError {}

fn err(line: usize, message: impl Into<String>) -> ParseLibraryError {
    ParseLibraryError {
        line,
        message: message.into(),
    }
}

/// Serializes a library to the text format.
pub fn save_library_string(lib: &DelaySlewLibrary) -> String {
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("vdd {:.17e}\n", lib.vdd()));
    out.push_str(&format!(
        "wire {:.17e} {:.17e}\n",
        lib.wire().r_per_um(),
        lib.wire().c_per_um()
    ));
    out.push_str(&format!("buffers {}\n", lib.buffers().len()));
    for b in lib.buffers() {
        out.push_str(&format!("buffer {} {:.17e}\n", b.name(), b.size()));
    }
    let nb = lib.buffers().len();
    for d in 0..nb {
        for l in 0..nb {
            let fns = &lib.single_slice()[d * nb + l];
            for (kind, fit) in [
                ("intrinsic", &fns.intrinsic),
                ("wire_delay", &fns.wire_delay),
                ("wire_slew", &fns.wire_slew),
            ] {
                push_fit(&mut out, &format!("single {d} {l} {kind}"), fit);
            }
        }
    }
    for ((d, ll, lr), fns) in lib.branch_slice() {
        for (kind, fit) in [
            ("intrinsic", &fns.intrinsic),
            ("left_delay", &fns.left_delay),
            ("right_delay", &fns.right_delay),
            ("left_slew", &fns.left_slew),
            ("right_slew", &fns.right_slew),
        ] {
            push_fit(&mut out, &format!("branch {d} {ll} {lr} {kind}"), fit);
        }
    }
    out.push_str("end\n");
    out
}

fn push_fit(out: &mut String, header: &str, fit: &PolyFit) {
    let rec = fit.to_record();
    out.push_str(header);
    out.push_str(&format!(" {}", rec.len()));
    for v in rec {
        out.push_str(&format!(" {v:.17e}"));
    }
    out.push('\n');
}

/// Parses a library from the text format.
///
/// # Errors
///
/// Returns [`ParseLibraryError`] with a line number for malformed input.
pub fn load_library_str(text: &str) -> Result<DelaySlewLibrary, ParseLibraryError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (ln, magic) = lines.next().ok_or_else(|| err(1, "empty file"))?;
    if magic.trim() != MAGIC {
        return Err(err(ln, format!("bad magic, expected {MAGIC}")));
    }

    let mut vdd = None;
    let mut wire = None;
    let mut buffers: Vec<BufferType> = Vec::new();
    let mut expected_buffers = 0usize;
    struct FitSlot {
        key: Vec<usize>,
        kind: String,
        fit: PolyFit,
        is_branch: bool,
    }
    let mut fits: Vec<FitSlot> = Vec::new();

    for (ln, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        let head = tok.next().expect("non-empty line");
        match head {
            "end" => break,
            "vdd" => {
                vdd = Some(parse_f64(tok.next(), ln)?);
            }
            "wire" => {
                let r = parse_f64(tok.next(), ln)?;
                let c = parse_f64(tok.next(), ln)?;
                wire = Some(WireParams::new(r, c));
            }
            "buffers" => {
                expected_buffers = parse_usize(tok.next(), ln)?;
            }
            "buffer" => {
                let name = tok.next().ok_or_else(|| err(ln, "missing buffer name"))?;
                let size = parse_f64(tok.next(), ln)?;
                buffers.push(BufferType::new(name, size));
            }
            "single" | "branch" => {
                let is_branch = head == "branch";
                let nkeys = if is_branch { 3 } else { 2 };
                let mut key = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    key.push(parse_usize(tok.next(), ln)?);
                }
                let kind = tok
                    .next()
                    .ok_or_else(|| err(ln, "missing fit kind"))?
                    .to_string();
                let n = parse_usize(tok.next(), ln)?;
                let mut rec = Vec::with_capacity(n);
                for _ in 0..n {
                    rec.push(parse_f64(tok.next(), ln)?);
                }
                if tok.next().is_some() {
                    return Err(err(ln, "trailing tokens after fit record"));
                }
                let fit =
                    PolyFit::from_record(&rec).ok_or_else(|| err(ln, "malformed fit record"))?;
                fits.push(FitSlot {
                    key,
                    kind,
                    fit,
                    is_branch,
                });
            }
            other => return Err(err(ln, format!("unknown directive '{other}'"))),
        }
    }

    let vdd = vdd.ok_or_else(|| err(0, "missing vdd"))?;
    let wire = wire.ok_or_else(|| err(0, "missing wire"))?;
    if buffers.len() != expected_buffers {
        return Err(err(
            0,
            format!(
                "buffer count mismatch: header says {expected_buffers}, found {}",
                buffers.len()
            ),
        ));
    }
    let nb = buffers.len();
    if nb == 0 {
        return Err(err(0, "library has no buffers"));
    }

    let find2 = |d: usize, l: usize, kind: &str| -> Result<PolyFit, ParseLibraryError> {
        fits.iter()
            .find(|f| !f.is_branch && f.key == [d, l] && f.kind == kind)
            .map(|f| f.fit.clone())
            .ok_or_else(|| err(0, format!("missing single fit ({d},{l}) {kind}")))
    };
    let mut single = Vec::with_capacity(nb * nb);
    for d in 0..nb {
        for l in 0..nb {
            single.push(SingleWireFns {
                intrinsic: find2(d, l, "intrinsic")?,
                wire_delay: find2(d, l, "wire_delay")?,
                wire_slew: find2(d, l, "wire_slew")?,
            });
        }
    }

    let find3 =
        |d: usize, ll: usize, lr: usize, kind: &str| -> Result<PolyFit, ParseLibraryError> {
            fits.iter()
                .find(|f| f.is_branch && f.key == [d, ll, lr] && f.kind == kind)
                .map(|f| f.fit.clone())
                .ok_or_else(|| err(0, format!("missing branch fit ({d},{ll},{lr}) {kind}")))
        };
    let mut branch = Vec::new();
    for d in 0..nb {
        for ll in 0..nb {
            for lr in ll..nb {
                branch.push((
                    (d, ll, lr),
                    BranchFns {
                        intrinsic: find3(d, ll, lr, "intrinsic")?,
                        left_delay: find3(d, ll, lr, "left_delay")?,
                        right_delay: find3(d, ll, lr, "right_delay")?,
                        left_slew: find3(d, ll, lr, "left_slew")?,
                        right_slew: find3(d, ll, lr, "right_slew")?,
                    },
                ));
            }
        }
    }

    Ok(DelaySlewLibrary::from_parts(
        vdd, wire, buffers, single, branch,
    ))
}

fn parse_f64(tok: Option<&str>, line: usize) -> Result<f64, ParseLibraryError> {
    let t = tok.ok_or_else(|| err(line, "missing number"))?;
    t.parse::<f64>()
        .map_err(|e| err(line, format!("bad float '{t}': {e}")))
}

fn parse_usize(tok: Option<&str>, line: usize) -> Result<usize, ParseLibraryError> {
    let t = tok.ok_or_else(|| err(line, "missing integer"))?;
    t.parse::<usize>()
        .map_err(|e| err(line, format!("bad integer '{t}': {e}")))
}

/// Saves a library to a file.
///
/// # Errors
///
/// Returns the underlying I/O error on failure.
pub fn save_library_file(lib: &DelaySlewLibrary, path: impl AsRef<Path>) -> std::io::Result<()> {
    fs::write(path, save_library_string(lib))
}

/// Loads a library from a file.
///
/// # Errors
///
/// Returns an I/O error (wrapped) or a parse error message.
pub fn load_library_file(path: impl AsRef<Path>) -> Result<DelaySlewLibrary, String> {
    let text = fs::read_to_string(&path)
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    load_library_str(&text).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::tests_support::synthetic_library;

    #[test]
    fn roundtrip_preserves_library() {
        let lib = synthetic_library();
        let text = save_library_string(&lib);
        let back = load_library_str(&text).expect("roundtrip parse");
        assert_eq!(lib, back);
    }

    #[test]
    fn roundtrip_preserves_query_results() {
        use crate::library::{BufferId, Load};
        let lib = synthetic_library();
        let back = load_library_str(&save_library_string(&lib)).unwrap();
        let q = |l: &DelaySlewLibrary| {
            l.single_wire(BufferId(1), Load::Buffer(BufferId(0)), 37.5e-12, 512.0)
        };
        assert_eq!(q(&lib), q(&back));
    }

    #[test]
    fn bad_magic_rejected() {
        let e = load_library_str("nonsense\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("magic"));
    }

    #[test]
    fn truncated_fit_rejected() {
        let lib = synthetic_library();
        let text = save_library_string(&lib);
        // Drop the last line ("end") and the one before it (a fit).
        let cut: Vec<&str> = text.lines().collect();
        let truncated = cut[..cut.len() - 2].join("\n");
        assert!(load_library_str(&truncated).is_err());
    }

    #[test]
    fn corrupt_float_reported_with_line() {
        let lib = synthetic_library();
        let text = save_library_string(&lib).replace("vdd 1.1", "vdd abc");
        let e = load_library_str(&text).unwrap_err();
        assert!(e.message.contains("bad float"), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let lib = synthetic_library();
        let mut text = save_library_string(&lib);
        text = text.replacen('\n', "\n# a comment\n\n", 1);
        assert!(load_library_str(&text).is_ok());
    }

    #[test]
    fn file_roundtrip() {
        let lib = synthetic_library();
        let dir = std::env::temp_dir().join("ctslib_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lib.txt");
        save_library_file(&lib, &path).unwrap();
        let back = load_library_file(&path).unwrap();
        assert_eq!(lib, back);
        let missing = load_library_file(dir.join("nope.txt"));
        assert!(missing.is_err());
    }
}
