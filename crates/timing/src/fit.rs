//! Polynomial surface/hyperplane fitting — the Rust equivalent of the
//! paper's MATLAB surface fits (Figs. 3.4, 3.6, 3.7).
//!
//! The delay library stores each characterized quantity as a low-order
//! polynomial in the sweep variables: `(input slew, wire length)` for
//! single-wire components, `(input slew, left length, right length)` for
//! branch components. Inputs are standardized (zero mean, unit variance per
//! dimension) before fitting so the normal equations stay well conditioned,
//! and queries are clamped to the characterized domain — extrapolating a
//! cubic outside its data is how timing models go wrong silently.

use crate::linalg::{least_squares, Matrix};
use std::fmt;

/// Error returned when a polynomial fit cannot be computed.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer samples than polynomial coefficients.
    TooFewSamples {
        /// Samples provided.
        samples: usize,
        /// Coefficients required by the requested order.
        needed: usize,
    },
    /// The design matrix was rank deficient (e.g. all samples identical in
    /// one dimension).
    Degenerate,
    /// A sample contained a non-finite coordinate or value.
    NonFiniteSample,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooFewSamples { samples, needed } => write!(
                f,
                "too few samples for fit: {samples} provided, {needed} needed"
            ),
            FitError::Degenerate => write!(f, "design matrix is rank deficient"),
            FitError::NonFiniteSample => write!(f, "samples must be finite"),
        }
    }
}

impl std::error::Error for FitError {}

/// Monomial powers for a full polynomial basis of total degree `order` in
/// `dims` variables.
fn basis_powers(dims: usize, order: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut current = vec![0u32; dims];
    fn rec(dims: usize, idx: usize, left: u32, current: &mut Vec<u32>, out: &mut Vec<Vec<u32>>) {
        if idx == dims {
            out.push(current.clone());
            return;
        }
        for p in 0..=left {
            current[idx] = p;
            rec(dims, idx + 1, left - p, current, out);
        }
        current[idx] = 0;
    }
    rec(dims, 0, order, &mut current, &mut out);
    out
}

/// Per-dimension standardization parameters.
#[derive(Debug, Clone, PartialEq)]
struct Standardizer {
    mean: Vec<f64>,
    scale: Vec<f64>,
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Standardizer {
    fn from_samples(dims: usize, points: &[Vec<f64>]) -> Standardizer {
        let n = points.len() as f64;
        let mut mean = vec![0.0; dims];
        let mut lo = vec![f64::INFINITY; dims];
        let mut hi = vec![f64::NEG_INFINITY; dims];
        for p in points {
            for d in 0..dims {
                mean[d] += p[d];
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut scale = vec![0.0; dims];
        for p in points {
            for d in 0..dims {
                scale[d] += (p[d] - mean[d]).powi(2);
            }
        }
        for s in &mut scale {
            *s = (*s / n).sqrt().max(1e-12);
        }
        Standardizer {
            mean,
            scale,
            lo,
            hi,
        }
    }

    fn apply(&self, x: &[f64], clamp: bool) -> Vec<f64> {
        x.iter()
            .enumerate()
            .map(|(d, &v)| {
                let v = if clamp {
                    v.clamp(self.lo[d], self.hi[d])
                } else {
                    v
                };
                (v - self.mean[d]) / self.scale[d]
            })
            .collect()
    }
}

/// A fitted polynomial in `D` variables with domain clamping.
///
/// Build one with [`PolyFit::fit`]; evaluate with [`PolyFit::eval`].
///
/// ```
/// use cts_timing::fit::PolyFit;
/// // z = 1 + 2x + 3y, sampled on a grid.
/// let mut pts = Vec::new();
/// let mut vals = Vec::new();
/// for i in 0..5 {
///     for j in 0..5 {
///         let (x, y) = (i as f64, j as f64);
///         pts.push(vec![x, y]);
///         vals.push(1.0 + 2.0 * x + 3.0 * y);
///     }
/// }
/// let fit = PolyFit::fit(2, 2, &pts, &vals)?;
/// assert!((fit.eval(&[2.0, 2.0]) - 11.0).abs() < 1e-8);
/// # Ok::<(), cts_timing::fit::FitError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PolyFit {
    dims: usize,
    order: u32,
    powers: Vec<Vec<u32>>,
    coefs: Vec<f64>,
    std: Standardizer,
    max_abs_residual: f64,
    rms_residual: f64,
}

impl PolyFit {
    /// Fits a full polynomial of total degree `order` in `dims` variables to
    /// the samples `(points[i], values[i])` by least squares.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if there are fewer samples than coefficients,
    /// samples are non-finite, or the design matrix is rank deficient.
    ///
    /// # Panics
    ///
    /// Panics if any point has the wrong dimensionality, or `dims == 0`.
    pub fn fit(
        dims: usize,
        order: u32,
        points: &[Vec<f64>],
        values: &[f64],
    ) -> Result<PolyFit, FitError> {
        assert!(dims > 0, "dims must be positive");
        assert_eq!(points.len(), values.len(), "points/values must match");
        for p in points {
            assert_eq!(p.len(), dims, "point dimensionality mismatch");
        }
        if points
            .iter()
            .flat_map(|p| p.iter())
            .chain(values.iter())
            .any(|v| !v.is_finite())
        {
            return Err(FitError::NonFiniteSample);
        }
        let powers = basis_powers(dims, order);
        if points.len() < powers.len() {
            return Err(FitError::TooFewSamples {
                samples: points.len(),
                needed: powers.len(),
            });
        }
        let std = Standardizer::from_samples(dims, points);
        let design = Matrix::from_fn(points.len(), powers.len(), |r, c| {
            let x = std.apply(&points[r], false);
            monomial(&x, &powers[c])
        });
        let coefs = least_squares(&design, values).ok_or(FitError::Degenerate)?;

        let mut max_abs = 0.0f64;
        let mut sum_sq = 0.0f64;
        let predictions = design.mul_vec(&coefs);
        for (pred, &truth) in predictions.iter().zip(values) {
            let e = (pred - truth).abs();
            max_abs = max_abs.max(e);
            sum_sq += e * e;
        }
        let rms = (sum_sq / values.len() as f64).sqrt();

        Ok(PolyFit {
            dims,
            order,
            powers,
            coefs,
            std,
            max_abs_residual: max_abs,
            rms_residual: rms,
        })
    }

    /// Evaluates the polynomial at `x`, clamping each coordinate to the
    /// fitted domain (no extrapolation).
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    pub fn eval(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "query dimensionality mismatch");
        let z = self.std.apply(x, true);
        self.powers
            .iter()
            .zip(&self.coefs)
            .map(|(p, c)| c * monomial(&z, p))
            .sum()
    }

    /// A copy of this fit with every coefficient (and the residual
    /// statistics) multiplied by `factor`, so the surface's output is
    /// scaled by `factor` over the entire domain. `factor == 1.0`
    /// reproduces `self` bit-identically (`x * 1.0 == x` for finite
    /// coefficients), which the variation axis relies on for the
    /// sigma-zero case.
    pub(crate) fn scaled(&self, factor: f64) -> PolyFit {
        PolyFit {
            dims: self.dims,
            order: self.order,
            powers: self.powers.clone(),
            coefs: self.coefs.iter().map(|c| c * factor).collect(),
            std: self.std.clone(),
            max_abs_residual: self.max_abs_residual * factor.abs(),
            rms_residual: self.rms_residual * factor.abs(),
        }
    }

    /// Number of input variables.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total polynomial degree.
    pub fn order(&self) -> u32 {
        self.order
    }

    /// Largest absolute residual over the fitting samples.
    pub fn max_abs_residual(&self) -> f64 {
        self.max_abs_residual
    }

    /// Root-mean-square residual over the fitting samples.
    pub fn rms_residual(&self) -> f64 {
        self.rms_residual
    }

    /// The fitted domain: per-dimension `(lo, hi)` bounds that queries are
    /// clamped to.
    pub fn domain(&self) -> Vec<(f64, f64)> {
        (0..self.dims)
            .map(|d| (self.std.lo[d], self.std.hi[d]))
            .collect()
    }

    // -- (de)serialization support for the library's text format ----------

    pub(crate) fn to_record(&self) -> Vec<f64> {
        let mut rec = vec![self.dims as f64, self.order as f64];
        rec.extend(self.std.mean.iter());
        rec.extend(self.std.scale.iter());
        rec.extend(self.std.lo.iter());
        rec.extend(self.std.hi.iter());
        rec.push(self.max_abs_residual);
        rec.push(self.rms_residual);
        rec.extend(self.coefs.iter());
        rec
    }

    pub(crate) fn from_record(rec: &[f64]) -> Option<PolyFit> {
        if rec.len() < 2 {
            return None;
        }
        let dims = rec[0] as usize;
        let order = rec[1] as u32;
        if dims == 0 {
            return None;
        }
        let powers = basis_powers(dims, order);
        let need = 2 + 4 * dims + 2 + powers.len();
        if rec.len() != need {
            return None;
        }
        let mut it = rec[2..].iter().copied();
        let mut take = |n: usize| -> Vec<f64> { (&mut it).take(n).collect() };
        let mean = take(dims);
        let scale = take(dims);
        let lo = take(dims);
        let hi = take(dims);
        let max_abs_residual = it.next()?;
        let rms_residual = it.next()?;
        let coefs: Vec<f64> = it.collect();
        Some(PolyFit {
            dims,
            order,
            powers,
            coefs,
            std: Standardizer {
                mean,
                scale,
                lo,
                hi,
            },
            max_abs_residual,
            rms_residual,
        })
    }
}

fn monomial(x: &[f64], powers: &[u32]) -> f64 {
    x.iter()
        .zip(powers)
        .map(|(v, &p)| v.powi(p as i32))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basis_sizes() {
        assert_eq!(basis_powers(2, 3).len(), 10); // full bivariate cubic
        assert_eq!(basis_powers(2, 4).len(), 15);
        assert_eq!(basis_powers(3, 2).len(), 10); // trivariate quadratic
        assert_eq!(basis_powers(1, 4).len(), 5);
    }

    #[test]
    fn fits_exact_cubic_surface() {
        let f =
            |x: f64, y: f64| 0.5 - x + 2.0 * y + 0.25 * x * x - 0.1 * x * y * y + 0.03 * x * x * x;
        let mut pts = Vec::new();
        let mut vals = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                let (x, y) = (i as f64 * 0.7, j as f64 * 1.3 + 2.0);
                pts.push(vec![x, y]);
                vals.push(f(x, y));
            }
        }
        let fit = PolyFit::fit(2, 3, &pts, &vals).unwrap();
        assert!(
            fit.max_abs_residual() < 1e-8,
            "residual {}",
            fit.max_abs_residual()
        );
        assert!((fit.eval(&[1.05, 3.3]) - f(1.05, 3.3)).abs() < 1e-7);
    }

    #[test]
    fn clamps_outside_domain() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let vals: Vec<f64> = (0..10).map(|i| i as f64 * 2.0).collect();
        let fit = PolyFit::fit(1, 1, &pts, &vals).unwrap();
        // Queries beyond the domain return the edge value, not extrapolation.
        assert!((fit.eval(&[100.0]) - fit.eval(&[9.0])).abs() < 1e-9);
        assert!((fit.eval(&[-5.0]) - fit.eval(&[0.0])).abs() < 1e-9);
    }

    #[test]
    fn too_few_samples_is_an_error() {
        let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0]];
        let vals = vec![0.0, 1.0];
        match PolyFit::fit(2, 3, &pts, &vals) {
            Err(FitError::TooFewSamples {
                needed: 10,
                samples: 2,
            }) => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn degenerate_samples_are_an_error() {
        // All x identical: can't identify x coefficients.
        let pts: Vec<Vec<f64>> = (0..12).map(|i| vec![5.0, i as f64]).collect();
        let vals: Vec<f64> = (0..12).map(|i| i as f64).collect();
        assert!(matches!(
            PolyFit::fit(2, 2, &pts, &vals),
            Err(FitError::Degenerate) | Ok(_)
        ));
        // (Standardization may still let the fit through with ~zero scale;
        // if it does, evaluation must at least reproduce the samples.)
        if let Ok(fit) = PolyFit::fit(2, 2, &pts, &vals) {
            assert!(fit.rms_residual() < 1e-6);
        }
    }

    #[test]
    fn non_finite_rejected() {
        let pts = vec![vec![f64::NAN], vec![1.0]];
        let vals = vec![0.0, 1.0];
        assert_eq!(
            PolyFit::fit(1, 1, &pts, &vals),
            Err(FitError::NonFiniteSample)
        );
    }

    #[test]
    fn record_roundtrip() {
        let pts: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64 * 0.3, (i % 5) as f64])
            .collect();
        let vals: Vec<f64> = pts.iter().map(|p| 1.0 + p[0] * p[1]).collect();
        let fit = PolyFit::fit(2, 2, &pts, &vals).unwrap();
        let rec = fit.to_record();
        let back = PolyFit::from_record(&rec).unwrap();
        assert_eq!(fit, back);
        assert!(PolyFit::from_record(&rec[..rec.len() - 1]).is_none());
    }

    #[test]
    fn trivariate_hyperplane_fit() {
        // The Fig. 3.6/3.7 shape: delay(slew, l_left, l_right).
        let f = |s: f64, a: f64, b: f64| 3.0 + 0.2 * s + 0.9 * a + 0.4 * b + 0.01 * a * b;
        let mut pts = Vec::new();
        let mut vals = Vec::new();
        for s in 0..3 {
            for a in 0..4 {
                for b in 0..4 {
                    let p = vec![s as f64 * 20.0, a as f64 * 300.0, b as f64 * 300.0];
                    vals.push(f(p[0], p[1], p[2]));
                    pts.push(p);
                }
            }
        }
        let fit = PolyFit::fit(3, 2, &pts, &vals).unwrap();
        assert!(fit.max_abs_residual() < 1e-6);
    }
}
