//! Span recording: a process-global [`Recorder`], per-thread lock-free
//! ring buffers, and scoped [`SpanGuard`] timers.
//!
//! The hot path is built around one invariant: **with no recorder
//! installed, instrumentation costs a single relaxed atomic load**. When
//! a recorder is installed, each finished span is written into the
//! calling thread's ring — a fixed array of atomic words driven by a
//! per-slot sequence counter (a seqlock) — so writers never block and
//! never allocate. The recorder drains rings centrally under its own
//! locks. A reader that races a wrapping writer detects the torn slot
//! via the sequence word and counts it as dropped; in the worst case a
//! drop goes unnoticed and a garbage duration lands in the telemetry —
//! telemetry only, never synthesis results.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::export;
use crate::hist::Histogram;

/// Events retained per thread ring before the oldest are overwritten.
const RING_CAP: u64 = 4096;
/// Atomic words per ring slot: sequence + six event fields (one spare).
const SLOT_WORDS: usize = 8;
/// Events retained centrally by a [`Recorder`] before the oldest are
/// discarded (drop-oldest, counted in [`Recorder::dropped`]).
const STORE_CAP: usize = 262_144;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(0);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);
static GLOBAL: Mutex<Option<Arc<RecorderInner>>> = Mutex::new(None);
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

thread_local! {
    static CURRENT_PARENT: Cell<u64> = const { Cell::new(0) };
    #[allow(clippy::type_complexity)]
    static LOCAL_RING: RefCell<Option<(u64, Arc<ThreadRing>)>> = const { RefCell::new(None) };
}

/// Nanoseconds since an arbitrary process-wide epoch, from a monotonic
/// clock. All span timestamps share this epoch, so durations and
/// cross-thread orderings are meaningful within one process.
pub fn now_ns() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A static span name, interned on first use.
///
/// Declare one per instrumentation site so the hot path ships a small
/// integer id into the ring instead of a string:
///
/// ```
/// static MERGE: cts_obs::Name = cts_obs::Name::new("pipeline.merge_level");
/// ```
pub struct Name {
    text: &'static str,
    id: AtomicU32,
}

impl Name {
    /// A new (not yet interned) name. `const`, so names can be statics.
    pub const fn new(text: &'static str) -> Name {
        Name {
            text,
            id: AtomicU32::new(0),
        }
    }

    /// The name text.
    pub fn text(&self) -> &'static str {
        self.text
    }

    /// The interned id (assigned on first call; cached thereafter).
    fn id(&self) -> u32 {
        let cached = self.id.load(Ordering::Relaxed);
        if cached != 0 {
            return cached;
        }
        let id = intern(self.text);
        // A racing duplicate intern returns the same id for equal text,
        // so a lost store is harmless.
        self.id.store(id, Ordering::Relaxed);
        id
    }
}

fn intern(text: &'static str) -> u32 {
    let mut names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = names.iter().position(|&n| n == text) {
        return (i + 1) as u32;
    }
    names.push(text);
    names.len() as u32
}

fn name_text(id: u64) -> &'static str {
    let names = NAMES.lock().unwrap_or_else(|e| e.into_inner());
    match id.checked_sub(1).and_then(|i| names.get(i as usize)) {
        Some(&text) => text,
        None => "?",
    }
}

/// One finished span drained from a thread ring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Process-unique span id (never 0).
    pub span_id: u64,
    /// Enclosing span's id, or 0 for a root span.
    pub parent: u64,
    /// The interned span name.
    pub name: &'static str,
    /// Start timestamp, [`now_ns`] epoch.
    pub t_start_ns: u64,
    /// End timestamp, [`now_ns`] epoch.
    pub t_end_ns: u64,
    /// Free-form site-defined attribute (sink count, level, priority…).
    pub attr: u64,
    /// Recorder-assigned id of the thread that produced the event.
    pub thread: u64,
}

impl SpanEvent {
    /// Span duration in nanoseconds (0 if the clock read backwards).
    pub fn duration_ns(&self) -> u64 {
        self.t_end_ns.saturating_sub(self.t_start_ns)
    }
}

/// Per-name duration aggregate built by [`Recorder::summaries`].
#[derive(Clone, Debug)]
pub struct SpanSummary {
    /// The span name.
    pub name: &'static str,
    /// Duration distribution (nanoseconds) across all drained events.
    pub durations: Histogram,
}

/// A per-thread seqlock ring. The owning thread is the only writer; the
/// recorder is the only reader. Each slot is [`SLOT_WORDS`] atomic
/// words: word 0 is the sequence (`2·n + 1` while event `n` is being
/// written, `2·n + 2` once published), words 1..=6 are the event fields.
struct ThreadRing {
    thread: u64,
    head: AtomicU64,
    tail: AtomicU64,
    slots: Box<[AtomicU64]>,
}

impl ThreadRing {
    fn new(thread: u64) -> ThreadRing {
        let mut slots = Vec::with_capacity(RING_CAP as usize * SLOT_WORDS);
        slots.resize_with(RING_CAP as usize * SLOT_WORDS, || AtomicU64::new(0));
        ThreadRing {
            thread,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    fn push(&self, span_id: u64, parent: u64, name_id: u64, t_start: u64, t_end: u64, attr: u64) {
        let n = self.head.load(Ordering::Relaxed);
        let base = (n % RING_CAP) as usize * SLOT_WORDS;
        self.slots[base].store(2 * n + 1, Ordering::Release);
        fence(Ordering::SeqCst);
        self.slots[base + 1].store(span_id, Ordering::Relaxed);
        self.slots[base + 2].store(parent, Ordering::Relaxed);
        self.slots[base + 3].store(name_id, Ordering::Relaxed);
        self.slots[base + 4].store(t_start, Ordering::Relaxed);
        self.slots[base + 5].store(t_end, Ordering::Relaxed);
        self.slots[base + 6].store(attr, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        self.slots[base].store(2 * n + 2, Ordering::Release);
        self.head.store(n + 1, Ordering::Release);
    }

    /// Drains published events into `out`; returns how many were lost to
    /// wrap-around or torn by a racing writer.
    fn drain(&self, out: &mut Vec<SpanEvent>) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let mut tail = self.tail.load(Ordering::Relaxed);
        let mut dropped = 0u64;
        if head - tail > RING_CAP {
            dropped += head - tail - RING_CAP;
            tail = head - RING_CAP;
        }
        while tail < head {
            let base = (tail % RING_CAP) as usize * SLOT_WORDS;
            let s1 = self.slots[base].load(Ordering::Acquire);
            if s1 != 2 * tail + 2 {
                dropped += 1;
                tail += 1;
                continue;
            }
            fence(Ordering::SeqCst);
            let span_id = self.slots[base + 1].load(Ordering::Relaxed);
            let parent = self.slots[base + 2].load(Ordering::Relaxed);
            let name_id = self.slots[base + 3].load(Ordering::Relaxed);
            let t_start = self.slots[base + 4].load(Ordering::Relaxed);
            let t_end = self.slots[base + 5].load(Ordering::Relaxed);
            let attr = self.slots[base + 6].load(Ordering::Relaxed);
            fence(Ordering::SeqCst);
            if self.slots[base].load(Ordering::Acquire) != s1 {
                dropped += 1;
                tail += 1;
                continue;
            }
            out.push(SpanEvent {
                span_id,
                parent,
                name: name_text(name_id),
                t_start_ns: t_start,
                t_end_ns: t_end,
                attr,
                thread: self.thread,
            });
            tail += 1;
        }
        self.tail.store(tail, Ordering::Release);
        dropped
    }
}

struct Store {
    events: Vec<SpanEvent>,
    dropped: u64,
}

struct RecorderInner {
    generation: u64,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    store: Mutex<Store>,
}

/// Handle to the process-global span recorder.
///
/// At most one recorder is installed at a time; [`Recorder::install`]
/// replaces any previous one. Cloning the handle is cheap and all clones
/// observe the same drained events.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Recorder {
    /// Installs a fresh recorder as the process global and enables span
    /// recording. Threads lazily (re-)register their rings on the next
    /// span they finish.
    pub fn install() -> Recorder {
        let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
        let inner = Arc::new(RecorderInner {
            generation,
            rings: Mutex::new(Vec::new()),
            store: Mutex::new(Store {
                events: Vec::new(),
                dropped: 0,
            }),
        });
        *guard = Some(inner.clone());
        ENABLED.store(true, Ordering::Release);
        Recorder { inner }
    }

    /// Disables recording and drops the process-global recorder (handles
    /// already held stay usable for draining what was collected).
    pub fn uninstall() {
        let mut guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        ENABLED.store(false, Ordering::Release);
        GENERATION.fetch_add(1, Ordering::Relaxed);
        *guard = None;
    }

    /// The currently installed recorder, if any.
    pub fn global() -> Option<Recorder> {
        let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        guard.as_ref().map(|inner| Recorder {
            inner: inner.clone(),
        })
    }

    /// Whether a recorder is installed and recording. This is the check
    /// every instrumentation site performs first — one relaxed load.
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Drains every registered thread ring into the central store.
    /// Call before [`Recorder::events`] / [`Recorder::summaries`] /
    /// exporters to observe the latest spans.
    pub fn collect(&self) {
        let rings: Vec<Arc<ThreadRing>> = {
            let rings = self.inner.rings.lock().unwrap_or_else(|e| e.into_inner());
            rings.clone()
        };
        let mut store = self.inner.store.lock().unwrap_or_else(|e| e.into_inner());
        for ring in rings {
            store.dropped += ring.drain(&mut store.events);
        }
        if store.events.len() > STORE_CAP {
            let excess = store.events.len() - STORE_CAP;
            store.events.drain(..excess);
            store.dropped += excess as u64;
        }
    }

    /// All collected events, ordered by start time (ties by span id).
    pub fn events(&self) -> Vec<SpanEvent> {
        let store = self.inner.store.lock().unwrap_or_else(|e| e.into_inner());
        let mut events = store.events.clone();
        events.sort_by_key(|e| (e.t_start_ns, e.span_id));
        events
    }

    /// Per-name duration histograms over all collected events, sorted by
    /// name.
    pub fn summaries(&self) -> Vec<SpanSummary> {
        let store = self.inner.store.lock().unwrap_or_else(|e| e.into_inner());
        let mut by_name: std::collections::BTreeMap<&'static str, Histogram> =
            std::collections::BTreeMap::new();
        for event in &store.events {
            by_name
                .entry(event.name)
                .or_default()
                .record(event.duration_ns());
        }
        by_name
            .into_iter()
            .map(|(name, durations)| SpanSummary { name, durations })
            .collect()
    }

    /// Events lost to ring wrap-around, torn slots, or the central
    /// retention cap.
    pub fn dropped(&self) -> u64 {
        self.inner
            .store
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .dropped
    }

    /// Discards all collected events and the drop counter.
    pub fn clear(&self) {
        let mut store = self.inner.store.lock().unwrap_or_else(|e| e.into_inner());
        store.events.clear();
        store.dropped = 0;
    }

    /// Drains the rings and renders everything collected so far as
    /// Chrome trace-event JSON (see [`crate::chrome_trace`]).
    pub fn chrome_trace(&self) -> String {
        self.collect();
        export::chrome_trace(&self.events())
    }

    /// Drains the rings and renders a compact self-describing JSON
    /// snapshot: per-name duration histograms (count, total, max,
    /// p50/p90/p99, sparse log2 buckets) plus the drop counter.
    pub fn json_snapshot(&self) -> String {
        self.collect();
        export::json_snapshot(&self.summaries(), self.dropped())
    }
}

fn push_event(span_id: u64, parent: u64, name_id: u64, t_start: u64, t_end: u64, attr: u64) {
    let _ = LOCAL_RING.try_with(|cell| {
        let generation = GENERATION.load(Ordering::Relaxed);
        let mut slot = cell.borrow_mut();
        let stale = match &*slot {
            Some((cached, _)) => *cached != generation,
            None => true,
        };
        if stale {
            *slot = register_ring(generation).map(|ring| (generation, ring));
        }
        if let Some((_, ring)) = &*slot {
            ring.push(span_id, parent, name_id, t_start, t_end, attr);
        }
    });
}

fn register_ring(generation: u64) -> Option<Arc<ThreadRing>> {
    let guard = GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    let inner = guard.as_ref()?;
    if inner.generation != generation {
        // Raced with a concurrent (un)install; the next event retries.
        return None;
    }
    let ring = Arc::new(ThreadRing::new(
        NEXT_THREAD.fetch_add(1, Ordering::Relaxed) + 1,
    ));
    inner
        .rings
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(ring.clone());
    Some(ring)
}

/// Starts a span named `name`. Inert (a no-op guard) when no recorder is
/// installed. The span ends — and is written to the thread's ring — when
/// the guard drops.
pub fn span(name: &'static Name) -> SpanGuard {
    span_with(name, 0)
}

/// Like [`span`], carrying a site-defined `u64` attribute (sink count,
/// tree level, priority — whatever the taxonomy documents for the site).
pub fn span_with(name: &'static Name, attr: u64) -> SpanGuard {
    if !Recorder::enabled() {
        return SpanGuard {
            name,
            span_id: 0,
            parent: 0,
            start: 0,
            attr: 0,
        };
    }
    let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed) + 1;
    let parent = CURRENT_PARENT.with(|p| {
        let prev = p.get();
        p.set(span_id);
        prev
    });
    SpanGuard {
        name,
        span_id,
        parent,
        start: now_ns(),
        attr,
    }
}

/// Records a completed span directly, bypassing the thread-local parent
/// stack — for measurements that start on one thread and end on another
/// (queue waits, connection lifetimes). Returns the allocated span id
/// (0 when no recorder is installed).
pub fn record(name: &'static Name, parent: u64, t_start_ns: u64, t_end_ns: u64, attr: u64) -> u64 {
    if !Recorder::enabled() {
        return 0;
    }
    let span_id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed) + 1;
    push_event(
        span_id,
        parent,
        name.id() as u64,
        t_start_ns,
        t_end_ns,
        attr,
    );
    span_id
}

/// RAII timer returned by [`span`] / [`span_with`]. Dropping it ends the
/// span and writes the event to the calling thread's ring.
pub struct SpanGuard {
    name: &'static Name,
    span_id: u64,
    parent: u64,
    start: u64,
    attr: u64,
}

impl SpanGuard {
    /// This span's id, usable as an explicit parent for [`record`].
    /// 0 when the guard is inert (no recorder installed at creation).
    pub fn id(&self) -> u64 {
        self.span_id
    }

    /// Overwrites the attribute recorded when the span ends — for sites
    /// where the value (a count, a result size) is only known mid-span.
    pub fn set_attr(&mut self, attr: u64) {
        self.attr = attr;
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.span_id == 0 {
            return;
        }
        let end = now_ns();
        let _ = CURRENT_PARENT.try_with(|p| p.set(self.parent));
        if Recorder::enabled() {
            push_event(
                self.span_id,
                self.parent,
                self.name.id() as u64,
                self.start,
                end,
                self.attr,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; serialize tests that install one.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    static OUTER: Name = Name::new("test.outer");
    static INNER: Name = Name::new("test.inner");
    static MANUAL: Name = Name::new("test.manual");
    static FLOOD: Name = Name::new("test.flood");

    #[test]
    fn disabled_guard_is_inert() {
        let _g = lock();
        Recorder::uninstall();
        assert!(!Recorder::enabled());
        let guard = span_with(&OUTER, 7);
        assert_eq!(guard.id(), 0);
        drop(guard);
        assert_eq!(record(&MANUAL, 0, 1, 2, 3), 0);
    }

    #[test]
    fn nesting_links_parent_ids() {
        let _g = lock();
        let recorder = Recorder::install();
        let outer_id;
        {
            let outer = span(&OUTER);
            outer_id = outer.id();
            assert_ne!(outer_id, 0);
            {
                let inner = span_with(&INNER, 5);
                assert_ne!(inner.id(), outer_id);
            }
        }
        recorder.collect();
        let events = recorder.events();
        Recorder::uninstall();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "test.inner").unwrap();
        let outer = events.iter().find(|e| e.name == "test.outer").unwrap();
        assert_eq!(inner.parent, outer.span_id);
        assert_eq!(outer.span_id, outer_id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.attr, 5);
        assert!(inner.t_start_ns >= outer.t_start_ns);
        assert!(inner.t_end_ns <= outer.t_end_ns);
        // Inner finished first, so it sits earlier in the ring; both
        // survive and the summaries aggregate by name.
    }

    #[test]
    fn manual_record_crosses_threads() {
        let _g = lock();
        let recorder = Recorder::install();
        let t0 = now_ns();
        let handle = std::thread::spawn(move || {
            record(&MANUAL, 0, t0, now_ns(), 42);
        });
        handle.join().unwrap();
        {
            let _local = span(&OUTER);
        }
        recorder.collect();
        let events = recorder.events();
        Recorder::uninstall();
        assert_eq!(events.len(), 2);
        let manual = events.iter().find(|e| e.name == "test.manual").unwrap();
        let local = events.iter().find(|e| e.name == "test.outer").unwrap();
        assert_eq!(manual.attr, 42);
        assert_ne!(manual.thread, local.thread, "distinct per-thread rings");
    }

    #[test]
    fn ring_overflow_counts_drops() {
        let _g = lock();
        let recorder = Recorder::install();
        let n = RING_CAP + 100;
        for i in 0..n {
            record(&FLOOD, 0, i, i + 1, i);
        }
        recorder.collect();
        let events = recorder.events();
        let dropped = recorder.dropped();
        Recorder::uninstall();
        assert_eq!(events.len() as u64 + dropped, n);
        assert_eq!(dropped, 100);
        // The survivors are the newest events.
        assert!(events.iter().all(|e| e.attr >= 100));
    }

    #[test]
    fn reinstall_starts_clean() {
        let _g = lock();
        let first = Recorder::install();
        {
            let _s = span(&OUTER);
        }
        first.collect();
        assert_eq!(first.events().len(), 1);
        let second = Recorder::install();
        {
            let _s = span(&INNER);
        }
        second.collect();
        let events = second.events();
        Recorder::uninstall();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test.inner");
        // The first handle still serves what it drained earlier.
        assert_eq!(first.events().len(), 1);
    }

    #[test]
    fn summaries_aggregate_by_name() {
        let _g = lock();
        let recorder = Recorder::install();
        for i in 0..10 {
            record(&FLOOD, 0, 0, 1 << i, 0);
        }
        record(&MANUAL, 0, 0, 5, 0);
        recorder.collect();
        let summaries = recorder.summaries();
        Recorder::uninstall();
        assert_eq!(summaries.len(), 2);
        // BTreeMap ordering: test.flood before test.manual.
        assert_eq!(summaries[0].name, "test.flood");
        assert_eq!(summaries[0].durations.count(), 10);
        assert_eq!(summaries[0].durations.max(), 512);
        assert_eq!(summaries[1].name, "test.manual");
        assert_eq!(summaries[1].durations.count(), 1);
    }

    #[test]
    fn set_attr_overrides_initial_value() {
        let _g = lock();
        let recorder = Recorder::install();
        {
            let mut guard = span_with(&OUTER, 1);
            guard.set_attr(99);
        }
        recorder.collect();
        let events = recorder.events();
        Recorder::uninstall();
        assert_eq!(events[0].attr, 99);
    }
}
