//! Fixed-bucket log2 latency histograms with exact, grouping-independent
//! merges.

use std::fmt;

/// Number of buckets in a [`Histogram`]: bucket `0` holds exact zeros,
/// bucket `b` (1..=64) holds values in `[2^(b-1), 2^b - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The bucket index a value falls into: `0` for `0`, otherwise
/// `floor(log2(v)) + 1`.
pub fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive `[low, high]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= HISTOGRAM_BUCKETS`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
    match index {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), (1 << b) - 1),
    }
}

/// A fixed-bucket log2 histogram of `u64` samples (latencies in
/// nanoseconds, throughout this workspace).
///
/// The representation is purely additive — per-bucket counts, a sample
/// count, a saturating value total, and the exact maximum — so
/// [`Histogram::merge`] is exact and **grouping-independent**: folding
/// per-worker or per-shard histograms in any order, or through any
/// intermediate grouping, produces identical buckets and therefore
/// bit-identical [`Histogram::percentile`] answers. This is the same
/// contract `BatchSummary::fold` keeps for batch statistics, extended
/// from scalars to distributions.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram {
            counts: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.total = self.total.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds `other` into `self`. Exact: the result is identical to a
    /// histogram that recorded both sample streams directly, whatever
    /// the grouping.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.count = self.count.saturating_add(other.count);
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded value (exact, not bucketed); `0` when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (`0.0..=100.0`), resolved to the upper bound
    /// of the bucket holding the rank-`ceil(p/100 · count)` sample and
    /// clamped to the exact [`Histogram::max`]. Deterministic: computed
    /// purely from the bucket counts and the max, so a histogram
    /// reconstructed from its wire encoding answers bit-identically.
    /// Returns `0` when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cumulative = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= rank {
                return bucket_bounds(index).1.min(self.max);
            }
        }
        self.max
    }

    /// The non-empty buckets as `(index, count)` pairs in index order —
    /// the sparse form the wire protocol serializes.
    pub fn nonzero_buckets(&self) -> Vec<(u8, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| (i as u8, c))
            .collect()
    }

    /// Rebuilds a histogram from its wire parts (sparse buckets plus the
    /// scalar fields). Lossless against [`Histogram::nonzero_buckets`] /
    /// [`Histogram::count`] / [`Histogram::total`] / [`Histogram::max`]:
    /// the round-tripped histogram is `==` to the original and answers
    /// every percentile bit-identically. Out-of-range bucket indices are
    /// ignored (lenient decode).
    pub fn from_parts(buckets: &[(u8, u64)], count: u64, total: u64, max: u64) -> Histogram {
        let mut h = Histogram::new();
        for &(index, c) in buckets {
            if (index as usize) < HISTOGRAM_BUCKETS {
                h.counts[index as usize] = c;
            }
        }
        h.count = count;
        h.total = total;
        h.max = max;
        h
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("total", &self.total)
            .field("max", &self.max)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b, "low edge of bucket {b}");
            assert_eq!(bucket_of(hi), b, "high edge of bucket {b}");
        }
    }

    #[test]
    fn merge_is_grouping_independent() {
        // One stream of samples, folded three ways: directly, split in
        // two, and split per-sample then merged pairwise in a different
        // order. All three must be identical (the BatchSummary::fold
        // contract).
        let samples: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9e3779b9) % 100_000)
            .collect();
        let mut direct = Histogram::new();
        for &s in &samples {
            direct.record(s);
        }

        let (a, b) = samples.split_at(137);
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        a.iter().for_each(|&s| left.record(s));
        b.iter().for_each(|&s| right.record(s));
        let mut split = Histogram::new();
        split.merge(&right);
        split.merge(&left);
        assert_eq!(direct, split);

        let mut singles: Vec<Histogram> = samples
            .iter()
            .map(|&s| {
                let mut h = Histogram::new();
                h.record(s);
                h
            })
            .collect();
        while singles.len() > 1 {
            // Merge back-to-front so the grouping differs from the split
            // fold above.
            let last = singles.pop().unwrap();
            let n = singles.len();
            singles[n / 2].merge(&last);
        }
        assert_eq!(direct, singles.pop().unwrap());
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(direct.percentile(p), split.percentile(p));
        }
    }

    #[test]
    fn percentile_walks_buckets_and_clamps_to_max() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 1000, 5000] {
            h.record(v);
        }
        // Rank 1 of 4 at p25: bucket of 10 is [8,15] -> upper bound 15.
        assert_eq!(h.percentile(25.0), 15);
        // p100 resolves to the exact max, not the bucket bound 8191.
        assert_eq!(h.percentile(100.0), 5000);
        assert_eq!(h.percentile(0.0), 15, "p0 still ranks the first sample");
        assert_eq!(Histogram::new().percentile(50.0), 0);
    }

    #[test]
    fn wire_parts_round_trip_losslessly() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 93, 12_000, 12_001, u64::MAX] {
            h.record(v);
        }
        let back = Histogram::from_parts(&h.nonzero_buckets(), h.count(), h.total(), h.max());
        assert_eq!(h, back);
        for p in [50.0, 90.0, 99.0] {
            assert_eq!(h.percentile(p), back.percentile(p));
        }
        // Lenient decode: a bucket index past the table is ignored.
        let lenient = Histogram::from_parts(&[(200, 5), (1, 2)], 2, 2, 1);
        assert_eq!(lenient.count(), 2);
        assert_eq!(lenient.nonzero_buckets(), vec![(1, 2)]);
    }

    #[test]
    fn totals_saturate_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.total(), u64::MAX);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.total(), u64::MAX);
        assert_eq!(h.count(), 3);
    }
}
