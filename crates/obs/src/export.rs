//! Exporters: Chrome trace-event JSON and a compact JSON snapshot.

use std::fmt::Write as _;

use crate::hist::Histogram;
use crate::span::{SpanEvent, SpanSummary};

/// Renders drained span events as Chrome trace-event JSON — a flat array
/// of complete (`"ph":"X"`) events, directly loadable in
/// `chrome://tracing` or [Perfetto](https://ui.perfetto.dev). Timestamps
/// and durations are microseconds (fractional); span id, parent id, and
/// the site attribute ride along in `args`.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push('[');
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = event.t_start_ns as f64 / 1000.0;
        let dur = event.duration_ns() as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"cts\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"span\":{},\"parent\":{},\"attr\":{}}}}}",
            escape(event.name),
            event.thread,
            ts,
            dur,
            event.span_id,
            event.parent,
            event.attr,
        );
    }
    out.push(']');
    out
}

/// Renders per-name summaries as a compact self-describing JSON object:
/// `{"version":1,"dropped":N,"spans":[{"name":…,"count":…,"total_ns":…,
/// "max_ns":…,"p50_ns":…,"p90_ns":…,"p99_ns":…,"buckets":[[i,c],…]},…]}`.
/// The histogram shape matches the wire-level `stats` op, so one parser
/// serves both.
pub fn json_snapshot(summaries: &[SpanSummary], dropped: u64) -> String {
    let mut out = String::with_capacity(64 + summaries.len() * 160);
    let _ = write!(out, "{{\"version\":1,\"dropped\":{dropped},\"spans\":[");
    for (i, summary) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",", escape(summary.name));
        write_histogram(&mut out, &summary.durations);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Appends the shared histogram body (no surrounding braces):
/// `"count":…,"total_ns":…,"max_ns":…,"p50_ns":…,"p90_ns":…,"p99_ns":…,
/// "buckets":[[index,count],…]`.
fn write_histogram(out: &mut String, hist: &Histogram) {
    let _ = write!(
        out,
        "\"count\":{},\"total_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"buckets\":[",
        hist.count(),
        hist.total(),
        hist.max(),
        hist.percentile(50.0),
        hist.percentile(90.0),
        hist.percentile(99.0),
    );
    for (i, (bucket, count)) in hist.nonzero_buckets().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{bucket},{count}]");
    }
    out.push(']');
}

fn escape(text: &str) -> String {
    let mut escaped = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(escaped, "\\u{:04x}", c as u32);
            }
            c => escaped.push(c),
        }
    }
    escaped
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(span_id: u64, parent: u64, name: &'static str, t0: u64, t1: u64) -> SpanEvent {
        SpanEvent {
            span_id,
            parent,
            name,
            t_start_ns: t0,
            t_end_ns: t1,
            attr: 3,
            thread: 2,
        }
    }

    #[test]
    fn chrome_trace_shape_is_exact() {
        let events = vec![event(1, 0, "a.b", 1500, 4000)];
        assert_eq!(
            chrome_trace(&events),
            "[{\"name\":\"a.b\",\"cat\":\"cts\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\
             \"ts\":1.5,\"dur\":2.5,\"args\":{\"span\":1,\"parent\":0,\"attr\":3}}]"
        );
        assert_eq!(chrome_trace(&[]), "[]");
    }

    #[test]
    fn snapshot_shape_is_exact() {
        let mut durations = Histogram::new();
        durations.record(5);
        let summaries = vec![SpanSummary {
            name: "x",
            durations,
        }];
        assert_eq!(
            json_snapshot(&summaries, 7),
            "{\"version\":1,\"dropped\":7,\"spans\":[{\"name\":\"x\",\
             \"count\":1,\"total_ns\":5,\"max_ns\":5,\
             \"p50_ns\":5,\"p90_ns\":5,\"p99_ns\":5,\"buckets\":[[3,1]]}]}"
        );
    }

    #[test]
    fn names_are_json_escaped() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }
}
