//! `cts-obs` — observability for the synthesis stack: span tracing,
//! mergeable latency histograms, and trace exporters. Std-only, like the
//! rest of the workspace (the build environment is offline).
//!
//! Three pieces, designed around one invariant — **telemetry never feeds
//! back into results**. Tracing on or off leaves every synthesis result
//! byte-identical; the tier-1 determinism suites run with a recording
//! [`Recorder`] installed to pin it.
//!
//! * **Spans** ([`span`], [`span_with`], [`record`]) — scoped wall-time
//!   measurements stamped with a process-monotonic nanosecond clock
//!   ([`now_ns`]). Each thread writes finished spans into its own
//!   lock-free ring buffer; an installed [`Recorder`] drains the rings
//!   centrally ([`Recorder::collect`]). With no recorder installed the
//!   hot path is one relaxed atomic load — cheap enough to leave the
//!   instrumentation in the merge inner loops permanently.
//! * **Histograms** ([`Histogram`]) — fixed-bucket log2 latency
//!   distributions whose [`Histogram::merge`] is exact and
//!   grouping-independent: merging per-shard histograms in any order or
//!   nesting yields the same buckets, the same totals, and therefore
//!   bit-identical [`Histogram::percentile`] answers — the same fold
//!   contract `BatchSummary::fold` keeps for batch stats.
//! * **Exporters** — [`chrome_trace`] renders drained spans as Chrome
//!   trace-event JSON (loadable in `chrome://tracing` or Perfetto), and
//!   [`Recorder::json_snapshot`] emits a compact self-describing summary.
//!
//! # Example
//!
//! ```
//! use cts_obs::{Name, Recorder};
//!
//! static STAGE: Name = Name::new("demo.stage");
//!
//! let recorder = Recorder::install();
//! {
//!     let _span = cts_obs::span_with(&STAGE, 42);
//!     // ... the measured work ...
//! }
//! recorder.collect();
//! let spans = recorder.summaries();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].name, "demo.stage");
//! assert_eq!(spans[0].durations.count(), 1);
//! Recorder::uninstall();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod hist;
mod span;

pub use export::chrome_trace;
pub use hist::{bucket_bounds, bucket_of, Histogram, HISTOGRAM_BUCKETS};
pub use span::{
    now_ns, record, span, span_with, Name, Recorder, SpanEvent, SpanGuard, SpanSummary,
};
