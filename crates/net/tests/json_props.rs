//! Property tests for the hand-rolled JSON module: serialize → parse is
//! the identity for every representable value, string escaping is
//! lossless for arbitrary (control/unicode) content, and garbage input
//! is rejected or at least never panics.

use cts_net::{Json, JsonError};
use proptest::prelude::*;
use rand::Rng;

/// Strategy for arbitrary text including controls, quotes, backslashes,
/// multi-byte code points, and astral-plane characters.
fn wild_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000, 0..24).prop_map(|codes| {
        codes
            .into_iter()
            .filter_map(char::from_u32) // skips the surrogate gap
            .collect()
    })
}

/// Recursive random JSON value. The proptest shim's `Strategy` is just a
/// sampling trait, so a hand-rolled recursive strategy plugs straight in.
struct JsonValue {
    depth: usize,
}

impl Strategy for JsonValue {
    type Value = Json;
    fn sample(&self, rng: &mut proptest::TestRng) -> Json {
        sample_json(rng, self.depth)
    }
}

fn sample_json(rng: &mut proptest::TestRng, depth: usize) -> Json {
    // Leaves only at depth 0; containers shrink as depth runs out.
    let kind_max = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..kind_max) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => sample_number(rng),
        3 => Json::Str(sample_string(rng)),
        4 => {
            let n = rng.gen_range(0..4);
            Json::Arr((0..n).map(|_| sample_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..4);
            Json::Obj(
                (0..n)
                    .map(|_| (sample_string(rng), sample_json(rng, depth - 1)))
                    .collect(),
            )
        }
    }
}

fn sample_number(rng: &mut proptest::TestRng) -> Json {
    match rng.gen_range(0..4) {
        // Exact integers, including the 2^53 boundary region.
        0 => Json::Num(rng.gen_range(-9.007e15..9.007e15f64).trunc()),
        1 => Json::Num(rng.gen_range(-1000..1000) as f64),
        // Fractions across many magnitudes.
        2 => {
            let mantissa = rng.gen_range(-1.0..1.0f64);
            let exp = rng.gen_range(-200..200);
            Json::Num(mantissa * 10f64.powi(exp))
        }
        _ => Json::Num(rng.gen_range(-1.0..1.0f64)),
    }
}

fn sample_string(rng: &mut proptest::TestRng) -> String {
    let n = rng.gen_range(0..12);
    (0..n)
        .filter_map(|_| char::from_u32(rng.gen_range(0u32..0x11_0000)))
        .collect()
}

/// ASCII-heavy soup that is *almost* JSON-shaped, to probe the parser's
/// rejection paths rather than instantly failing on byte one.
fn json_soup() -> impl Strategy<Value = String> {
    let alphabet: Vec<char> = "{}[]\",:0123456789.eE+-truefalsnu \\ \t".chars().collect();
    prop::collection::vec(0usize..36, 0..40).prop_map(move |idx| {
        idx.into_iter()
            .map(|i| alphabet[i % alphabet.len()])
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn value_roundtrips_through_text(v in JsonValue { depth: 3 }) {
        let text = v.to_string();
        prop_assert!(!text.contains('\n'), "serialization must be newline-free: {text:?}");
        let back = Json::parse(&text).expect("serialized JSON must reparse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn string_escaping_is_lossless(s in wild_string()) {
        let v = Json::Str(s.clone());
        let back = Json::parse(&v.to_string()).expect("escaped string must reparse");
        prop_assert_eq!(back.as_str(), Some(s.as_str()));
    }

    #[test]
    fn serialization_is_idempotent(v in JsonValue { depth: 3 }) {
        let once = v.to_string();
        let twice = Json::parse(&once).unwrap().to_string();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn garbage_never_panics_and_errors_carry_offsets(soup in json_soup()) {
        match Json::parse(&soup) {
            Ok(v) => {
                // Accidentally valid JSON: must round-trip like any value.
                prop_assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
            }
            Err(JsonError { offset, .. }) => {
                prop_assert!(offset <= soup.len());
            }
        }
    }

    #[test]
    fn truncations_of_valid_json_are_rejected(v in JsonValue { depth: 2 }, cut in 0.0..1.0f64) {
        let text = v.to_string();
        // Cut strictly inside the serialization, at a char boundary.
        let mut at = ((text.len() as f64) * cut) as usize;
        while at > 0 && !text.is_char_boundary(at) {
            at -= 1;
        }
        prop_assume!(at > 0 && at < text.len());
        let prefix = &text[..at];
        // A strict prefix of a valid value is itself invalid unless the
        // value was a number (prefixes of numbers can be numbers) or the
        // cut lands exactly after a complete nested number token; for
        // containers/strings the prefix is always invalid.
        match &v {
            Json::Num(_) => {} // "12|3" parses; nothing to assert
            _ => prop_assert!(
                Json::parse(prefix).is_err(),
                "accepted truncation {prefix:?} of {text:?}"
            ),
        }
    }
}
