//! Protocol-level integration tests: a real server on an ephemeral port,
//! driven by the [`Client`] and by raw frames, with the failure paths the
//! wire spec promises — malformed frames answered without killing the
//! connection, disconnects cancelling in-flight work, deadlines expiring
//! queued work before it ever dispatches.

use cts_core::{
    CtsOptions, Instance, NodeKind, RequestStatus, ServiceOptions, Sink, SynthesisService,
    Synthesizer, TreeNode,
};
use cts_geom::Point;
use cts_net::frame::{read_frame, write_frame};
use cts_net::proto::{encode_response, encode_tree_chunk, Response, TreeChunkEvent, TreeInfo};
use cts_net::{
    ChunkMode, Client, ErrorCode, Json, NetError, Outcome, Server, ServerHandle, SubmitParams,
    SubmitSpec,
};
use cts_spice::Technology;
use cts_timing::fast_library;
use cts_util::wait_with_deadline;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

struct TestServer {
    addr: SocketAddr,
    service: Arc<SynthesisService>,
    handle: ServerHandle,
    running: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    /// One worker, no SPICE verification (speed), optionally paused so
    /// queued-state scenarios are deterministic.
    fn start(paused: bool) -> TestServer {
        TestServer::start_with(paused, ServiceOptions::default().queue_capacity)
    }

    /// [`TestServer::start`] with an explicit queue capacity, for batch
    /// all-or-nothing scenarios.
    fn start_with(paused: bool, capacity: usize) -> TestServer {
        let cts = CtsOptions::builder().threads(1).build().unwrap();
        let mut svc = ServiceOptions::default();
        svc.workers = 1;
        svc.verify = false;
        svc.start_paused = paused;
        svc.queue_capacity = capacity;
        let service = Arc::new(SynthesisService::new(
            Arc::new(fast_library().clone()),
            Arc::new(Technology::nominal_45nm()),
            cts,
            svc,
        ));
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("ephemeral bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let running = std::thread::spawn(move || server.run());
        TestServer {
            addr,
            service,
            handle,
            running: Some(running),
        }
    }

    fn stop(mut self) {
        self.handle.shutdown();
        self.running
            .take()
            .expect("server thread")
            .join()
            .expect("server thread panicked")
            .expect("server run failed");
    }
}

fn tiny(name: &str, n: usize) -> Instance {
    let sinks = (0..n)
        .map(|i| {
            Sink::new(
                format!("s{i}"),
                Point::new(
                    650.0 * ((i * 7 + 3) % n) as f64,
                    420.0 * ((i * 5 + 1) % n) as f64,
                ),
                22e-15,
            )
        })
        .collect();
    Instance::new(name, sinks)
}

#[test]
fn happy_path_submit_wait_status_metrics() {
    let ts = TestServer::start(false);
    let mut client = Client::connect_as(ts.addr, Some("it-tests")).unwrap();
    assert_eq!(client.server().version, cts_net::PROTOCOL_VERSION);
    assert_eq!(client.server().workers, 1);

    let id = client
        .submit_spec(SubmitSpec::new(tiny("happy", 4)))
        .unwrap();
    match client.wait_result(id).unwrap() {
        Outcome::Completed(result) => {
            assert_eq!(result.id, id);
            assert_eq!(result.name, "happy");
            assert_eq!(result.sinks, 4);
            assert_eq!(result.client_id.as_deref(), Some("it-tests"));
            assert!(result.estimate.latency > 0.0);
            assert!(result.verified.is_none(), "verification is off");
        }
        other => panic!("expected completion, got {other:?}"),
    }
    assert_eq!(client.status(id).unwrap(), RequestStatus::Done);
    let m = client.metrics().unwrap();
    assert_eq!(m.metrics.completed, 1);
    assert_eq!(m.metrics.submitted, 1);
    assert!(m.metrics.synth_seconds > 0.0);
    ts.stop();
}

#[test]
fn malformed_frame_gets_error_reply_without_killing_the_connection() {
    let ts = TestServer::start(false);
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Garbage line: a structured bad_json error with a null seq.
    writer.write_all(b"this is not json {{{\n").unwrap();
    writer.flush().unwrap();
    let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert!(reply.get("seq").unwrap().is_null());
    assert_eq!(
        reply
            .get("error")
            .unwrap()
            .get("code")
            .and_then(Json::as_str),
        Some("bad_json")
    );

    // Valid JSON that is not a valid request: bad_request, seq echoed.
    write_frame(
        &mut writer,
        &Json::obj(vec![
            ("op", Json::str("frobnicate")),
            ("seq", Json::num(7.0)),
        ]),
    )
    .unwrap();
    writer.flush().unwrap();
    let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("seq").and_then(Json::as_u64), Some(7));
    assert_eq!(
        reply
            .get("error")
            .unwrap()
            .get("code")
            .and_then(Json::as_str),
        Some("bad_request")
    );

    // The connection survived both: a metrics op still answers.
    write_frame(
        &mut writer,
        &Json::obj(vec![("op", Json::str("metrics")), ("seq", Json::num(8.0))]),
    )
    .unwrap();
    writer.flush().unwrap();
    let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(reply.get("seq").and_then(Json::as_u64), Some(8));
    ts.stop();
}

#[test]
fn unknown_option_keys_are_bad_request_naming_the_key_at_every_op() {
    // Every options-bearing op must reject a patch with an unknown key
    // as a structured bad_request whose message names the offending key
    // — a typo fails loudly instead of silently synthesizing defaults.
    let ts = TestServer::start(true);
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let instance = cts_net::proto::instance_to_json(&tiny("typo", 4));
    let bad_patch = || Json::obj(vec![("slew_limit", Json::num(100.0))]);
    let frames: Vec<(Json, &str)> = vec![
        (
            Json::obj(vec![
                ("op", Json::str("submit")),
                ("seq", Json::num(1.0)),
                ("instance", instance.clone()),
                ("options", bad_patch()),
            ]),
            "slew_limit",
        ),
        (
            Json::obj(vec![
                ("op", Json::str("submit_batch")),
                ("seq", Json::num(2.0)),
                (
                    "entries",
                    Json::arr(vec![Json::obj(vec![("instance", instance.clone())])]),
                ),
                ("options", bad_patch()),
            ]),
            "slew_limit",
        ),
        (
            Json::obj(vec![
                ("op", Json::str("submit_sweep")),
                ("seq", Json::num(3.0)),
                ("instance", instance.clone()),
                ("base", bad_patch()),
                (
                    "axes",
                    Json::obj(vec![("slew_target_ps", Json::arr(vec![Json::num(80.0)]))]),
                ),
            ]),
            "slew_limit",
        ),
        (
            Json::obj(vec![
                ("op", Json::str("submit_sweep")),
                ("seq", Json::num(4.0)),
                ("instance", instance.clone()),
                (
                    "axes",
                    Json::obj(vec![("grid_resolutions", Json::arr(vec![Json::num(8.0)]))]),
                ),
            ]),
            "grid_resolutions",
        ),
        (
            Json::obj(vec![
                ("op", Json::str("submit_sweep")),
                ("seq", Json::num(5.0)),
                ("instance", instance.clone()),
                (
                    "points",
                    Json::arr(vec![Json::obj(vec![("cost_alpha", Json::num(0.5))])]),
                ),
            ]),
            "cost_alpha",
        ),
    ];
    for (seq, (frame, key)) in frames.into_iter().enumerate() {
        write_frame(&mut writer, &frame).unwrap();
        writer.flush().unwrap();
        let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            reply.get("seq").and_then(Json::as_u64),
            Some(seq as u64 + 1)
        );
        let error = reply.get("error").unwrap();
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some("bad_request")
        );
        let message = error.get("message").and_then(Json::as_str).unwrap();
        assert!(
            message.contains(key),
            "reply {seq} must name the offending key '{key}': {message}"
        );
    }
    // Nothing was admitted by any of the rejected frames.
    assert_eq!(ts.service.metrics().submitted, 0);
    ts.stop();
}

#[test]
fn hello_with_wrong_version_is_rejected() {
    let ts = TestServer::start(false);
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &Json::obj(vec![
            ("op", Json::str("hello")),
            ("seq", Json::num(0.0)),
            ("version", Json::num(99.0)),
        ]),
    )
    .unwrap();
    writer.flush().unwrap();
    let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(
        reply
            .get("error")
            .unwrap()
            .get("code")
            .and_then(Json::as_str),
        Some("unsupported_version")
    );
    ts.stop();
}

#[test]
fn status_and_cancel_of_unknown_ids_are_structured_errors() {
    let ts = TestServer::start(false);
    let mut client = Client::connect(ts.addr).unwrap();
    match client.status(12345) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown_id, got {other:?}"),
    }
    match client.cancel(12345) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown_id, got {other:?}"),
    }
    ts.stop();
}

#[test]
fn cancel_over_the_wire_resolves_cancelled() {
    // Paused service: the request is still queued when the cancel lands,
    // so the outcome is deterministic.
    let ts = TestServer::start(true);
    let mut client = Client::connect(ts.addr).unwrap();
    let id = client.submit_spec(SubmitSpec::new(tiny("cut", 4))).unwrap();
    assert_eq!(client.status(id).unwrap(), RequestStatus::Queued);
    client.cancel(id).unwrap();
    assert!(matches!(
        client.wait_result(id).unwrap(),
        Outcome::Cancelled
    ));
    let m = client.metrics().unwrap();
    assert_eq!(m.metrics.cancelled, 1);
    assert_eq!(m.metrics.completed, 0);
    ts.stop();
}

#[test]
fn client_disconnect_mid_request_cancels_the_ticket() {
    // Paused service: the submitted request cannot start, so the
    // disconnect happens strictly "mid-request".
    let ts = TestServer::start(true);
    {
        let mut client = Client::connect(ts.addr).unwrap();
        let _id = client
            .submit_spec(SubmitSpec::new(tiny("orphan", 4)))
            .unwrap();
        assert_eq!(ts.service.metrics().submitted, 1);
        // Drop the connection with the request still queued.
    }
    // The connection teardown cancels the orphaned ticket; the queued
    // request resolves cancelled (even though the service stays paused)
    // and frees its slot.
    let cancelled = wait_with_deadline(Duration::from_secs(10), Duration::from_millis(5), || {
        (ts.service.metrics().cancelled == 1).then_some(())
    });
    assert!(cancelled.is_some(), "orphaned request was not cancelled");
    assert_eq!(ts.service.pending(), 0);
    assert_eq!(ts.service.metrics().completed, 0, "it never ran");
    ts.stop();
}

#[test]
fn deadline_expired_queued_request_never_dispatches() {
    // Paused service + 1 ms deadline: the deadline passes while queued;
    // the request must resolve `expired` without ever synthesizing.
    let ts = TestServer::start(true);
    let mut client = Client::connect(ts.addr).unwrap();
    let id = client
        .submit_spec(SubmitSpec::new(tiny("doomed", 4)).with_deadline_ms(1))
        .unwrap();
    assert!(matches!(client.wait_result(id).unwrap(), Outcome::Expired));
    let m = client.metrics().unwrap();
    assert_eq!(m.metrics.expired, 1);
    assert_eq!(m.metrics.completed, 0);
    assert_eq!(m.metrics.queue_depth, 0);
    assert_eq!(
        m.metrics.synth_seconds, 0.0,
        "no synthesis stage ever ran for the expired request"
    );
    ts.stop();
}

#[test]
fn submit_batch_admits_all_entries_and_streams_each_result() {
    let ts = TestServer::start(false);
    let mut client = Client::connect_as(ts.addr, Some("batcher")).unwrap();
    let specs: Vec<SubmitSpec> = (0..3)
        .map(|k| SubmitSpec::new(tiny(&format!("batch{k}"), 4 + k)))
        .collect();
    let ids = client.submit_specs(specs).unwrap();
    assert_eq!(ids.len(), 3);
    assert!(
        ids.windows(2).all(|w| w[1] == w[0] + 1),
        "atomic admission hands out consecutive ids: {ids:?}"
    );
    // Wait out of order: the stash covers any interleaving.
    for (k, &id) in ids.iter().enumerate().rev() {
        match client.wait_result(id).unwrap() {
            Outcome::Completed(result) => {
                assert_eq!(result.name, format!("batch{k}"));
                assert_eq!(result.sinks as usize, 4 + k);
                assert_eq!(result.client_id.as_deref(), Some("batcher"));
            }
            other => panic!("batch entry {k} did not complete: {other:?}"),
        }
    }
    let m = client.metrics().unwrap();
    assert_eq!(m.metrics.submitted, 3);
    assert_eq!(m.metrics.completed, 3);
    ts.stop();
}

#[test]
fn oversized_batch_is_rejected_whole() {
    // Capacity 2: a 3-entry batch can never be admitted atomically.
    let ts = TestServer::start_with(true, 2);
    let mut client = Client::connect(ts.addr).unwrap();
    let specs: Vec<SubmitSpec> = (0..3)
        .map(|k| SubmitSpec::new(tiny(&format!("big{k}"), 4)))
        .collect();
    match client.submit_specs(specs) {
        Err(NetError::Remote { code, message }) => {
            assert_eq!(code, ErrorCode::BadRequest);
            assert!(message.contains("batch of 3"), "{message}");
        }
        other => panic!("expected bad_request, got {other:?}"),
    }
    // Nothing was admitted — all-or-nothing.
    assert_eq!(ts.service.metrics().submitted, 0);
    assert_eq!(ts.service.pending(), 0);
    // A batch that fits still goes through on the same connection.
    let ids = client
        .submit_specs(vec![SubmitSpec::new(tiny("fits", 4))])
        .unwrap();
    assert_eq!(ids.len(), 1);
    ts.stop();
}

#[test]
fn result_events_racing_the_next_reply_are_stashed_by_id() {
    // Regression: a pushed result event can hit the socket before the
    // client has read the reply that would have told it the id exists
    // (a batch reply racing its first event, or — as forced here — the
    // events all arriving while an unrelated `metrics` call is in
    // flight). The client must stash by id unconditionally.
    let ts = TestServer::start(false);
    let mut client = Client::connect(ts.addr).unwrap();
    let specs: Vec<SubmitSpec> = (0..3)
        .map(|k| SubmitSpec::new(tiny(&format!("race{k}"), 4)))
        .collect();
    let ids = client.submit_specs(specs).unwrap();
    // Let every result event reach the socket before the client reads
    // another frame.
    let done = wait_with_deadline(Duration::from_secs(60), Duration::from_millis(5), || {
        (ts.service.metrics().completed == 3).then_some(())
    });
    assert!(done.is_some(), "batch never completed server-side");
    // This call must read (and stash) the three events before its reply.
    let m = client.metrics().unwrap();
    assert_eq!(m.metrics.completed, 3);
    for &id in &ids {
        match client.wait_result(id) {
            Ok(Outcome::Completed(_)) => {}
            other => panic!("event for {id} was dropped instead of stashed: {other:?}"),
        }
    }
    ts.stop();
}

#[test]
fn fetch_tree_roundtrips_the_routed_geometry_bit_for_bit() {
    let ts = TestServer::start(false);
    let mut client = Client::connect(ts.addr).unwrap();
    let inst = tiny("geom", 7);
    let id = client.submit_spec(SubmitSpec::new(inst.clone())).unwrap();
    assert!(matches!(
        client.wait_result(id).unwrap(),
        Outcome::Completed(_)
    ));

    let remote = client.fetch_tree(id, ChunkMode::Default).unwrap();
    // The reference: the same instance through the same code path the
    // server ran (identical options), entirely in process.
    let options = CtsOptions::builder().threads(1).build().unwrap();
    let reference = Synthesizer::new(fast_library(), options)
        .synthesize(&inst)
        .unwrap();
    assert_eq!(remote.name, "geom");
    assert_eq!(
        remote.tree, reference.tree,
        "wire geometry must be bit-identical to the in-process tree"
    );
    assert_eq!(remote.source, reference.source);
    assert_eq!(remote.level_stats, reference.level_stats);

    // A forced tiny chunk size exercises the multi-chunk path and must
    // rebuild the identical tree.
    let chunked = client.fetch_tree(id, ChunkMode::Nodes(3)).unwrap();
    assert_eq!(chunked, remote);

    // An absurd chunk request is clamped server-side (a frame larger
    // than the 8 MiB cap would be a fatal transport error for *us*) —
    // the stream still arrives and rebuilds identically. (Exactly
    // representable as a JSON number, unlike u64::MAX.)
    let clamped = client.fetch_tree(id, ChunkMode::Nodes(1_000_000)).unwrap();
    assert_eq!(clamped, remote);

    // Level-aligned streaming of a *completed* tree rebuilds the very
    // same geometry — chunk boundaries are presentation, not data.
    let levels = client.fetch_tree(id, ChunkMode::Levels).unwrap();
    assert_eq!(levels, remote);
    ts.stop();
}

#[test]
fn fetch_tree_of_unresolved_or_unknown_ids_is_unknown_id() {
    let ts = TestServer::start(true);
    let mut client = Client::connect(ts.addr).unwrap();
    // Never submitted.
    match client.fetch_tree(777, ChunkMode::Default) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown_id, got {other:?}"),
    }
    // Submitted but still queued (paused server): no tree to stream yet.
    let id = client
        .submit_spec(SubmitSpec::new(tiny("pending", 4)))
        .unwrap();
    match client.fetch_tree(id, ChunkMode::Default) {
        Err(NetError::Remote { code, .. }) => assert_eq!(code, ErrorCode::UnknownId),
        other => panic!("expected unknown_id, got {other:?}"),
    }
    // In *levels* mode the same queued request is not an error: the
    // partial stream is simply empty (nothing published yet).
    let progress = client.fetch_tree_progress(id).unwrap();
    assert!(progress.partial);
    assert_eq!(progress.levels_done, 0);
    assert!(progress.nodes.is_empty());
    assert!(progress.source.is_none());
    ts.stop();
}

#[test]
fn hello_v1_is_rejected_with_unsupported_version_not_a_hang() {
    // The v2 compatibility guarantee: a v1 client learns it is obsolete
    // from a structured error at handshake — it is never left waiting on
    // frames it cannot route.
    let ts = TestServer::start(false);
    let stream = TcpStream::connect(ts.addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_frame(
        &mut writer,
        &Json::obj(vec![
            ("op", Json::str("hello")),
            ("seq", Json::num(0.0)),
            ("version", Json::num(1.0)),
        ]),
    )
    .unwrap();
    writer.flush().unwrap();
    let reply = read_frame(&mut reader).unwrap().unwrap().unwrap();
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(reply.get("seq").and_then(Json::as_u64), Some(0));
    assert_eq!(
        reply
            .get("error")
            .unwrap()
            .get("code")
            .and_then(Json::as_str),
        Some("unsupported_version")
    );
    ts.stop();
}

#[test]
fn truncated_tree_stream_is_a_transport_error_not_a_partial_tree() {
    // A hand-rolled fake server: answers the handshake, then replies to
    // `fetch_tree` with a header promising 4 nodes in 2 chunks, streams
    // one chunk, and drops the connection mid-stream.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // hello
        let hello = read_frame(&mut reader).unwrap().unwrap().unwrap();
        let seq = hello.get("seq").and_then(Json::as_u64);
        let reply = encode_response(
            seq,
            &Response::Hello {
                version: cts_net::PROTOCOL_VERSION,
                server: "fake/0".into(),
                workers: 1,
            },
        );
        write_frame(&mut writer, &reply).unwrap();
        writer.flush().unwrap();
        // fetch_tree → header + one of two chunks, then hang up.
        let fetch = read_frame(&mut reader).unwrap().unwrap().unwrap();
        let seq = fetch.get("seq").and_then(Json::as_u64);
        let header = encode_response(
            seq,
            &Response::TreeHeader(TreeInfo::complete(0, "cut".into(), 4, 2, 3)),
        );
        write_frame(&mut writer, &header).unwrap();
        let joint = |x: f64| TreeNode {
            kind: NodeKind::Joint,
            location: Point::new(x, 0.0),
            parent: None,
            wire_to_parent_um: 0.0,
            children: Vec::new(),
        };
        let chunk = encode_tree_chunk(&TreeChunkEvent {
            id: 0,
            chunk: 0,
            nodes: vec![joint(0.0), joint(1.0)],
        });
        write_frame(&mut writer, &chunk).unwrap();
        writer.flush().unwrap();
        // Drop both halves: the stream ends mid-geometry.
    });
    let mut client = Client::connect(addr).unwrap();
    match client.fetch_tree(0, ChunkMode::Default) {
        Err(NetError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
        other => panic!("expected a transport error, got {other:?}"),
    }
    fake.join().unwrap();
}

#[test]
// Deliberately exercises the deprecated `submit` wrapper: the thin shims
// must keep producing byte-identical frames until they are removed.
#[allow(deprecated)]
fn shutdown_op_drains_and_stops_the_server() {
    let ts = TestServer::start(false);
    let mut client = Client::connect(ts.addr).unwrap();
    let id = client
        .submit(&tiny("draining", 4), &SubmitParams::default())
        .unwrap();
    // Shutdown without waiting the result first: the drain resolves the
    // request, its event is stashed, and the confirmation arrives after.
    client.shutdown().unwrap();
    assert!(matches!(
        client.wait_result(id).unwrap(),
        Outcome::Completed(_)
    ));
    // The server's run() loop exits on its own now.
    let mut ts = ts;
    ts.running
        .take()
        .unwrap()
        .join()
        .expect("server thread")
        .expect("server run");
    // New connections are refused (accept loop gone).
    assert!(
        Client::connect(ts.addr).is_err(),
        "server kept accepting after shutdown"
    );
}
