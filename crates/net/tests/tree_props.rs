//! Property tests for the routed-geometry wire codec: an arbitrary
//! (structurally valid) clock tree, streamed as chunked `tree` events
//! through the textual JSON layer and rebuilt with
//! [`ClockTree::from_nodes`], must come back **bit-for-bit** — every
//! node coordinate, buffer cell id, and wire segment length — for every
//! chunk size; and corrupted node lists must be rejected, never
//! silently patched.

use cts_core::{ClockTree, NodeKind, Sink, TreeNode, TreeNodeId};
use cts_geom::Point;
use cts_net::proto::{decode_tree_event, encode_tree_chunk, TreeChunkEvent, TreeEvent};
use cts_net::Json;
use cts_timing::BufferId;
use proptest::prelude::*;
use rand::Rng;

/// A random finite coordinate mixing smooth values with exact dyadic
/// tails, so shortest-roundtrip printing is exercised on "ugly" floats.
fn wild_coord(rng: &mut proptest::TestRng) -> f64 {
    let base = rng.gen_range(-5000.0..5000.0f64);
    match rng.gen_range(0..3) {
        0 => base,
        1 => base.trunc() + 0.5,
        _ => base + 2.0f64.powi(-rng.gen_range(20..50)),
    }
}

fn wild_wire(rng: &mut proptest::TestRng) -> f64 {
    wild_coord(rng).abs()
}

/// Builds a random valid clock tree through the arena's own mutator API
/// (so every invariant holds by construction): random sinks, random
/// merge order, buffers sprinkled above random roots, crowned with a
/// source.
struct WildTree {
    max_sinks: usize,
}

impl Strategy for WildTree {
    type Value = ClockTree;
    fn sample(&self, rng: &mut proptest::TestRng) -> ClockTree {
        let sinks = rng.gen_range(1..self.max_sinks + 1);
        let mut tree = ClockTree::new();
        for i in 0..sinks {
            let sink = Sink::new(
                format!("s{i}"),
                Point::new(wild_coord(rng), wild_coord(rng)),
                rng.gen_range(0.0..60.0) * 1e-15,
            );
            tree.add_sink(i, &sink);
        }
        // Merge random pairs of roots until one remains, occasionally
        // interposing a buffer (random library cell) above a root first.
        loop {
            let mut roots = tree.roots();
            if roots.len() < 2 {
                break;
            }
            let a = roots.swap_remove(rng.gen_range(0..roots.len()));
            let b = roots.swap_remove(rng.gen_range(0..roots.len()));
            let wrap = |tree: &mut ClockTree, root, rng: &mut proptest::TestRng| {
                if rng.gen_bool(0.4) {
                    let cell = BufferId(rng.gen_range(0..3));
                    let at = Point::new(wild_coord(rng), wild_coord(rng));
                    let buf = tree.add_buffer(at, cell);
                    tree.attach(buf, root, wild_wire(rng));
                    buf
                } else {
                    root
                }
            };
            let a = wrap(&mut tree, a, rng);
            let b = wrap(&mut tree, b, rng);
            let joint = tree.add_joint(Point::new(wild_coord(rng), wild_coord(rng)));
            tree.attach(joint, a, wild_wire(rng));
            tree.attach(joint, b, wild_wire(rng));
        }
        let root = tree.roots()[0];
        tree.add_source(root, BufferId(rng.gen_range(0..3)));
        tree
    }
}

/// Streams `tree` through the textual wire codec in `chunk`-node events
/// and rebuilds it.
fn wire_roundtrip(tree: &ClockTree, chunk: usize) -> Result<ClockTree, String> {
    let mut collected: Vec<TreeNode> = Vec::new();
    for (k, run) in tree.nodes().chunks(chunk).enumerate() {
        let frame = encode_tree_chunk(&TreeChunkEvent {
            id: 42,
            chunk: k as u64,
            nodes: run.to_vec(),
        });
        // Through text, as on the wire.
        let reparsed = Json::parse(&frame.to_string()).map_err(|e| e.to_string())?;
        match decode_tree_event(&reparsed)? {
            TreeEvent::Chunk(c) => collected.extend(c.nodes),
            TreeEvent::Done(_) => return Err("chunk decoded as terminal".into()),
        }
    }
    ClockTree::from_nodes(collected).map_err(|e| e.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn geometry_roundtrips_bit_for_bit(tree in WildTree { max_sinks: 12 }, cut in 1usize..9) {
        let back = wire_roundtrip(&tree, cut).expect("valid tree must round-trip");
        // PartialEq on ClockTree compares every node field — kind
        // (incl. buffer cell ids and sink caps), location, parent link,
        // wire length, and child order — exactly, f64s by bits-for-value.
        prop_assert_eq!(&back, &tree);
        let root = tree.roots()[0];
        prop_assert_eq!(back.validate_under(root), tree.validate_under(root));
        prop_assert_eq!(back.wirelength_under(root), tree.wirelength_under(root));
    }

    #[test]
    fn corrupted_links_are_rejected_not_repaired(tree in WildTree { max_sinks: 6 }, pick in 0.0..1.0f64) {
        let mut nodes = tree.nodes().to_vec();
        let victim = ((nodes.len() as f64) * pick) as usize % nodes.len();
        // Point the victim's parent somewhere inconsistent (or dangling).
        nodes[victim].parent = Some(TreeNodeId::from_index(nodes.len() + 7));
        prop_assert!(ClockTree::from_nodes(nodes).is_err());
    }

    #[test]
    fn dropping_a_node_breaks_the_rebuild(tree in WildTree { max_sinks: 6 }) {
        // Deleting the last node (the source, which always has a child)
        // leaves a dangling child link: a short stream can never rebuild
        // silently. (The client additionally enforces the header's node
        // count before even attempting a rebuild.)
        let mut nodes = tree.nodes().to_vec();
        let dropped = nodes.pop().expect("trees are non-empty");
        prop_assert!(matches!(dropped.kind, NodeKind::Source { .. }));
        prop_assert!(ClockTree::from_nodes(nodes).is_err());
    }
}
