//! Sweep and level-streaming integration tests: the standing invariants
//! the wire sweep subsystem promises — a swept point's tree is
//! byte-identical to the same options submitted individually, for any
//! worker count and any chunk mode; the terminal `pareto` event is
//! reproducible client-side from individually fetched stats; and a
//! mid-synthesis `fetch_tree` in levels mode only ever shows
//! level-complete prefixes, never a torn level.

use cts_core::{
    ClockTree, CtsOptions, Instance, ParetoFront, ParetoPoint, ServiceOptions, Sink,
    SynthesisService,
};
use cts_geom::Point;
use cts_net::{
    ChunkMode, Client, OptionsPatch, Outcome, Server, ServerHandle, SubmitSpec, SweepAxesSpec,
    SweepRange,
};
use cts_spice::Technology;
use cts_timing::fast_library;
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread::JoinHandle;

struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    running: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    /// No SPICE verification (speed), explicit worker count — the sweep
    /// invariants must hold at every parallelism level.
    fn start(workers: usize) -> TestServer {
        let cts = CtsOptions::builder().threads(1).build().unwrap();
        let mut svc = ServiceOptions::default();
        svc.workers = workers;
        svc.verify = false;
        let service = Arc::new(SynthesisService::new(
            Arc::new(fast_library().clone()),
            Arc::new(Technology::nominal_45nm()),
            cts,
            svc,
        ));
        let server = Server::bind("127.0.0.1:0", service).expect("ephemeral bind");
        let addr = server.local_addr();
        let handle = server.handle();
        let running = Some(std::thread::spawn(move || server.run()));
        TestServer {
            addr,
            handle,
            running,
        }
    }

    fn stop(mut self) {
        self.handle.shutdown();
        self.running
            .take()
            .expect("server thread")
            .join()
            .expect("server thread panicked")
            .expect("server run failed");
    }
}

fn spread(name: &str, n: usize) -> Instance {
    let sinks = (0..n)
        .map(|i| {
            Sink::new(
                format!("s{i}"),
                Point::new(
                    710.0 * ((i * 13 + 5) % n) as f64,
                    530.0 * ((i * 11 + 2) % n) as f64,
                ),
                24e-15,
            )
        })
        .collect();
    Instance::new(name, sinks)
}

/// The 2×2 axes every test sweeps: slew target × H-correction.
fn axes() -> SweepAxesSpec {
    SweepAxesSpec {
        slew_targets_ps: vec![70.0, 95.0],
        h_corrections: vec![cts_core::HCorrection::Off, cts_core::HCorrection::Correct],
        ..SweepAxesSpec::default()
    }
}

/// The per-point patches the axes above expand to, in expansion order
/// (slew outermost) — what an individual-submission client would send.
fn expanded_patches() -> Vec<OptionsPatch> {
    let mut patches = Vec::new();
    for &slew in &[70.0, 95.0] {
        for &h in &[cts_core::HCorrection::Off, cts_core::HCorrection::Correct] {
            patches.push(OptionsPatch {
                slew_target_ps: Some(slew),
                h_correction: Some(h),
                ..OptionsPatch::default()
            });
        }
    }
    patches
}

/// Runs the standard sweep on a server with `workers` workers and
/// returns (per-point trees, the terminal pareto event's rows as a
/// rebuilt front, per-point engine stats).
fn run_sweep(workers: usize, chunk: ChunkMode) -> (Vec<ClockTree>, ParetoFront, Vec<ParetoPoint>) {
    let ts = TestServer::start(workers);
    let mut client = Client::connect(ts.addr).unwrap();
    let sub = client
        .submit_sweep(
            SubmitSpec::new(spread("sweep", 12)),
            SweepRange::Axes(axes()),
        )
        .unwrap();
    assert_eq!(sub.ids.len(), 4, "2×2 axes expand to 4 points");
    let pareto = client.wait_pareto(sub.sweep).unwrap();
    assert_eq!(pareto.total, 4);
    assert_eq!(pareto.completed, 4);
    assert_eq!(pareto.points.len(), 4);
    // Progress events: one per point, done counters 1..=4, each naming a
    // sweep member.
    let progress = client.take_sweep_progress(sub.sweep);
    assert_eq!(progress.len(), 4);
    for (k, p) in progress.iter().enumerate() {
        assert_eq!(p.done, k as u64 + 1);
        assert_eq!(p.total, 4);
        assert!(sub.ids.contains(&p.id));
    }
    // Client-side stats of every point, in expansion (ordinal) order.
    let mut stats = Vec::new();
    for (ordinal, &id) in sub.ids.iter().enumerate() {
        match client.wait_result(id).unwrap() {
            Outcome::Completed(r) => stats.push(ParetoPoint {
                ordinal,
                skew: r.estimate.skew,
                buffer_cap: r.buffer_cap_f,
                latency: r.estimate.latency,
            }),
            other => panic!("sweep point {id} did not complete: {other:?}"),
        }
    }
    let trees = sub
        .ids
        .iter()
        .map(|&id| client.fetch_tree(id, chunk).unwrap().tree)
        .collect();
    ts.stop();
    (trees, pareto.to_front(), stats)
}

#[test]
fn sweep_points_match_individual_submissions_bit_for_bit() {
    // Reference: the same four option points submitted individually.
    let ts = TestServer::start(1);
    let mut client = Client::connect(ts.addr).unwrap();
    let mut reference = Vec::new();
    for patch in expanded_patches() {
        let id = client
            .submit_spec(SubmitSpec::new(spread("sweep", 12)).with_options(patch))
            .unwrap();
        assert!(matches!(
            client.wait_result(id).unwrap(),
            Outcome::Completed(_)
        ));
        reference.push(client.fetch_tree(id, ChunkMode::Default).unwrap().tree);
    }
    ts.stop();

    // The swept expansion must reproduce those trees bit for bit at
    // every worker count, under every chunk mode — and the pareto event
    // must carry exactly the stats a client would fold itself.
    for (workers, chunk) in [
        (1, ChunkMode::Default),
        (2, ChunkMode::Nodes(5)),
        (4, ChunkMode::Levels),
    ] {
        let (trees, front, stats) = run_sweep(workers, chunk);
        assert_eq!(
            trees, reference,
            "sweep with {workers} workers diverged from individual submissions"
        );
        let folded = ParetoFront::from_points(stats);
        assert_eq!(
            front, folded,
            "pareto event with {workers} workers is not the client-side fold"
        );
        assert!(!front.front_ordinals().is_empty());
    }
}

#[test]
fn mid_synthesis_level_stream_never_shows_a_torn_level() {
    let ts = TestServer::start(1);
    let mut client = Client::connect(ts.addr).unwrap();
    // Large instance: synthesis takes long enough that polling observes
    // the tree mid-growth (the invariants below hold either way).
    let id = client
        .submit_spec(SubmitSpec::new(spread("watched", 360)).with_publish_levels(true))
        .unwrap();

    let mut last_levels = 0u64;
    let mut last_nodes = 0usize;
    let full = loop {
        let p = client.fetch_tree_progress(id).unwrap();
        if !p.partial {
            break p;
        }
        // Levels only land whole: the published prefix grows
        // monotonically, level by level...
        assert!(p.levels_done >= last_levels, "levels went backwards");
        assert!(p.nodes.len() >= last_nodes, "snapshot shrank");
        // ...and every snapshot is self-contained — a torn level would
        // leave a parent or child pointing past the published prefix.
        for node in &p.nodes {
            if let Some(parent) = node.parent {
                assert!(parent.index() < p.nodes.len(), "parent outside snapshot");
            }
            for &child in &node.children {
                assert!(child.index() < p.nodes.len(), "child outside snapshot");
            }
        }
        assert!(p.source.is_none() && p.level_stats.is_empty() && p.name.is_empty());
        last_levels = p.levels_done;
        last_nodes = p.nodes.len();
    };

    // Completed: the progress stream hands over the full arena, and the
    // rebuilt tree is the one a plain fetch returns.
    let remote = client.fetch_tree(id, ChunkMode::Levels).unwrap();
    assert_eq!(full.name, "watched");
    assert_eq!(full.source, Some(remote.source));
    assert_eq!(full.level_stats, remote.level_stats);
    let rebuilt = ClockTree::from_nodes(full.nodes).unwrap();
    assert_eq!(rebuilt, remote.tree);

    // A completed tree refuses the whole-tree accessor only while
    // partial; now both modes agree.
    assert_eq!(
        client.fetch_tree(id, ChunkMode::Default).unwrap().tree,
        remote.tree
    );
    ts.stop();
}
