//! `cts-net` — the JSON-over-TCP network front end for the long-running
//! synthesis service, so non-Rust clients (and Rust clients in other
//! processes) can drive one shared, characterized-library
//! [`cts_core::SynthesisService`].
//!
//! Three layers, bottom up — all std-only (the build environment is
//! offline; there is no serde or tokio here, and none is needed):
//!
//! 1. **[`json`] + [`frame`]** — a hand-rolled minimal JSON value
//!    (parse/serialize with full escaping, strict numbers, depth limits)
//!    and a newline-delimited framing codec that distinguishes
//!    recoverable malformed frames from fatal transport failures.
//! 2. **[`proto`]** — the versioned request/response protocol: `hello`,
//!    `submit` (instance spec + options subset + priority + deadline +
//!    client id), `submit_batch` (N instances in one frame, admitted
//!    atomically), `fetch_tree` (the routed tree geometry of a completed
//!    request, streamed as chunked `tree` events), `status`, `cancel`,
//!    `metrics`, `stats` (latency histograms + span summaries),
//!    `shutdown`, structured error replies, and pushed `result` events
//!    carrying the full per-request stats. Spec and transcripts:
//!    `docs/PROTOCOL.md`.
//! 3. **[`server`] + [`client`]** — a threaded TCP server (one
//!    reader/writer/completion-pump thread trio per connection, graceful
//!    drain on the `shutdown` op) around one [`cts_core::SynthesisService`],
//!    and a blocking [`Client`]. The `cts-serve` binary wraps the server
//!    for standalone deployment.
//!
//! # Example
//!
//! An in-process server on an ephemeral port and a client driving it —
//! the shape of `examples/remote_flow.rs`:
//!
//! ```no_run
//! use cts_core::{CtsOptions, Instance, ServiceOptions, Sink, SynthesisService};
//! use cts_geom::Point;
//! use cts_net::{Client, Outcome, Server, SubmitSpec};
//! use std::sync::Arc;
//!
//! let service = Arc::new(SynthesisService::new(
//!     Arc::new(cts_timing::fast_library().clone()),
//!     Arc::new(cts_spice::Technology::nominal_45nm()),
//!     CtsOptions::default(),
//!     ServiceOptions::default(),
//! ));
//! let server = Server::bind("127.0.0.1:0", Arc::clone(&service))?;
//! let addr = server.local_addr();
//! let running = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr)?;
//! let sinks = (0..4)
//!     .map(|i| Sink::new(format!("ff{i}"), Point::new(700.0 * i as f64, 0.0), 25e-15))
//!     .collect();
//! let id = client.submit_spec(SubmitSpec::new(Instance::new("remote", sinks)))?;
//! match client.wait_result(id)? {
//!     Outcome::Completed(result) => println!("skew: {} s", result.estimate.skew),
//!     other => println!("request resolved {other:?}"),
//! }
//! client.shutdown()?; // drain + stop; server.run() returns
//! running.join().unwrap()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod frame;
pub mod json;
pub mod proto;
pub mod server;

pub use client::{
    ChunkMode, Client, NetError, ServerInfo, SubmitParams, SubmitSpec, SweepSubmission,
    TreeProgress,
};
pub use json::{Json, JsonError};
pub use proto::{
    BatchEntry, ErrorCode, MetricsReply, OptionsPatch, Outcome, ParetoEvent, ParetoWirePoint,
    RemoteResult, RemoteTree, ResultEvent, SpanStat, StatsReply, SweepAxesSpec, SweepPointOutcome,
    SweepPointSpec, SweepProgressEvent, SweepRange, TimingStats, TreeChunkEvent, TreeDoneEvent,
    TreeEvent, TreeInfo, VariationStats, DEFAULT_TREE_CHUNK, MAX_TREE_CHUNK, PROTOCOL_VERSION,
};
pub use server::{Server, ServerHandle};
