//! `cts-serve` — the standalone synthesis server: one characterized
//! library, one [`cts_core::SynthesisService`], a JSON-over-TCP front
//! end (`docs/PROTOCOL.md`).
//!
//! ```sh
//! cts-serve [--addr 127.0.0.1:4415] [--workers N] [--queue N]
//!           [--threads N] [--no-verify]
//! ```
//!
//! The process runs until a client sends the `shutdown` op; the service
//! then drains (every admitted request resolves and streams its result)
//! and the final metrics are printed.

use cts_core::{CtsOptions, ServiceOptions, SynthesisService};
use cts_net::Server;
use std::sync::Arc;

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    threads: usize,
    verify: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4415".into(),
        workers: 0,
        queue: 64,
        threads: 1,
        verify: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--no-verify" => args.verify = false,
            "--help" | "-h" => {
                println!(
                    "usage: cts-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--threads N] [--no-verify]\n\
                     --addr      listen address (default 127.0.0.1:4415; port 0 = ephemeral)\n\
                     --workers   service worker shards, 0 = every core (default 0)\n\
                     --queue     submission queue bound, 0 = unbounded (default 64)\n\
                     --threads   per-request merge threads (default 1: the\n\
                     \u{20}           worker shards are the parallel axis)\n\
                     --no-verify skip SPICE verification (engine estimates only)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;

    eprintln!("characterizing (or loading) the delay/slew library…");
    let library = cts_timing::fast_library().clone();
    let tech = cts_spice::Technology::nominal_45nm();

    let mut options = CtsOptions::default();
    options.threads = args.threads;
    let mut svc_options = ServiceOptions::default();
    svc_options.workers = args.workers;
    svc_options.queue_capacity = args.queue;
    svc_options.verify = args.verify;
    let service = Arc::new(SynthesisService::new(
        Arc::new(library),
        Arc::new(tech),
        options,
        svc_options,
    ));

    let server = Server::bind(&args.addr, Arc::clone(&service))?;
    eprintln!(
        "cts-serve listening on {} ({} workers, queue {}, verify {})",
        server.local_addr(),
        service.workers(),
        args.queue,
        args.verify
    );
    server.run()?;

    // The service drained before run() returned; the counters are final.
    eprintln!("cts-serve stopped; final metrics: {}", service.metrics());
    Ok(())
}
