//! `cts-serve` — the standalone synthesis server: one characterized
//! library, one [`cts_core::SynthesisService`], a JSON-over-TCP front
//! end (`docs/PROTOCOL.md`).
//!
//! ```sh
//! cts-serve [--addr 127.0.0.1:4415] [--workers N] [--queue N]
//!           [--threads N] [--no-verify] [--trace-out PATH]
//!           [--metrics-every SECS]
//! ```
//!
//! The process runs until a client sends the `shutdown` op; the service
//! then drains (every admitted request resolves and streams its result)
//! and the final metrics are printed. With `--trace-out` a span recorder
//! runs for the server's lifetime and a Chrome trace-event JSON file
//! (loadable in Perfetto / `chrome://tracing`) is written at shutdown;
//! with `--metrics-every N` the service counters are dumped to stderr
//! every N seconds.

use cts_core::{CtsOptions, ServiceOptions, SynthesisService};
use cts_net::Server;
use std::sync::mpsc::{channel, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    threads: usize,
    verify: bool,
    trace_out: Option<String>,
    metrics_every: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:4415".into(),
        workers: 0,
        queue: 64,
        threads: 1,
        verify: true,
        trace_out: None,
        metrics_every: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--no-verify" => args.verify = false,
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics-every" => {
                let secs: u64 = value("--metrics-every")?
                    .parse()
                    .map_err(|e| format!("--metrics-every: {e}"))?;
                if secs == 0 {
                    return Err("--metrics-every must be at least 1 second".into());
                }
                args.metrics_every = Some(secs);
            }
            "--help" | "-h" => {
                println!(
                    "usage: cts-serve [--addr HOST:PORT] [--workers N] [--queue N] \
                     [--threads N] [--no-verify] [--trace-out PATH] [--metrics-every SECS]\n\
                     --addr          listen address (default 127.0.0.1:4415; port 0 = ephemeral)\n\
                     --workers       service worker shards, 0 = every core (default 0)\n\
                     --queue         submission queue bound, 0 = unbounded (default 64)\n\
                     --threads       per-request merge threads (default 1: the\n\
                     \u{20}               worker shards are the parallel axis)\n\
                     --no-verify     skip SPICE verification (engine estimates only)\n\
                     --trace-out     record spans and write a Chrome trace-event JSON\n\
                     \u{20}               file here at shutdown (open in Perfetto)\n\
                     --metrics-every dump service metrics to stderr every SECS seconds"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args = parse_args()?;

    // Install the recorder before any synthesis runs so every span of
    // every request lands in the trace. Tracing never changes results —
    // the determinism suite pins that — only observes them.
    let recorder = args
        .trace_out
        .as_ref()
        .map(|_| cts_obs::Recorder::install());

    eprintln!("characterizing (or loading) the delay/slew library…");
    let library = cts_timing::fast_library().clone();
    let tech = cts_spice::Technology::nominal_45nm();

    let options = CtsOptions::builder().threads(args.threads).build()?;
    let mut svc_options = ServiceOptions::default();
    svc_options.workers = args.workers;
    svc_options.queue_capacity = args.queue;
    svc_options.verify = args.verify;
    let service = Arc::new(SynthesisService::new(
        Arc::new(library),
        Arc::new(tech),
        options,
        svc_options,
    ));

    let server = Server::bind(&args.addr, Arc::clone(&service))?;
    eprintln!(
        "cts-serve listening on {} ({} workers, queue {}, verify {})",
        server.local_addr(),
        service.workers(),
        args.queue,
        args.verify
    );

    // Periodic metrics dump: a monitor thread on an interruptible sleep
    // (the channel sender drops when run() returns, waking it for exit).
    let monitor = args.metrics_every.map(|secs| {
        let (stop_tx, stop_rx) = channel::<()>();
        let svc = Arc::clone(&service);
        let thread = std::thread::Builder::new()
            .name("cts-serve-monitor".into())
            .spawn(move || loop {
                match stop_rx.recv_timeout(Duration::from_secs(secs)) {
                    Err(RecvTimeoutError::Timeout) => {
                        eprintln!("cts-serve metrics: {}", svc.metrics());
                    }
                    Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                }
            })
            .expect("spawning the metrics monitor thread");
        (stop_tx, thread)
    });

    server.run()?;

    if let Some((stop_tx, thread)) = monitor {
        let _ = stop_tx.send(());
        let _ = thread.join();
    }

    if let (Some(path), Some(recorder)) = (&args.trace_out, &recorder) {
        let trace = recorder.chrome_trace();
        std::fs::write(path, &trace)?;
        eprintln!(
            "cts-serve wrote {} bytes of trace to {path} (dropped {} events)",
            trace.len(),
            recorder.dropped()
        );
    }

    // The service drained before run() returned; the counters are final.
    eprintln!("cts-serve stopped; final metrics: {}", service.metrics());
    Ok(())
}
