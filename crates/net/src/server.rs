//! The threaded TCP server: one [`SynthesisService`] behind the wire
//! protocol.
//!
//! Thread shape, per connection:
//!
//! * a **reader** (the connection thread itself) — decodes request
//!   frames, performs the op against the shared service, and queues the
//!   reply. A malformed frame gets a structured error reply and the
//!   connection keeps going; only transport failures (I/O error,
//!   oversized frame) end it.
//! * a **writer** — owns the socket's write half and serializes frames
//!   from an mpsc channel, so replies (reader) and result events (pump)
//!   interleave without tearing.
//! * a **completion pump** — owns the connection's outstanding
//!   [`Ticket`]s in a [`cts_util::CompletionPump`], sweeps them between
//!   control messages, and pushes a result event as each resolves. When
//!   the reader goes away (client disconnect), the pump flushes what
//!   already resolved and **cancels every still-pending ticket** — a
//!   dead client's queued work never occupies the service.
//!
//! Server lifecycle: [`Server::run`] accepts until a `shutdown` op (or
//! [`ServerHandle::shutdown`]) arrives, then drains the service
//! ([`SynthesisService::shutdown`] — every admitted request resolves and
//! streams its event), replies to the shutdown op, closes the listener
//! and every connection, joins the threads, and returns.

use crate::frame::{read_frame, write_frame};
use crate::json::Json;
use crate::proto::{
    decode_request, encode_event, encode_pareto_event, encode_response, encode_sweep_progress,
    encode_tree_chunk, encode_tree_done, DecodeError, ErrorCode, MetricsReply, Outcome,
    ParetoEvent, ParetoWirePoint, Request, Response, ResultEvent, SpanStat, StatsReply,
    SweepPointOutcome, SweepProgressEvent, SweepRange, TreeChunkEvent, TreeDoneEvent, TreeInfo,
    DEFAULT_TREE_CHUNK, MAX_TREE_CHUNK, PROTOCOL_VERSION,
};
use cts_core::{
    pareto_point, BatchSubmitError, ParetoFront, ParetoPoint, RequestHandle, ServiceError,
    SubmitError, SweepSpec, SweepSubmitError, SynthesisRequest, SynthesisResult, SynthesisService,
    Ticket,
};
use cts_util::{CompletionPump, PollPending};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The server identification string sent in `hello` replies.
fn server_ident() -> String {
    format!("cts-serve/{}", env!("CARGO_PKG_VERSION"))
}

// Span: one decoded request frame, op → reply queued (attr = seq).
static SPAN_HANDLE_FRAME: cts_obs::Name = cts_obs::Name::new("net.handle_frame");

/// Shared server state: the service plus what shutdown needs to reach.
struct ServerCtx {
    service: Arc<SynthesisService>,
    addr: SocketAddr,
    shutting_down: AtomicBool,
    /// Write halves of live connections, for forced teardown at
    /// shutdown; keyed by connection ordinal.
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl ServerCtx {
    /// Drains the service (blocking until every admitted request has
    /// resolved — their result events stream to clients meanwhile).
    /// Idempotent.
    fn drain(&self) {
        self.service.shutdown();
    }

    /// Stops the accept loop and winds down every live connection. Only
    /// the *read* halves are shut: each reader observes EOF and exits,
    /// while its connection teardown still flushes pending result events
    /// and replies over the intact write half before the socket drops —
    /// no frame queued before shutdown is ever lost. Safe to call more
    /// than once.
    fn stop(&self) {
        {
            // The flag flips under the registry lock, and the accept loop
            // registers + re-checks under the same lock — so every
            // connection is wound down by exactly one side: either it is
            // in the registry when this loop runs, or its registration
            // observes the flag and shuts itself. Without this pairing, a
            // connection accepted concurrently with stop() could miss
            // both and leave run() joining a reader that never wakes.
            let conns = self.conns.lock().expect("connection registry poisoned");
            self.shutting_down.store(true, Ordering::Release);
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A shutdown control detached from the blocked [`Server::run`] call —
/// for embedding the server in-process (tests, `examples/remote_flow`).
/// The wire protocol's `shutdown` op does the same thing.
#[derive(Clone)]
pub struct ServerHandle {
    ctx: Arc<ServerCtx>,
}

impl ServerHandle {
    /// Drains the service, then stops the accept loop and closes every
    /// connection; [`Server::run`] returns once the teardown finishes.
    pub fn shutdown(&self) {
        self.ctx.drain();
        self.ctx.stop();
    }

    /// The address the server listens on.
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }
}

/// The JSON-over-TCP front end around one shared [`SynthesisService`].
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
}

impl Server {
    /// Wraps an already-bound listener around `service`. Binding
    /// externally is what lets callers use an ephemeral port
    /// (`127.0.0.1:0`) and read it back before the server runs.
    ///
    /// # Errors
    ///
    /// The listener must report its local address.
    pub fn new(service: Arc<SynthesisService>, listener: TcpListener) -> io::Result<Server> {
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            ctx: Arc::new(ServerCtx {
                service,
                addr,
                shutting_down: AtomicBool::new(false),
                conns: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// Binds `addr` and wraps it; see [`Server::new`].
    ///
    /// # Errors
    ///
    /// The bind failure.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<SynthesisService>) -> io::Result<Server> {
        Server::new(service, TcpListener::bind(addr)?)
    }

    /// The address the server listens on (the resolved port when bound
    /// to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.ctx.addr
    }

    /// A detached shutdown control.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            ctx: Arc::clone(&self.ctx),
        }
    }

    /// Serves connections until shutdown (wire `shutdown` op or
    /// [`ServerHandle::shutdown`]), then joins every connection thread
    /// and returns. The service is drained by then: every admitted
    /// request resolved and streamed its event.
    ///
    /// # Errors
    ///
    /// A fatal `accept` failure (address-level, not per-connection).
    pub fn run(self) -> io::Result<()> {
        let mut workers = Vec::new();
        let mut conn_id: u64 = 0;
        loop {
            let (stream, _peer) = match self.listener.accept() {
                Ok(conn) => conn,
                Err(e) => {
                    if self.ctx.shutting_down.load(Ordering::Acquire) {
                        break;
                    }
                    return Err(e);
                }
            };
            let id = conn_id;
            conn_id += 1;
            {
                // Register, then re-check the flag under the same lock
                // stop() flips it under: a racing stop() either sees this
                // entry in the registry or the re-check sees its flag and
                // winds the connection down here. See ServerCtx::stop.
                let mut conns = self.ctx.conns.lock().expect("connection registry poisoned");
                if self.ctx.shutting_down.load(Ordering::Acquire) {
                    // The wake-up connection (or a late client): refuse.
                    drop(conns);
                    drop(stream);
                    break;
                }
                if let Ok(clone) = stream.try_clone() {
                    conns.insert(id, clone);
                }
            }
            let ctx = Arc::clone(&self.ctx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cts-net-conn-{id}"))
                    .spawn(move || {
                        serve_connection(&ctx, stream);
                        ctx.conns
                            .lock()
                            .expect("connection registry poisoned")
                            .remove(&id);
                    })
                    .expect("spawning a connection thread"),
            );
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// A ticket adapted to the completion pump.
struct PendingTicket(Ticket);

impl PollPending for PendingTicket {
    type Output = Result<SynthesisResult, ServiceError>;
    fn poll_pending(&mut self) -> Option<Self::Output> {
        self.0.try_wait()
    }
}

/// Messages from the reader to the connection's completion pump.
enum PumpMsg {
    /// Track a freshly submitted ticket.
    Track(u64, Ticket),
    /// Track a sweep's tickets: `(expansion ordinal, request id, ticket)`
    /// per point, under the connection's sweep ordinal. The pump pushes a
    /// `sweep_progress` event after each point's result event and the
    /// terminal `pareto` event once every point resolved.
    TrackSweep {
        /// The per-connection sweep ordinal from the `submit_sweep`
        /// reply.
        sweep: u64,
        /// One entry per expanded point, in expansion order.
        points: Vec<(u64, u64, Ticket)>,
    },
}

/// The pump's accumulator for one in-flight sweep.
struct SweepAgg {
    /// Points resolved so far (any outcome).
    done: u64,
    /// Total points.
    total: u64,
    /// Completed points' objective rows, `(request id, row)` — kept
    /// sorted by expansion ordinal at emission so the `pareto` frame is
    /// byte-identical for every worker count and completion order.
    rows: Vec<(u64, ParetoPoint)>,
}

/// One completion's sweep bookkeeping: the `sweep_progress` frame, plus
/// the terminal `pareto` frame when this point was the sweep's last.
fn sweep_frames(
    sweeps: &mut HashMap<u64, SweepAgg>,
    members: &HashMap<u64, (u64, u64)>,
    id: u64,
    outcome: &Result<SynthesisResult, ServiceError>,
) -> Vec<Json> {
    let Some(&(sweep, ordinal)) = members.get(&id) else {
        return Vec::new();
    };
    let Some(agg) = sweeps.get_mut(&sweep) else {
        return Vec::new();
    };
    agg.done += 1;
    let label = match outcome {
        Ok(result) => {
            agg.rows
                .push((id, pareto_point(ordinal as usize, &result.item.result)));
            SweepPointOutcome::Completed
        }
        Err(ServiceError::Cancelled) => SweepPointOutcome::Cancelled,
        Err(ServiceError::Expired) => SweepPointOutcome::Expired,
        Err(_) => SweepPointOutcome::Failed,
    };
    let mut frames = vec![encode_sweep_progress(&SweepProgressEvent {
        sweep,
        done: agg.done,
        total: agg.total,
        id,
        outcome: label,
    })];
    if agg.done == agg.total {
        let mut agg = sweeps.remove(&sweep).expect("sweep aggregate vanished");
        // Expansion-ordinal order, not completion order: the frame's
        // bytes must not depend on worker scheduling.
        agg.rows.sort_by_key(|(_, row)| row.ordinal);
        let front = ParetoFront::from_points(agg.rows.iter().map(|&(_, row)| row));
        frames.push(encode_pareto_event(&ParetoEvent {
            sweep,
            total: agg.total,
            completed: agg.rows.len() as u64,
            points: agg
                .rows
                .iter()
                .map(|&(id, row)| ParetoWirePoint {
                    ordinal: row.ordinal as u64,
                    id,
                    skew: row.skew,
                    buffer_cap_f: row.buffer_cap,
                    latency: row.latency,
                })
                .collect(),
            front: front.front_ordinals().iter().map(|&o| o as u64).collect(),
        }));
    }
    frames
}

/// How often the pump sweeps its pending set when no control message
/// arrives. Bounds result-event latency; sweeps are cheap `try_recv`s.
const PUMP_SWEEP: Duration = Duration::from_millis(2);

/// How many completed results a connection retains for `fetch_tree`.
/// Bounded FIFO: once full, streaming the geometry of the oldest
/// completion stops being possible (`unknown_id`), which the protocol
/// documents — a client wanting the tree fetches it promptly.
const TREE_CACHE_CAP: usize = 64;

/// Companion bound in *nodes* across all retained trees, because entry
/// count alone is no memory bound at ISPD scale (~10⁵ nodes/tree). At
/// ~150 bytes a node this caps a connection's retained geometry around
/// 80 MB even if every completion is huge; eviction stays oldest-first.
const TREE_CACHE_NODE_CAP: usize = 512 * 1024;

/// Exactly what `fetch_tree` serves and nothing more — the result's
/// stats were already streamed in its event and are not retained, so a
/// connection pays for precisely the geometry it could still ask for.
struct RetainedTree {
    name: String,
    tree: cts_core::ClockTree,
    source: cts_core::TreeNodeId,
    level_stats: Vec<cts_core::LevelStats>,
}

/// Completed results retained per connection so a later `fetch_tree` can
/// stream the routed geometry. The pump inserts as requests complete;
/// the reader looks up on `fetch_tree`. Bounded by [`TREE_CACHE_CAP`]
/// (oldest evicted first).
#[derive(Default)]
struct TreeCache {
    map: HashMap<u64, RetainedTree>,
    order: VecDeque<u64>,
    /// Node total across every retained tree, against
    /// [`TREE_CACHE_NODE_CAP`].
    nodes: usize,
}

impl TreeCache {
    fn insert(&mut self, id: u64, retained: RetainedTree) {
        let incoming = retained.tree.len();
        while self.map.len() >= TREE_CACHE_CAP
            || (self.nodes + incoming > TREE_CACHE_NODE_CAP && !self.map.is_empty())
        {
            match self.order.pop_front() {
                Some(old) => {
                    if let Some(evicted) = self.map.remove(&old) {
                        self.nodes -= evicted.tree.len();
                    }
                }
                None => break,
            }
        }
        if let Some(previous) = self.map.insert(id, retained) {
            // Request ids are unique per service, so a same-id overwrite
            // cannot happen; keep the accounting correct regardless.
            self.nodes -= previous.tree.len();
        } else {
            self.order.push_back(id);
        }
        self.nodes += incoming;
    }

    fn get(&self, id: u64) -> Option<&RetainedTree> {
        self.map.get(&id)
    }
}

/// Encodes one resolution: parks a completed result's geometry in the
/// tree cache (for later `fetch_tree` streaming), then returns its
/// result event.
fn resolve_event(
    trees: &Mutex<TreeCache>,
    id: u64,
    outcome: Result<SynthesisResult, ServiceError>,
) -> Json {
    let event = ResultEvent {
        id,
        outcome: Outcome::from_service(&outcome),
    };
    let frame = encode_event(&event);
    if let Ok(result) = outcome {
        let retained = RetainedTree {
            name: result.item.name,
            tree: result.item.result.tree,
            source: result.item.result.source,
            level_stats: result.item.result.level_stats,
        };
        trees
            .lock()
            .expect("tree cache poisoned")
            .insert(id, retained);
    }
    frame
}

fn pump_loop(rx: Receiver<PumpMsg>, wtx: Sender<Json>, trees: Arc<Mutex<TreeCache>>) {
    let mut pump: CompletionPump<u64, PendingTicket> = CompletionPump::new();
    // Sweep bookkeeping: request id → (sweep ordinal, expansion ordinal),
    // and each sweep's accumulator. Completion order is the pump's
    // push-order poll, so `done` counters are deterministic per schedule.
    let mut members: HashMap<u64, (u64, u64)> = HashMap::new();
    let mut sweeps: HashMap<u64, SweepAgg> = HashMap::new();
    loop {
        match rx.recv_timeout(PUMP_SWEEP) {
            Ok(PumpMsg::Track(id, ticket)) => pump.push(id, PendingTicket(ticket)),
            Ok(PumpMsg::TrackSweep { sweep, points }) => {
                sweeps.insert(
                    sweep,
                    SweepAgg {
                        done: 0,
                        total: points.len() as u64,
                        rows: Vec::new(),
                    },
                );
                for (ordinal, id, ticket) in points {
                    members.insert(id, (sweep, ordinal));
                    pump.push(id, PendingTicket(ticket));
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        for (id, outcome) in pump.poll_completed() {
            // The point's sweep frames ride right behind its result
            // event, so a client that saw `done == total` (or `pareto`)
            // has every payload already.
            let extra = sweep_frames(&mut sweeps, &members, id, &outcome);
            if wtx.send(resolve_event(&trees, id, outcome)).is_err() {
                // Writer gone: nothing can reach the client anymore.
                break;
            }
            if extra.into_iter().any(|f| wtx.send(f).is_err()) {
                break;
            }
        }
    }
    // Reader gone (disconnect or shutdown). Flush what has already
    // resolved — the writer may still drain it — then cancel the rest:
    // a disconnected client's pending work must not keep burning the
    // service ("client disconnect mid-request → ticket cancelled").
    for (id, outcome) in pump.poll_completed() {
        let extra = sweep_frames(&mut sweeps, &members, id, &outcome);
        let _ = wtx.send(resolve_event(&trees, id, outcome));
        for f in extra {
            let _ = wtx.send(f);
        }
    }
    for (_, PendingTicket(ticket)) in pump.drain_pending() {
        ticket.cancel();
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Json>) {
    let mut w = BufWriter::new(stream);
    while let Ok(frame) = rx.recv() {
        if write_frame(&mut w, &frame)
            .and_then(|()| w.flush())
            .is_err()
        {
            // Connection dead; drain silently so senders never block.
            for _ in rx.iter() {}
            return;
        }
    }
}

/// Per-connection request state the reader keeps.
/// Handle-map size that triggers a prune of resolved entries, so a
/// long-lived connection streaming unbounded submissions does not grow
/// the reader's memory without bound.
const HANDLE_PRUNE_THRESHOLD: usize = 1024;

struct ConnState {
    /// Handles of this connection's requests, for `status`/`cancel` (the
    /// tickets themselves live in the pump). Pruned of resolved entries
    /// once it grows past [`HANDLE_PRUNE_THRESHOLD`]: the protocol lets
    /// the server forget an id after its result event, so `status`/
    /// `cancel` on a long-resolved id may answer `unknown_id`.
    handles: HashMap<u64, RequestHandle>,
    /// Default client id from `hello`, used when a submit has none.
    client_id: Option<String>,
    /// Completed results retained for `fetch_tree` (shared with the
    /// pump, which fills it).
    trees: Arc<Mutex<TreeCache>>,
    /// Next sweep ordinal for `submit_sweep` replies; per-connection,
    /// starting at 1 so `0` never aliases a real sweep in client code.
    next_sweep: u64,
}

impl ConnState {
    fn remember(&mut self, id: u64, handle: RequestHandle) {
        if self.handles.len() >= HANDLE_PRUNE_THRESHOLD {
            self.handles
                .retain(|_, h| h.status() != cts_core::RequestStatus::Done);
        }
        self.handles.insert(id, handle);
    }
}

fn serve_connection(ctx: &ServerCtx, stream: TcpStream) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (wtx, wrx) = channel::<Json>();
    let writer = std::thread::Builder::new()
        .name("cts-net-writer".into())
        .spawn(move || writer_loop(write_half, wrx))
        .expect("spawning a writer thread");
    let (ptx, prx) = channel::<PumpMsg>();
    let pump_wtx = wtx.clone();
    let trees = Arc::new(Mutex::new(TreeCache::default()));
    let pump_trees = Arc::clone(&trees);
    let pump = std::thread::Builder::new()
        .name("cts-net-pump".into())
        .spawn(move || pump_loop(prx, pump_wtx, pump_trees))
        .expect("spawning a pump thread");

    let mut state = ConnState {
        handles: HashMap::new(),
        client_id: None,
        trees,
        next_sweep: 1,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Err(_) | Ok(None) => break, // transport over
            Ok(Some(Err(json_err))) => {
                // Malformed JSON on an intact line: structured error
                // reply, connection survives.
                let reply = Response::Error {
                    code: ErrorCode::BadJson,
                    message: json_err.to_string(),
                };
                if wtx.send(encode_response(None, &reply)).is_err() {
                    break;
                }
            }
            Ok(Some(Ok(frame))) => {
                let stop = handle_frame(ctx, &mut state, &frame, &wtx, &ptx);
                if stop {
                    break;
                }
            }
        }
    }
    // Teardown: dropping the pump sender makes the pump flush resolved
    // results and cancel pending ones; dropping the writer sender (after
    // the pump's) lets the writer drain every queued frame first.
    drop(ptx);
    let _ = pump.join();
    drop(wtx);
    let _ = writer.join();
}

/// Handles one decoded frame; returns `true` when the connection should
/// close (after a `shutdown` op).
fn handle_frame(
    ctx: &ServerCtx,
    state: &mut ConnState,
    frame: &Json,
    wtx: &Sender<Json>,
    ptx: &Sender<PumpMsg>,
) -> bool {
    // `seq` is extracted even when decoding fails, so error replies
    // correlate whenever the client gave us anything to correlate with.
    let seq = frame.get("seq").and_then(Json::as_u64);
    let (seq, request) = match decode_request(frame) {
        Ok(decoded) => decoded,
        Err(DecodeError { code, message }) => {
            let _ = wtx.send(encode_response(seq, &Response::Error { code, message }));
            return false;
        }
    };
    let _span = cts_obs::span_with(&SPAN_HANDLE_FRAME, seq);
    let reply = match request {
        Request::Hello { version, client_id } => {
            if version != PROTOCOL_VERSION {
                Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    message: format!(
                        "server speaks version {PROTOCOL_VERSION}, client asked for {version}"
                    ),
                }
            } else {
                state.client_id = client_id;
                Response::Hello {
                    version: PROTOCOL_VERSION,
                    server: server_ident(),
                    workers: ctx.service.workers() as u64,
                }
            }
        }
        Request::Submit {
            instance,
            options,
            priority,
            deadline_ms,
            client_id,
            publish_levels,
        } => {
            let mut req = SynthesisRequest::new(instance)
                .with_priority(priority)
                .with_publish_levels(publish_levels);
            if let Some(ms) = deadline_ms {
                req = req.with_deadline(Duration::from_millis(ms));
            }
            if !options.is_empty() {
                req = req.with_options(options.apply(ctx.service.options()));
            }
            if let Some(c) = client_id.or_else(|| state.client_id.clone()) {
                req = req.with_client_id(c);
            }
            // Blocking submit: a full queue back-pressures this
            // connection's reader (the client sees its next reply delayed
            // — flow control, not failure).
            match ctx.service.submit(req) {
                Ok(ticket) => {
                    let id = ticket.id().0;
                    state.remember(id, ticket.handle());
                    // The pump cannot be gone while the reader lives.
                    let _ = ptx.send(PumpMsg::Track(id, ticket));
                    Response::Submitted { id }
                }
                Err(SubmitError::ShuttingDown(_)) => Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "service is draining; no new work admitted".into(),
                },
                Err(e @ SubmitError::WouldBlock(_)) => {
                    unreachable!("blocking submit cannot report back-pressure: {e}")
                }
            }
        }
        Request::SubmitBatch { entries, options } => {
            // The shared patch is applied once; every entry runs the same
            // patched options (per-entry scheduling stays individual).
            let patched = (!options.is_empty()).then(|| options.apply(ctx.service.options()));
            let requests: Vec<SynthesisRequest> = entries
                .into_iter()
                .map(|entry| {
                    let mut req = SynthesisRequest::new(entry.instance)
                        .with_priority(entry.priority)
                        .with_publish_levels(entry.publish_levels);
                    if let Some(ms) = entry.deadline_ms {
                        req = req.with_deadline(Duration::from_millis(ms));
                    }
                    if let Some(o) = &patched {
                        req = req.with_options(o.clone());
                    }
                    if let Some(c) = entry.client_id.or_else(|| state.client_id.clone()) {
                        req = req.with_client_id(c);
                    }
                    req
                })
                .collect();
            // Blocking, atomic: either every entry is admitted under one
            // queue lock (consecutive ids, nothing interleaves) or none
            // is. A full queue back-pressures this reader, like `submit`.
            match ctx.service.submit_batch(requests) {
                Ok(tickets) => {
                    let ids: Vec<u64> = tickets.iter().map(|t| t.id().0).collect();
                    for ticket in tickets {
                        let id = ticket.id().0;
                        state.remember(id, ticket.handle());
                        let _ = ptx.send(PumpMsg::Track(id, ticket));
                    }
                    Response::BatchSubmitted { ids }
                }
                Err(e @ BatchSubmitError::TooLarge(_)) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                },
                Err(BatchSubmitError::ShuttingDown(_)) => Response::Error {
                    code: ErrorCode::ShuttingDown,
                    message: "service is draining; no new work admitted".into(),
                },
                Err(e @ BatchSubmitError::WouldBlock(_)) => {
                    unreachable!("blocking batch submit cannot report back-pressure: {e}")
                }
            }
        }
        Request::SubmitSweep {
            instance,
            base,
            range,
            priority,
            deadline_ms,
            client_id,
            publish_levels,
        } => {
            // The base patch applies over the server defaults exactly as
            // a `submit` patch would, and each point perturbs that base
            // through the same conversions — the invariant that a swept
            // point's tree is byte-identical to the same options
            // submitted individually.
            let base_options = base.apply(ctx.service.options());
            let spec = match range {
                SweepRange::Axes(axes) => SweepSpec::cartesian(base_options, axes.to_axes()),
                SweepRange::Points(points) => {
                    SweepSpec::explicit(base_options, points.iter().map(|p| p.to_point()).collect())
                }
            };
            let mut template = SynthesisRequest::new(instance)
                .with_priority(priority)
                .with_publish_levels(publish_levels);
            if let Some(ms) = deadline_ms {
                template = template.with_deadline(Duration::from_millis(ms));
            }
            if let Some(c) = client_id.or_else(|| state.client_id.clone()) {
                template = template.with_client_id(c);
            }
            // Blocking, atomic admission (the sweep rides submit_batch
            // underneath): a full queue back-pressures this reader.
            match ctx.service.submit_sweep(template, &spec) {
                Ok(sweep_ticket) => {
                    let sweep = state.next_sweep;
                    state.next_sweep += 1;
                    let tickets = sweep_ticket.into_tickets();
                    let ids: Vec<u64> = tickets.iter().map(|t| t.id().0).collect();
                    let mut points = Vec::with_capacity(tickets.len());
                    for (ordinal, ticket) in tickets.into_iter().enumerate() {
                        let id = ticket.id().0;
                        state.remember(id, ticket.handle());
                        points.push((ordinal as u64, id, ticket));
                    }
                    let _ = ptx.send(PumpMsg::TrackSweep { sweep, points });
                    Response::SweepSubmitted { sweep, ids }
                }
                Err(e @ SweepSubmitError::Spec(_)) => Response::Error {
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                },
                Err(e @ SweepSubmitError::Batch(BatchSubmitError::TooLarge(_))) => {
                    Response::Error {
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    }
                }
                Err(SweepSubmitError::Batch(BatchSubmitError::ShuttingDown(_))) => {
                    Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "service is draining; no new work admitted".into(),
                    }
                }
                Err(e @ SweepSubmitError::Batch(BatchSubmitError::WouldBlock(_))) => {
                    unreachable!("blocking sweep submit cannot report back-pressure: {e}")
                }
            }
        }
        Request::FetchTree { id, chunk, levels } => {
            // Snapshot the tree under the cache lock (held only for the
            // clone, so the pump — which inserts completions under the
            // same lock — is never stalled behind a large serialization),
            // then encode and send the stream frame by frame: header
            // reply, chunk events, terminal event. Only one chunk's JSON
            // is in flight at a time on this side of the writer queue.
            let snapshot = {
                let trees = state.trees.lock().expect("tree cache poisoned");
                trees.get(id).map(|retained| {
                    (
                        retained.name.clone(),
                        retained.tree.clone(),
                        retained.source,
                        retained.level_stats.clone(),
                    )
                })
            };
            // Clamp: decode already rejects 0, and anything above
            // MAX_TREE_CHUNK could serialize past the reader-side
            // 8 MiB frame cap — a fatal transport error for the
            // requesting client, which a size request must never
            // cause.
            let chunk_size = chunk
                .map_or(DEFAULT_TREE_CHUNK, |c| c as usize)
                .min(MAX_TREE_CHUNK);
            match snapshot {
                Some((name, tree, source, level_stats)) => {
                    let nodes = tree.nodes();
                    // Level mode aligns chunk boundaries with the
                    // completed-level watermarks recorded per level, so a
                    // consumer can hand each level off (e.g. to a
                    // verifier) as its last chunk arrives.
                    let runs = if levels {
                        let watermarks: Vec<usize> =
                            level_stats.iter().map(|s| s.nodes_total).collect();
                        level_chunk_runs(nodes.len(), &watermarks, chunk_size)
                    } else {
                        level_chunk_runs(nodes.len(), &[], chunk_size)
                    };
                    let header = Response::TreeHeader(TreeInfo::complete(
                        id,
                        name,
                        nodes.len() as u64,
                        runs.len() as u64,
                        source.index() as u64,
                    ));
                    let send = |frame: Json| wtx.send(frame).is_ok();
                    if send(encode_response(Some(seq), &header)) {
                        for (k, &(start, end)) in runs.iter().enumerate() {
                            if !send(encode_tree_chunk(&TreeChunkEvent {
                                id,
                                chunk: k as u64,
                                nodes: nodes[start..end].to_vec(),
                            })) {
                                break;
                            }
                        }
                        let _ = send(encode_tree_done(&TreeDoneEvent { id, level_stats }));
                    }
                    return false;
                }
                // Level mode on a request still in flight streams the
                // latest level-complete snapshot as a *partial* header —
                // a watcher polls this while the tree grows. A request
                // that published nothing yet (or does not publish)
                // streams an empty partial, never an error.
                None if levels => match state.handles.get(&id) {
                    Some(handle) if handle.status() != cts_core::RequestStatus::Done => {
                        let snap = handle.level_snapshot();
                        let (nodes, levels_done) = match &snap {
                            Some(s) => (s.nodes.as_slice(), s.levels_done as u64),
                            None => (&[][..], 0),
                        };
                        let runs = level_chunk_runs(nodes.len(), &[], chunk_size);
                        let header = Response::TreeHeader(TreeInfo {
                            id,
                            name: String::new(),
                            nodes: nodes.len() as u64,
                            chunks: runs.len() as u64,
                            source: 0,
                            partial: true,
                            levels_done,
                        });
                        let send = |frame: Json| wtx.send(frame).is_ok();
                        if send(encode_response(Some(seq), &header)) {
                            for (k, &(start, end)) in runs.iter().enumerate() {
                                if !send(encode_tree_chunk(&TreeChunkEvent {
                                    id,
                                    chunk: k as u64,
                                    nodes: nodes[start..end].to_vec(),
                                })) {
                                    break;
                                }
                            }
                            let _ = send(encode_tree_done(&TreeDoneEvent {
                                id,
                                level_stats: Vec::new(),
                            }));
                        }
                        return false;
                    }
                    _ => Response::Error {
                        code: ErrorCode::UnknownId,
                        message: format!(
                            "no completed result retained for request {id} on this connection"
                        ),
                    },
                },
                None => Response::Error {
                    code: ErrorCode::UnknownId,
                    message: format!(
                        "no completed result retained for request {id} on this connection"
                    ),
                },
            }
        }
        Request::Status { id } => match state.handles.get(&id) {
            Some(handle) => Response::Status {
                id,
                state: handle.status(),
            },
            None => unknown_id(id),
        },
        Request::Cancel { id } => match state.handles.get(&id) {
            Some(handle) => {
                handle.cancel();
                Response::Cancelled { id }
            }
            None => unknown_id(id),
        },
        Request::Metrics => Response::Metrics(MetricsReply {
            metrics: ctx.service.metrics(),
            workers: ctx.service.workers() as u64,
        }),
        Request::Stats => {
            let latencies = ctx.service.stats();
            // Span summaries come from the process-global recorder; a
            // server running without tracing answers with an empty list
            // (and `dropped: 0`), keeping the frame deterministic.
            let (spans, dropped) = match cts_obs::Recorder::global() {
                Some(recorder) => {
                    recorder.collect();
                    let spans = recorder
                        .summaries()
                        .into_iter()
                        .map(|s| SpanStat {
                            name: s.name.to_string(),
                            durations: s.durations,
                        })
                        .collect();
                    (spans, recorder.dropped())
                }
                None => (Vec::new(), 0),
            };
            Response::Stats(Box::new(StatsReply {
                workers: ctx.service.workers() as u64,
                metrics: ctx.service.metrics(),
                queue_wait: latencies.queue_wait_by_priority,
                synth_latency: latencies.synth_latency,
                verify_latency: latencies.verify_latency,
                spans,
                dropped,
            }))
        }
        Request::Shutdown => {
            // Drain first: every admitted request (this connection's and
            // everyone else's) resolves and streams its event before the
            // shutdown reply confirms completion.
            ctx.drain();
            let _ = wtx.send(encode_response(Some(seq), &Response::ShuttingDown));
            ctx.stop();
            return true;
        }
    };
    let _ = wtx.send(encode_response(Some(seq), &reply));
    false
}

/// Splits `total` nodes into `(start, end)` chunk runs. `watermarks` are
/// hard boundaries no run may straddle (the per-level arena lengths in
/// level mode; empty for plain node mode); runs longer than `cap` are
/// sub-split. With no watermarks this degenerates to the classic uniform
/// `total.div_ceil(cap)` split, so node-mode streams are byte-identical
/// to the pre-level-mode wire format.
fn level_chunk_runs(total: usize, watermarks: &[usize], cap: usize) -> Vec<(usize, usize)> {
    let mut cuts: Vec<usize> = watermarks
        .iter()
        .copied()
        .filter(|&w| w > 0 && w < total)
        .collect();
    cuts.push(total);
    cuts.sort_unstable();
    cuts.dedup();
    let mut runs = Vec::new();
    let mut start = 0usize;
    for cut in cuts {
        while start < cut {
            let end = (start + cap).min(cut);
            runs.push((start, end));
            start = end;
        }
    }
    runs
}

fn unknown_id(id: u64) -> Response {
    Response::Error {
        code: ErrorCode::UnknownId,
        message: format!("request {id} was not submitted on this connection"),
    }
}
