//! The versioned request/response protocol spoken over the framing.
//!
//! Message taxonomy (see `docs/PROTOCOL.md` for the wire-level spec and
//! transcripts):
//!
//! * **Requests** ([`Request`]) — client → server, each carrying a
//!   client-chosen `seq` echoed on its reply: `hello`, `submit`,
//!   `status`, `cancel`, `metrics`, `stats`, `shutdown`.
//! * **Replies** ([`Response`]) — server → client, exactly one per
//!   request, `"seq"`-correlated; errors are structured
//!   ([`Response::Error`] with an [`ErrorCode`]) and never kill the
//!   connection unless the transport itself is broken.
//! * **Events** ([`ResultEvent`]) — server → client, pushed (not
//!   replied) when a submitted request resolves; marked
//!   `"event":true` and correlated by request id, not `seq`.
//!
//! Everything here is plain data + conversions to/from [`Json`]; no I/O.

use crate::json::Json;
use cts_core::{
    Buffering, ClockTree, CtsOptions, DistStats, HCorrection, Instance, LevelStats, NodeKind,
    ParetoFront, ParetoPoint, RequestStatus, ServiceError, ServiceMetrics, Sink, SweepAxes,
    SweepPoint, SynthesisResult, TreeNode, TreeNodeId, VariationMode, VariationSummary,
};
use cts_geom::{Point, Rect};
use cts_obs::Histogram;
use cts_timing::BufferId;
use std::fmt;

/// The protocol version this crate speaks. A server rejects a `hello`
/// carrying a different version with [`ErrorCode::UnsupportedVersion`];
/// see `docs/PROTOCOL.md` for the compatibility rules.
///
/// Version **2** added batch-frame submission (`submit_batch`) and
/// routed-geometry streaming (`fetch_tree` + chunked `tree` events) —
/// a shape change to the event taxonomy (events are no longer all
/// `result` frames), so v1 clients are rejected at `hello` rather than
/// left hanging on frames they cannot route.
pub const PROTOCOL_VERSION: u64 = 2;

/// Default node count per `tree` chunk event when `fetch_tree` does not
/// set one. At ~120 bytes a node this keeps chunk frames around 60 KiB —
/// far under the 8 MiB frame cap, large enough that even ISPD-scale
/// trees stream in a few dozen frames.
pub const DEFAULT_TREE_CHUNK: usize = 512;

/// Upper bound the server clamps a requested `fetch_tree` chunk size
/// to. 8192 nodes × ~150 bytes of JSON ≈ 1.2 MiB per frame — safely
/// under the 8 MiB frame cap that the *reader* side treats as a fatal
/// transport error, so no legal chunk request can produce a frame the
/// client must kill the connection over.
pub const MAX_TREE_CHUNK: usize = 8192;

/// Structured error codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame was not valid JSON (reply to an undecodable frame;
    /// `seq` is null).
    BadJson,
    /// The frame was JSON but not a valid request (unknown op, missing
    /// or mistyped field, invalid instance spec).
    BadRequest,
    /// `hello` named a protocol version this server does not speak.
    UnsupportedVersion,
    /// `status`/`cancel` named a request id this connection never
    /// submitted.
    UnknownId,
    /// The service is draining; no new work is admitted.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownId => "unknown_id",
            ErrorCode::ShuttingDown => "shutting_down",
        }
    }

    /// Parses the wire spelling. (Named `from_wire`, not `from_str`, to
    /// avoid colliding with the `FromStr` trait method.)
    pub fn from_wire(s: &str) -> Option<ErrorCode> {
        Some(match s {
            "bad_json" => ErrorCode::BadJson,
            "bad_request" => ErrorCode::BadRequest,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "unknown_id" => ErrorCode::UnknownId,
            "shutting_down" => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A decode failure, mapped to the error reply the server should send.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeError {
    /// The structured code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl DecodeError {
    fn bad(message: impl Into<String>) -> DecodeError {
        DecodeError {
            code: ErrorCode::BadRequest,
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Instance spec

/// Serializes an instance as the protocol's instance spec:
/// `{"name", "die":[x0,y0,x1,y1], "sinks":[{"name","x","y","cap_f"},…]}`
/// with coordinates in µm and capacitance in **farads**. Unlike the
/// bookshelf dialect's fF column, the wire carries farads directly: a
/// unit conversion is two float roundings, and the protocol's contract
/// is that instances (and therefore results) cross the socket
/// byte-identically.
pub fn instance_to_json(instance: &Instance) -> Json {
    let die = instance.die();
    Json::obj(vec![
        ("name", Json::str(instance.name())),
        (
            "die",
            Json::arr(vec![
                Json::num(die.lo().x),
                Json::num(die.lo().y),
                Json::num(die.hi().x),
                Json::num(die.hi().y),
            ]),
        ),
        (
            "sinks",
            Json::arr(
                instance
                    .sinks()
                    .iter()
                    .map(|s| {
                        Json::obj(vec![
                            ("name", Json::str(&s.name)),
                            ("x", Json::num(s.location.x)),
                            ("y", Json::num(s.location.y)),
                            ("cap_f", Json::num(s.cap)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses an instance spec, validating everything `Instance`'s
/// constructors would otherwise panic on: at least one sink, finite
/// coordinates, non-negative finite capacitance, and (when a die is
/// given) every sink inside it. `die` is optional — absent, the die is
/// the sink bounding box.
///
/// # Errors
///
/// [`ErrorCode::BadRequest`] with a description of the first problem.
pub fn instance_from_json(j: &Json) -> Result<Instance, DecodeError> {
    let name = j
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| DecodeError::bad("instance needs a string 'name'"))?;
    let sinks_json = j
        .get("sinks")
        .and_then(Json::as_arr)
        .ok_or_else(|| DecodeError::bad("instance needs a 'sinks' array"))?;
    if sinks_json.is_empty() {
        return Err(DecodeError::bad("instance needs at least one sink"));
    }
    let mut sinks = Vec::with_capacity(sinks_json.len());
    for (i, s) in sinks_json.iter().enumerate() {
        let field = |key: &str| {
            s.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| DecodeError::bad(format!("sink {i} needs a number '{key}'")))
        };
        let sname = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| DecodeError::bad(format!("sink {i} needs a string 'name'")))?;
        let (x, y, cap) = (field("x")?, field("y")?, field("cap_f")?);
        if !(x.is_finite() && y.is_finite()) {
            return Err(DecodeError::bad(format!("sink {i} location is not finite")));
        }
        if !(cap >= 0.0 && cap.is_finite()) {
            return Err(DecodeError::bad(format!(
                "sink {i} capacitance {cap} F is invalid"
            )));
        }
        sinks.push(Sink::new(sname, Point::new(x, y), cap));
    }
    match j.get("die") {
        None | Some(Json::Null) => Ok(Instance::new(name, sinks)),
        Some(die) => {
            let corners = die
                .as_arr()
                .filter(|a| a.len() == 4)
                .and_then(|a| a.iter().map(Json::as_f64).collect::<Option<Vec<f64>>>())
                .filter(|c| c.iter().all(|v| v.is_finite()))
                .ok_or_else(|| {
                    DecodeError::bad("'die' must be [x0, y0, x1, y1] with finite numbers")
                })?;
            let rect = Rect::from_corners(
                Point::new(corners[0], corners[1]),
                Point::new(corners[2], corners[3]),
            );
            for s in &sinks {
                if !rect.contains(s.location) {
                    return Err(DecodeError::bad(format!(
                        "sink {} lies outside the die",
                        s.name
                    )));
                }
            }
            Ok(Instance::with_die(name, sinks, rect))
        }
    }
}

// ---------------------------------------------------------------------------
// Options patch

/// The wire spelling of an [`HCorrection`] mode.
fn h_correction_str(h: HCorrection) -> &'static str {
    match h {
        HCorrection::Off => "off",
        HCorrection::ReEstimate => "re_estimate",
        HCorrection::Correct => "correct",
    }
}

fn h_correction_from_json(value: &Json, key: &str) -> Result<HCorrection, DecodeError> {
    match value.as_str() {
        Some("off") => Ok(HCorrection::Off),
        Some("re_estimate") => Ok(HCorrection::ReEstimate),
        Some("correct") => Ok(HCorrection::Correct),
        _ => Err(DecodeError::bad(format!(
            "'{key}' must be \"off\", \"re_estimate\", or \"correct\""
        ))),
    }
}

/// The wire spelling of a [`Buffering`] strategy.
fn buffering_str(b: Buffering) -> &'static str {
    match b {
        Buffering::Greedy => "greedy",
        Buffering::VanGinneken => "van_ginneken",
    }
}

fn buffering_from_json(value: &Json, key: &str) -> Result<Buffering, DecodeError> {
    match value.as_str() {
        Some("greedy") => Ok(Buffering::Greedy),
        Some("van_ginneken") => Ok(Buffering::VanGinneken),
        _ => Err(DecodeError::bad(format!(
            "'{key}' must be \"greedy\" or \"van_ginneken\""
        ))),
    }
}

/// The `submit` op's [`CtsOptions`] subset: every field optional, applied
/// over the server's base options. Times travel in picoseconds on the
/// wire (`slew_*_ps`), matching how the paper quotes them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OptionsPatch {
    /// Overrides [`CtsOptions::slew_limit`] (ps).
    pub slew_limit_ps: Option<f64>,
    /// Overrides [`CtsOptions::slew_target`] (ps).
    pub slew_target_ps: Option<f64>,
    /// Overrides [`CtsOptions::grid_resolution`].
    pub grid_resolution: Option<u32>,
    /// Overrides [`CtsOptions::h_correction`].
    pub h_correction: Option<HCorrection>,
    /// Overrides [`CtsOptions::threads`] (per-request merge parallelism).
    pub threads: Option<usize>,
    /// Overrides [`CtsOptions::buffering`] (greedy vs van Ginneken).
    pub buffering: Option<Buffering>,
    /// Overrides [`CtsOptions::library_subset`] (buffer-library prefix
    /// size; `0` = full library).
    pub library_subset: Option<usize>,
    /// Overrides the variation corner count
    /// (`CtsOptions::variation.corners`); `0` turns the axis off.
    pub variation_corners: Option<usize>,
    /// Overrides the variation stream seed (`variation.seed`).
    pub variation_seed: Option<u64>,
    /// Overrides `variation.sigma_buffer` (relative half-width).
    pub variation_sigma_buffer: Option<f64>,
    /// Overrides `variation.sigma_wire`.
    pub variation_sigma_wire: Option<f64>,
    /// Overrides `variation.sigma_slew`.
    pub variation_sigma_slew: Option<f64>,
    /// Overrides `variation.mode` (evaluate vs resynthesize).
    pub variation_mode: Option<VariationMode>,
}

impl OptionsPatch {
    /// Whether no field is set (the request runs on the server's base
    /// options, with no per-request override object allocated).
    pub fn is_empty(&self) -> bool {
        *self == OptionsPatch::default()
    }

    /// The patched options: `base` with every set field replaced.
    pub fn apply(&self, base: &CtsOptions) -> CtsOptions {
        let mut o = base.clone();
        if let Some(ps) = self.slew_limit_ps {
            o.slew_limit = ps * 1e-12;
        }
        if let Some(ps) = self.slew_target_ps {
            o.slew_target = ps * 1e-12;
        }
        if let Some(r) = self.grid_resolution {
            o.grid_resolution = r;
        }
        if let Some(h) = self.h_correction {
            o.h_correction = h;
        }
        if let Some(t) = self.threads {
            o.threads = t;
        }
        if let Some(b) = self.buffering {
            o.buffering = b;
        }
        if let Some(k) = self.library_subset {
            o.library_subset = k;
        }
        if let Some(n) = self.variation_corners {
            o.variation.corners = n;
        }
        if let Some(s) = self.variation_seed {
            o.variation.seed = s;
        }
        if let Some(v) = self.variation_sigma_buffer {
            o.variation.sigma_buffer = v;
        }
        if let Some(v) = self.variation_sigma_wire {
            o.variation.sigma_wire = v;
        }
        if let Some(v) = self.variation_sigma_slew {
            o.variation.sigma_slew = v;
        }
        if let Some(m) = self.variation_mode {
            o.variation.mode = m;
        }
        o
    }

    /// Serializes only the set fields.
    pub fn to_json(&self) -> Json {
        let mut fields = Vec::new();
        if let Some(v) = self.slew_limit_ps {
            fields.push(("slew_limit_ps", Json::num(v)));
        }
        if let Some(v) = self.slew_target_ps {
            fields.push(("slew_target_ps", Json::num(v)));
        }
        if let Some(v) = self.grid_resolution {
            fields.push(("grid_resolution", Json::num(v as f64)));
        }
        if let Some(h) = self.h_correction {
            fields.push(("h_correction", Json::str(h_correction_str(h))));
        }
        if let Some(t) = self.threads {
            fields.push(("threads", Json::num(t as f64)));
        }
        if let Some(b) = self.buffering {
            fields.push(("buffering", Json::str(buffering_str(b))));
        }
        if let Some(k) = self.library_subset {
            fields.push(("library_subset", Json::num(k as f64)));
        }
        if let Some(n) = self.variation_corners {
            fields.push(("variation_corners", Json::num(n as f64)));
        }
        if let Some(s) = self.variation_seed {
            fields.push(("variation_seed", Json::num(s as f64)));
        }
        if let Some(v) = self.variation_sigma_buffer {
            fields.push(("variation_sigma_buffer", Json::num(v)));
        }
        if let Some(v) = self.variation_sigma_wire {
            fields.push(("variation_sigma_wire", Json::num(v)));
        }
        if let Some(v) = self.variation_sigma_slew {
            fields.push(("variation_sigma_slew", Json::num(v)));
        }
        if let Some(m) = self.variation_mode {
            let s = match m {
                VariationMode::Evaluate => "evaluate",
                VariationMode::Resynthesize => "resynthesize",
            };
            fields.push(("variation_mode", Json::str(s)));
        }
        Json::obj(fields)
    }

    /// Parses a patch object; unknown keys are rejected so a typo fails
    /// loudly instead of silently running on defaults.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::BadRequest`] naming the offending key.
    pub fn from_json(j: &Json) -> Result<OptionsPatch, DecodeError> {
        let fields = j
            .as_obj()
            .ok_or_else(|| DecodeError::bad("'options' must be an object"))?;
        let mut patch = OptionsPatch::default();
        for (key, value) in fields {
            match key.as_str() {
                "slew_limit_ps" => {
                    patch.slew_limit_ps = Some(
                        value
                            .as_f64()
                            .ok_or_else(|| DecodeError::bad("'slew_limit_ps' must be a number"))?,
                    )
                }
                "slew_target_ps" => {
                    patch.slew_target_ps = Some(
                        value
                            .as_f64()
                            .ok_or_else(|| DecodeError::bad("'slew_target_ps' must be a number"))?,
                    )
                }
                "grid_resolution" => {
                    let n = value
                        .as_u64()
                        .filter(|&n| n <= u32::MAX as u64)
                        .ok_or_else(|| {
                            DecodeError::bad("'grid_resolution' must be a small integer")
                        })?;
                    patch.grid_resolution = Some(n as u32);
                }
                "h_correction" => {
                    patch.h_correction = Some(h_correction_from_json(value, "h_correction")?)
                }
                "threads" => {
                    let n = value
                        .as_u64()
                        .ok_or_else(|| DecodeError::bad("'threads' must be an integer"))?;
                    patch.threads = Some(n as usize);
                }
                "buffering" => patch.buffering = Some(buffering_from_json(value, "buffering")?),
                "library_subset" => {
                    let k = value
                        .as_u64()
                        .ok_or_else(|| DecodeError::bad("'library_subset' must be an integer"))?;
                    patch.library_subset = Some(k as usize);
                }
                "variation_corners" => {
                    let n = value.as_u64().ok_or_else(|| {
                        DecodeError::bad("'variation_corners' must be an integer")
                    })?;
                    patch.variation_corners = Some(n as usize);
                }
                "variation_seed" => {
                    // JSON numbers are doubles: seeds are exact up to 2^53,
                    // which as_u64 enforces.
                    let s = value
                        .as_u64()
                        .ok_or_else(|| DecodeError::bad("'variation_seed' must be an integer"))?;
                    patch.variation_seed = Some(s);
                }
                "variation_sigma_buffer" => {
                    patch.variation_sigma_buffer = Some(value.as_f64().ok_or_else(|| {
                        DecodeError::bad("'variation_sigma_buffer' must be a number")
                    })?);
                }
                "variation_sigma_wire" => {
                    patch.variation_sigma_wire = Some(value.as_f64().ok_or_else(|| {
                        DecodeError::bad("'variation_sigma_wire' must be a number")
                    })?);
                }
                "variation_sigma_slew" => {
                    patch.variation_sigma_slew = Some(value.as_f64().ok_or_else(|| {
                        DecodeError::bad("'variation_sigma_slew' must be a number")
                    })?);
                }
                "variation_mode" => {
                    patch.variation_mode = Some(match value.as_str() {
                        Some("evaluate") => VariationMode::Evaluate,
                        Some("resynthesize") => VariationMode::Resynthesize,
                        _ => {
                            return Err(DecodeError::bad(
                                "'variation_mode' must be \"evaluate\" or \"resynthesize\"",
                            ))
                        }
                    })
                }
                other => return Err(DecodeError::bad(format!("unknown options key '{other}'"))),
            }
        }
        Ok(patch)
    }
}

// ---------------------------------------------------------------------------
// Routed tree geometry

/// Serializes one tree node as its wire object. The node's id is its
/// position in the streamed sequence (ids are dense arena indices), so
/// only the links are explicit: `parent` (omitted for roots) and the
/// `children` array, whose **order** is preserved — child order is part
/// of the arena's identity and byte-identical round-trips depend on it.
fn tree_node_to_json(node: &TreeNode) -> Json {
    let mut fields = Vec::with_capacity(8);
    match node.kind {
        NodeKind::Source { driver } => {
            fields.push(("kind", Json::str("source")));
            fields.push(("driver", Json::num(driver.0 as f64)));
        }
        NodeKind::Sink { index, cap } => {
            fields.push(("kind", Json::str("sink")));
            fields.push(("index", Json::num(index as f64)));
            fields.push(("cap_f", Json::num(cap)));
        }
        NodeKind::Joint => fields.push(("kind", Json::str("joint"))),
        NodeKind::Buffer { buffer } => {
            fields.push(("kind", Json::str("buffer")));
            fields.push(("cell", Json::num(buffer.0 as f64)));
        }
    }
    fields.push(("x", Json::num(node.location.x)));
    fields.push(("y", Json::num(node.location.y)));
    if let Some(p) = node.parent {
        fields.push(("parent", Json::num(p.index() as f64)));
        fields.push(("wire_um", Json::num(node.wire_to_parent_um)));
    }
    fields.push((
        "children",
        Json::arr(
            node.children
                .iter()
                .map(|c| Json::num(c.index() as f64))
                .collect(),
        ),
    ));
    Json::obj(fields)
}

/// Parses one tree node. Link targets are taken verbatim (as indices
/// into the full streamed sequence); structural validation happens once,
/// over the whole tree, in [`ClockTree::from_nodes`].
fn tree_node_from_json(j: &Json) -> Result<TreeNode, String> {
    let idx = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("tree node needs an integer '{key}'"))
    };
    let num = |key: &str| {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("tree node needs a number '{key}'"))
    };
    let kind = match j.get("kind").and_then(Json::as_str) {
        Some("source") => NodeKind::Source {
            driver: BufferId(idx("driver")?),
        },
        Some("sink") => NodeKind::Sink {
            index: idx("index")?,
            cap: num("cap_f")?,
        },
        Some("joint") => NodeKind::Joint,
        Some("buffer") => NodeKind::Buffer {
            buffer: BufferId(idx("cell")?),
        },
        _ => return Err("tree node needs a valid 'kind'".into()),
    };
    let parent = match j.get("parent") {
        None | Some(Json::Null) => None,
        Some(p) => Some(TreeNodeId::from_index(
            p.as_u64().ok_or("'parent' must be an integer")? as usize,
        )),
    };
    let wire_to_parent_um = if parent.is_some() {
        num("wire_um")?
    } else {
        0.0
    };
    let children = j
        .get("children")
        .and_then(Json::as_arr)
        .ok_or("tree node needs a 'children' array")?
        .iter()
        .map(|c| c.as_u64().map(|n| TreeNodeId::from_index(n as usize)))
        .collect::<Option<Vec<_>>>()
        .ok_or("'children' must be integers")?;
    Ok(TreeNode {
        kind,
        location: Point::new(num("x")?, num("y")?),
        parent,
        wire_to_parent_um,
        children,
    })
}

fn level_stats_to_json(s: &LevelStats) -> Json {
    Json::obj(vec![
        ("level", Json::num(s.level as f64)),
        ("pairs", Json::num(s.pairs as f64)),
        ("seed_promoted", Json::Bool(s.seed_promoted)),
        ("flippings", Json::num(s.flippings as f64)),
        ("buffers_inserted", Json::num(s.buffers_inserted as f64)),
        ("worst_skew_estimate", Json::num(s.worst_skew_estimate)),
        ("max_latency_estimate", Json::num(s.max_latency_estimate)),
        ("nodes_total", Json::num(s.nodes_total as f64)),
    ])
}

fn level_stats_from_json(j: &Json) -> Result<LevelStats, String> {
    let int = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| format!("level stats need an integer '{key}'"))
    };
    let num = |key: &str| {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("level stats need a number '{key}'"))
    };
    Ok(LevelStats {
        level: int("level")?,
        pairs: int("pairs")?,
        seed_promoted: j
            .get("seed_promoted")
            .and_then(Json::as_bool)
            .ok_or("level stats need a boolean 'seed_promoted'")?,
        flippings: int("flippings")?,
        buffers_inserted: int("buffers_inserted")?,
        worst_skew_estimate: num("worst_skew_estimate")?,
        max_latency_estimate: num("max_latency_estimate")?,
        // Additive key (level-granular streaming revision): absent on
        // older servers, defaulting to 0 rather than failing the decode.
        nodes_total: j.get("nodes_total").and_then(Json::as_u64).unwrap_or(0) as usize,
    })
}

/// The `fetch_tree` reply payload: what is about to be streamed.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeInfo {
    /// The request whose tree follows.
    pub id: u64,
    /// Instance name, echoed.
    pub name: String,
    /// Total node count about to stream.
    pub nodes: u64,
    /// Number of `tree` chunk events that will carry them.
    pub chunks: u64,
    /// Arena index of the source (root) node. Meaningless (`0`) on a
    /// partial stream, which has no source yet.
    pub source: u64,
    /// Whether this is a **mid-synthesis** level snapshot: only the
    /// level-complete prefix streams (a forest — no source node, no
    /// refinement pass applied). `false` for completed trees, and the
    /// key is absent on the wire then, keeping those headers
    /// byte-identical to pre-streaming servers.
    pub partial: bool,
    /// Topology levels fully merged into the streamed prefix. On a
    /// partial stream this is the watermark the snapshot was taken at;
    /// `0` on completed-tree headers (the terminal event carries the
    /// full per-level stats instead).
    pub levels_done: u64,
}

impl TreeInfo {
    /// A completed-tree header (not partial).
    pub fn complete(id: u64, name: String, nodes: u64, chunks: u64, source: u64) -> TreeInfo {
        TreeInfo {
            id,
            name,
            nodes,
            chunks,
            source,
            partial: false,
            levels_done: 0,
        }
    }
}

/// One `tree` chunk event: a consecutive run of arena nodes. Chunk `k`
/// carries nodes `[k*chunk_size, ...)` in arena order; the client
/// concatenates chunks in sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeChunkEvent {
    /// The request id the stream answers.
    pub id: u64,
    /// Zero-based chunk ordinal (consecutive; a gap is a protocol error).
    pub chunk: u64,
    /// This chunk's nodes, in arena order.
    pub nodes: Vec<TreeNode>,
}

/// The terminal `tree` event: closes the stream and carries the
/// per-level statistics of the synthesis that built the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeDoneEvent {
    /// The request id the stream answers.
    pub id: u64,
    /// Per-level pipeline statistics, in level order.
    pub level_stats: Vec<LevelStats>,
}

/// A decoded `tree` event frame.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeEvent {
    /// A chunk of nodes.
    Chunk(TreeChunkEvent),
    /// The terminal frame.
    Done(TreeDoneEvent),
}

impl TreeEvent {
    /// The request id the event belongs to.
    pub fn id(&self) -> u64 {
        match self {
            TreeEvent::Chunk(c) => c.id,
            TreeEvent::Done(d) => d.id,
        }
    }
}

/// Serializes a `tree` chunk event frame.
pub fn encode_tree_chunk(event: &TreeChunkEvent) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("tree")),
        ("event", Json::Bool(true)),
        ("id", Json::num(event.id as f64)),
        ("chunk", Json::num(event.chunk as f64)),
        (
            "nodes",
            Json::arr(event.nodes.iter().map(tree_node_to_json).collect()),
        ),
    ])
}

/// Serializes the terminal `tree` event frame.
pub fn encode_tree_done(event: &TreeDoneEvent) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("tree")),
        ("event", Json::Bool(true)),
        ("id", Json::num(event.id as f64)),
        ("done", Json::Bool(true)),
        (
            "levels",
            Json::arr(event.level_stats.iter().map(level_stats_to_json).collect()),
        ),
    ])
}

/// Decodes a `tree` event frame (chunk or terminal).
///
/// # Errors
///
/// A description of the malformation.
pub fn decode_tree_event(j: &Json) -> Result<TreeEvent, String> {
    if !is_event(j) || event_op(j) != Some("tree") {
        return Err("not a tree event frame".into());
    }
    let id = j
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("tree event needs 'id'")?;
    if j.get("done").and_then(Json::as_bool) == Some(true) {
        let level_stats = j
            .get("levels")
            .and_then(Json::as_arr)
            .ok_or("terminal tree event needs 'levels'")?
            .iter()
            .map(level_stats_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(TreeEvent::Done(TreeDoneEvent { id, level_stats }));
    }
    let chunk = j
        .get("chunk")
        .and_then(Json::as_u64)
        .ok_or("tree chunk event needs 'chunk'")?;
    let nodes = j
        .get("nodes")
        .and_then(Json::as_arr)
        .ok_or("tree chunk event needs 'nodes'")?
        .iter()
        .map(tree_node_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(TreeEvent::Chunk(TreeChunkEvent { id, chunk, nodes }))
}

/// A routed tree fetched over the wire, rebuilt into the same in-process
/// representation the synthesizer produced. The protocol contract is
/// that this is **bit-identical** to the server-side
/// [`cts_core::CtsResult`] fields it mirrors: every node coordinate,
/// buffer cell id, wire segment length, and level statistic survives the
/// shortest-roundtrip JSON unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteTree {
    /// The request the tree answers.
    pub id: u64,
    /// Instance name, echoed.
    pub name: String,
    /// The rebuilt routed tree.
    pub tree: ClockTree,
    /// The source (root) node.
    pub source: TreeNodeId,
    /// Per-level pipeline statistics.
    pub level_stats: Vec<LevelStats>,
}

// ---------------------------------------------------------------------------
// Requests

/// One entry of a `submit_batch` frame: an instance plus its per-entry
/// scheduling overrides (the [`OptionsPatch`] is shared batch-wide).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchEntry {
    /// The instance spec.
    pub instance: Instance,
    /// Dispatch priority (higher first; ties in admission order).
    pub priority: i32,
    /// Deadline in milliseconds from admission; absent = none.
    pub deadline_ms: Option<u64>,
    /// Client id echoed on the result event (defaults to the
    /// connection's `hello` client id).
    pub client_id: Option<String>,
    /// Whether the server should publish level-complete snapshots of
    /// this entry mid-synthesis, for `fetch_tree` in `"levels"` mode.
    /// Off by default (each level snapshot copies the arena); the key
    /// is absent on the wire when false, so old frames are unchanged.
    pub publish_levels: bool,
}

impl BatchEntry {
    /// A default-priority, no-deadline entry for `instance`.
    pub fn new(instance: Instance) -> BatchEntry {
        BatchEntry {
            instance,
            priority: 0,
            deadline_ms: None,
            client_id: None,
            publish_levels: false,
        }
    }
}

fn batch_entry_to_json(entry: &BatchEntry) -> Json {
    let mut fields = vec![("instance", instance_to_json(&entry.instance))];
    if entry.priority != 0 {
        fields.push(("priority", Json::num(entry.priority as f64)));
    }
    if let Some(ms) = entry.deadline_ms {
        fields.push(("deadline_ms", Json::num(ms as f64)));
    }
    if let Some(c) = &entry.client_id {
        fields.push(("client_id", Json::str(c)));
    }
    if entry.publish_levels {
        fields.push(("publish_levels", Json::Bool(true)));
    }
    Json::obj(fields)
}

fn batch_entry_from_json(j: &Json) -> Result<BatchEntry, DecodeError> {
    let instance = instance_from_json(
        j.get("instance")
            .ok_or_else(|| DecodeError::bad("batch entry needs an 'instance'"))?,
    )?;
    let priority = match j.get("priority") {
        None | Some(Json::Null) => 0,
        Some(p) => p
            .as_i64()
            .filter(|p| i32::try_from(*p).is_ok())
            .ok_or_else(|| DecodeError::bad("'priority' must be a 32-bit integer"))?
            as i32,
    };
    let deadline_ms = match j.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or_else(|| DecodeError::bad("'deadline_ms' must be a non-negative integer"))?,
        ),
    };
    let client_id = match j.get("client_id") {
        None | Some(Json::Null) => None,
        Some(c) => Some(
            c.as_str()
                .map(str::to_string)
                .ok_or_else(|| DecodeError::bad("'client_id' must be a string"))?,
        ),
    };
    let publish_levels = decode_publish_levels(j)?;
    Ok(BatchEntry {
        instance,
        priority,
        deadline_ms,
        client_id,
        publish_levels,
    })
}

/// Decodes the optional `publish_levels` flag shared by the submit ops.
fn decode_publish_levels(j: &Json) -> Result<bool, DecodeError> {
    match j.get("publish_levels") {
        None | Some(Json::Null) => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| DecodeError::bad("'publish_levels' must be a boolean")),
    }
}

// ---------------------------------------------------------------------------
// Sweep specs

/// The `submit_sweep` op's cartesian axes, in wire units (times in ps,
/// like the options patch). An empty axis keeps the base value — it
/// contributes one implicit point, not zero — so the expansion size is
/// the product of `max(1, len)` over the four axes, row-major with the
/// slew target outermost and buffering innermost (the exact order of
/// [`cts_core::SweepSpec::expand_points`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepAxesSpec {
    /// Slew targets to sweep (ps).
    pub slew_targets_ps: Vec<f64>,
    /// Buffer-library prefix sizes (`0` = full library).
    pub library_subsets: Vec<u64>,
    /// H-structure correction modes.
    pub h_corrections: Vec<HCorrection>,
    /// Buffer-insertion strategies.
    pub bufferings: Vec<Buffering>,
}

impl SweepAxesSpec {
    /// The core-side axes: the exact `ps * 1e-12` conversion an
    /// individually submitted `slew_target_ps` patch applies, so a swept
    /// point's options are byte-identical to the same point submitted
    /// alone.
    pub fn to_axes(&self) -> SweepAxes {
        SweepAxes {
            slew_targets: self.slew_targets_ps.iter().map(|ps| ps * 1e-12).collect(),
            library_subsets: self.library_subsets.iter().map(|&k| k as usize).collect(),
            h_corrections: self.h_corrections.clone(),
            bufferings: self.bufferings.clone(),
        }
    }
}

/// One explicit `submit_sweep` point: per-field overrides of the base
/// options, in wire units. An all-absent point reproduces the base
/// configuration exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepPointSpec {
    /// Override of the slew target (ps).
    pub slew_target_ps: Option<f64>,
    /// Override of the buffer-library prefix size.
    pub library_subset: Option<u64>,
    /// Override of the H-correction mode.
    pub h_correction: Option<HCorrection>,
    /// Override of the buffering strategy.
    pub buffering: Option<Buffering>,
}

impl SweepPointSpec {
    /// The core-side point (same unit conversion as [`SweepAxesSpec`]).
    pub fn to_point(&self) -> SweepPoint {
        SweepPoint {
            slew_target: self.slew_target_ps.map(|ps| ps * 1e-12),
            library_subset: self.library_subset.map(|k| k as usize),
            h_correction: self.h_correction,
            buffering: self.buffering,
        }
    }
}

/// How a `submit_sweep` frame enumerates its points: cartesian `axes`
/// or an explicit `points` list — exactly one of the two keys.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepRange {
    /// The cartesian product of the axes.
    Axes(SweepAxesSpec),
    /// An explicit point list, kept in order.
    Points(Vec<SweepPointSpec>),
}

fn sweep_axes_to_json(axes: &SweepAxesSpec) -> Json {
    let mut fields = Vec::new();
    if !axes.slew_targets_ps.is_empty() {
        fields.push((
            "slew_target_ps",
            Json::arr(axes.slew_targets_ps.iter().map(|&v| Json::num(v)).collect()),
        ));
    }
    if !axes.library_subsets.is_empty() {
        fields.push((
            "library_subset",
            Json::arr(
                axes.library_subsets
                    .iter()
                    .map(|&k| Json::num(k as f64))
                    .collect(),
            ),
        ));
    }
    if !axes.h_corrections.is_empty() {
        fields.push((
            "h_correction",
            Json::arr(
                axes.h_corrections
                    .iter()
                    .map(|&h| Json::str(h_correction_str(h)))
                    .collect(),
            ),
        ));
    }
    if !axes.bufferings.is_empty() {
        fields.push((
            "buffering",
            Json::arr(
                axes.bufferings
                    .iter()
                    .map(|&b| Json::str(buffering_str(b)))
                    .collect(),
            ),
        ));
    }
    Json::obj(fields)
}

fn sweep_axes_from_json(j: &Json) -> Result<SweepAxesSpec, DecodeError> {
    let fields = j
        .as_obj()
        .ok_or_else(|| DecodeError::bad("'axes' must be an object"))?;
    let mut axes = SweepAxesSpec::default();
    for (key, value) in fields {
        let arr = value
            .as_arr()
            .ok_or_else(|| DecodeError::bad(format!("axis '{key}' must be an array")))?;
        match key.as_str() {
            "slew_target_ps" => {
                axes.slew_targets_ps = arr
                    .iter()
                    .map(Json::as_f64)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| DecodeError::bad("'slew_target_ps' axis must be numbers"))?;
            }
            "library_subset" => {
                axes.library_subsets = arr
                    .iter()
                    .map(Json::as_u64)
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| DecodeError::bad("'library_subset' axis must be integers"))?;
            }
            "h_correction" => {
                axes.h_corrections = arr
                    .iter()
                    .map(|v| h_correction_from_json(v, "h_correction"))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "buffering" => {
                axes.bufferings = arr
                    .iter()
                    .map(|v| buffering_from_json(v, "buffering"))
                    .collect::<Result<Vec<_>, _>>()?;
            }
            other => return Err(DecodeError::bad(format!("unknown sweep axis '{other}'"))),
        }
    }
    Ok(axes)
}

fn sweep_point_to_json(point: &SweepPointSpec) -> Json {
    let mut fields = Vec::new();
    if let Some(ps) = point.slew_target_ps {
        fields.push(("slew_target_ps", Json::num(ps)));
    }
    if let Some(k) = point.library_subset {
        fields.push(("library_subset", Json::num(k as f64)));
    }
    if let Some(h) = point.h_correction {
        fields.push(("h_correction", Json::str(h_correction_str(h))));
    }
    if let Some(b) = point.buffering {
        fields.push(("buffering", Json::str(buffering_str(b))));
    }
    Json::obj(fields)
}

fn sweep_point_from_json(j: &Json) -> Result<SweepPointSpec, DecodeError> {
    let fields = j
        .as_obj()
        .ok_or_else(|| DecodeError::bad("sweep point must be an object"))?;
    let mut point = SweepPointSpec::default();
    for (key, value) in fields {
        match key.as_str() {
            "slew_target_ps" => {
                point.slew_target_ps = Some(
                    value
                        .as_f64()
                        .ok_or_else(|| DecodeError::bad("'slew_target_ps' must be a number"))?,
                );
            }
            "library_subset" => {
                point.library_subset = Some(
                    value
                        .as_u64()
                        .ok_or_else(|| DecodeError::bad("'library_subset' must be an integer"))?,
                );
            }
            "h_correction" => {
                point.h_correction = Some(h_correction_from_json(value, "h_correction")?);
            }
            "buffering" => point.buffering = Some(buffering_from_json(value, "buffering")?),
            other => {
                return Err(DecodeError::bad(format!(
                    "unknown sweep point key '{other}'"
                )))
            }
        }
    }
    Ok(point)
}

/// A client request (the `seq` correlation id travels alongside, not
/// inside, so the enum stays pure payload).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake; servers reject unknown versions.
    Hello {
        /// The protocol version the client speaks.
        version: u64,
        /// Optional client identifier (diagnostics; also the default
        /// `client_id` for this connection's submissions).
        client_id: Option<String>,
    },
    /// Submit one instance for synthesis.
    Submit {
        /// The instance spec.
        instance: Instance,
        /// Per-request options overrides (empty = server defaults).
        options: OptionsPatch,
        /// Dispatch priority (higher first; ties in admission order).
        priority: i32,
        /// Deadline in milliseconds from admission; absent = none.
        deadline_ms: Option<u64>,
        /// Client id echoed on the result event.
        client_id: Option<String>,
        /// Publish level-complete snapshots while this request
        /// synthesizes, so `fetch_tree` with `"mode":"levels"` can watch
        /// the tree grow. Absent on the wire when `false`.
        publish_levels: bool,
    },
    /// Submit many instances in one frame, admitted atomically into the
    /// service (all-or-nothing against queue capacity): one round trip
    /// for a whole sweep.
    SubmitBatch {
        /// The batch entries, in submission order.
        entries: Vec<BatchEntry>,
        /// Options overrides shared by every entry (empty = server
        /// defaults).
        options: OptionsPatch,
    },
    /// Submit a parameter sweep in one frame: the server expands the
    /// range over the base options into deterministic per-point
    /// requests (admitted atomically, like `submit_batch`), then folds
    /// the completed points into a Pareto front it pushes as a `pareto`
    /// event. Additive — no version bump.
    SubmitSweep {
        /// The instance spec every point synthesizes.
        instance: Instance,
        /// Base options overrides the sweep points perturb (empty =
        /// server defaults).
        base: OptionsPatch,
        /// The points: cartesian axes or an explicit list.
        range: SweepRange,
        /// Dispatch priority shared by every point.
        priority: i32,
        /// Deadline in milliseconds, shared by every point.
        deadline_ms: Option<u64>,
        /// Client id echoed on every point's result event.
        client_id: Option<String>,
        /// Publish level-complete snapshots for every point.
        publish_levels: bool,
    },
    /// Stream the routed tree geometry of a completed request as chunked
    /// `tree` events plus a terminal frame.
    FetchTree {
        /// A request id this connection submitted, already resolved
        /// `completed`.
        id: u64,
        /// Maximum nodes per chunk event; `None` uses
        /// [`DEFAULT_TREE_CHUNK`].
        chunk: Option<u64>,
        /// Level-granular mode (`"mode":"levels"` on the wire): chunk
        /// boundaries align with completed topology levels, and a
        /// request still in flight answers with a *partial* header over
        /// its latest level-complete snapshot instead of `unknown_id`.
        levels: bool,
    },
    /// Where is request `id` (queued / in_flight / done)?
    Status {
        /// A request id this connection submitted.
        id: u64,
    },
    /// Cooperatively cancel request `id`.
    Cancel {
        /// A request id this connection submitted.
        id: u64,
    },
    /// Snapshot the service counters.
    Metrics,
    /// Snapshot the full observability state: the same counters as
    /// `metrics` plus latency histograms (queue wait per priority,
    /// synthesis, verification) and per-span-name duration summaries.
    /// Additive — no version bump; old servers answer `bad_request` and
    /// clients fall back to `metrics`.
    Stats,
    /// Drain the service and stop the server.
    Shutdown,
}

impl Request {
    /// The wire op name.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "hello",
            Request::Submit { .. } => "submit",
            Request::SubmitBatch { .. } => "submit_batch",
            Request::SubmitSweep { .. } => "submit_sweep",
            Request::FetchTree { .. } => "fetch_tree",
            Request::Status { .. } => "status",
            Request::Cancel { .. } => "cancel",
            Request::Metrics => "metrics",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
        }
    }
}

/// Serializes a request frame: the op payload plus its `seq`.
pub fn encode_request(seq: u64, request: &Request) -> Json {
    let mut fields = vec![
        ("op", Json::str(request.op())),
        ("seq", Json::num(seq as f64)),
    ];
    match request {
        Request::Hello { version, client_id } => {
            fields.push(("version", Json::num(*version as f64)));
            if let Some(c) = client_id {
                fields.push(("client_id", Json::str(c)));
            }
        }
        Request::Submit {
            instance,
            options,
            priority,
            deadline_ms,
            client_id,
            publish_levels,
        } => {
            fields.push(("instance", instance_to_json(instance)));
            if !options.is_empty() {
                fields.push(("options", options.to_json()));
            }
            if *priority != 0 {
                fields.push(("priority", Json::num(*priority as f64)));
            }
            if let Some(ms) = deadline_ms {
                fields.push(("deadline_ms", Json::num(*ms as f64)));
            }
            if let Some(c) = client_id {
                fields.push(("client_id", Json::str(c)));
            }
            if *publish_levels {
                fields.push(("publish_levels", Json::Bool(true)));
            }
        }
        Request::SubmitBatch { entries, options } => {
            fields.push((
                "entries",
                Json::arr(entries.iter().map(batch_entry_to_json).collect()),
            ));
            if !options.is_empty() {
                fields.push(("options", options.to_json()));
            }
        }
        Request::SubmitSweep {
            instance,
            base,
            range,
            priority,
            deadline_ms,
            client_id,
            publish_levels,
        } => {
            fields.push(("instance", instance_to_json(instance)));
            if !base.is_empty() {
                fields.push(("base", base.to_json()));
            }
            match range {
                SweepRange::Axes(axes) => fields.push(("axes", sweep_axes_to_json(axes))),
                SweepRange::Points(points) => fields.push((
                    "points",
                    Json::arr(points.iter().map(sweep_point_to_json).collect()),
                )),
            }
            if *priority != 0 {
                fields.push(("priority", Json::num(*priority as f64)));
            }
            if let Some(ms) = deadline_ms {
                fields.push(("deadline_ms", Json::num(*ms as f64)));
            }
            if let Some(c) = client_id {
                fields.push(("client_id", Json::str(c)));
            }
            if *publish_levels {
                fields.push(("publish_levels", Json::Bool(true)));
            }
        }
        Request::FetchTree { id, chunk, levels } => {
            fields.push(("id", Json::num(*id as f64)));
            if let Some(c) = chunk {
                fields.push(("chunk", Json::num(*c as f64)));
            }
            if *levels {
                fields.push(("mode", Json::str("levels")));
            }
        }
        Request::Status { id } | Request::Cancel { id } => {
            fields.push(("id", Json::num(*id as f64)));
        }
        Request::Metrics | Request::Stats | Request::Shutdown => {}
    }
    Json::obj(fields)
}

/// Decodes a request frame into `(seq, request)`.
///
/// # Errors
///
/// [`ErrorCode::BadRequest`] for a missing/unknown op, missing `seq`, or
/// any malformed field.
pub fn decode_request(j: &Json) -> Result<(u64, Request), DecodeError> {
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| DecodeError::bad("frame needs a string 'op'"))?;
    let seq = j
        .get("seq")
        .and_then(Json::as_u64)
        .ok_or_else(|| DecodeError::bad("frame needs an integer 'seq'"))?;
    let opt_str = |key: &str| -> Result<Option<String>, DecodeError> {
        match j.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| DecodeError::bad(format!("'{key}' must be a string"))),
        }
    };
    let need_id = || {
        j.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| DecodeError::bad("op needs an integer 'id'"))
    };
    let request = match op {
        "hello" => Request::Hello {
            version: j
                .get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| DecodeError::bad("hello needs an integer 'version'"))?,
            client_id: opt_str("client_id")?,
        },
        "submit" => {
            let instance = instance_from_json(
                j.get("instance")
                    .ok_or_else(|| DecodeError::bad("submit needs an 'instance'"))?,
            )?;
            let options = match j.get("options") {
                None | Some(Json::Null) => OptionsPatch::default(),
                Some(o) => OptionsPatch::from_json(o)?,
            };
            let priority = match j.get("priority") {
                None | Some(Json::Null) => 0,
                Some(p) => p
                    .as_i64()
                    .filter(|p| i32::try_from(*p).is_ok())
                    .ok_or_else(|| DecodeError::bad("'priority' must be a 32-bit integer"))?
                    as i32,
            };
            let deadline_ms = match j.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| {
                    DecodeError::bad("'deadline_ms' must be a non-negative integer")
                })?),
            };
            Request::Submit {
                instance,
                options,
                priority,
                deadline_ms,
                client_id: opt_str("client_id")?,
                publish_levels: decode_publish_levels(j)?,
            }
        }
        "submit_batch" => {
            let entries_json = j
                .get("entries")
                .and_then(Json::as_arr)
                .ok_or_else(|| DecodeError::bad("submit_batch needs an 'entries' array"))?;
            if entries_json.is_empty() {
                return Err(DecodeError::bad("submit_batch needs at least one entry"));
            }
            let entries = entries_json
                .iter()
                .map(batch_entry_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let options = match j.get("options") {
                None | Some(Json::Null) => OptionsPatch::default(),
                Some(o) => OptionsPatch::from_json(o)?,
            };
            Request::SubmitBatch { entries, options }
        }
        "submit_sweep" => {
            let instance = instance_from_json(
                j.get("instance")
                    .ok_or_else(|| DecodeError::bad("submit_sweep needs an 'instance'"))?,
            )?;
            let base = match j.get("base") {
                None | Some(Json::Null) => OptionsPatch::default(),
                Some(o) => OptionsPatch::from_json(o)?,
            };
            let range = match (j.get("axes"), j.get("points")) {
                (Some(axes), None) => SweepRange::Axes(sweep_axes_from_json(axes)?),
                (None, Some(points)) => {
                    let arr = points
                        .as_arr()
                        .ok_or_else(|| DecodeError::bad("'points' must be an array"))?;
                    if arr.is_empty() {
                        return Err(DecodeError::bad("submit_sweep needs at least one point"));
                    }
                    SweepRange::Points(
                        arr.iter()
                            .map(sweep_point_from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    )
                }
                (Some(_), Some(_)) => {
                    return Err(DecodeError::bad(
                        "submit_sweep takes 'axes' or 'points', not both",
                    ))
                }
                (None, None) => {
                    return Err(DecodeError::bad("submit_sweep needs 'axes' or 'points'"))
                }
            };
            let priority = match j.get("priority") {
                None | Some(Json::Null) => 0,
                Some(p) => p
                    .as_i64()
                    .filter(|p| i32::try_from(*p).is_ok())
                    .ok_or_else(|| DecodeError::bad("'priority' must be a 32-bit integer"))?
                    as i32,
            };
            let deadline_ms = match j.get("deadline_ms") {
                None | Some(Json::Null) => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| {
                    DecodeError::bad("'deadline_ms' must be a non-negative integer")
                })?),
            };
            Request::SubmitSweep {
                instance,
                base,
                range,
                priority,
                deadline_ms,
                client_id: opt_str("client_id")?,
                publish_levels: decode_publish_levels(j)?,
            }
        }
        "fetch_tree" => {
            let chunk = match j.get("chunk") {
                None | Some(Json::Null) => None,
                Some(c) => Some(
                    c.as_u64()
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| DecodeError::bad("'chunk' must be a positive integer"))?,
                ),
            };
            let levels = match j.get("mode") {
                None | Some(Json::Null) => false,
                Some(m) => match m.as_str() {
                    Some("nodes") => false,
                    Some("levels") => true,
                    _ => return Err(DecodeError::bad("'mode' must be \"nodes\" or \"levels\"")),
                },
            };
            Request::FetchTree {
                id: need_id()?,
                chunk,
                levels,
            }
        }
        "status" => Request::Status { id: need_id()? },
        "cancel" => Request::Cancel { id: need_id()? },
        "metrics" => Request::Metrics,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        other => return Err(DecodeError::bad(format!("unknown op '{other}'"))),
    };
    Ok((seq, request))
}

// ---------------------------------------------------------------------------
// Replies

/// The `metrics` reply payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsReply {
    /// The service counter snapshot.
    pub metrics: ServiceMetrics,
    /// The service's worker count.
    pub workers: u64,
}

/// One span family's duration summary on the wire: every completed span
/// with this name, folded into a single histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// The span name (e.g. `"pipeline.merge_level"`).
    pub name: String,
    /// Span durations in nanoseconds.
    pub durations: Histogram,
}

/// The `stats` reply payload: the `metrics` counters plus latency
/// histograms and per-span summaries.
///
/// Histograms travel as their exact wire parts (sparse buckets, count,
/// total, max); percentile fields on the wire are *derived* from those
/// parts at encode time, so a client that re-derives them from the
/// decoded histogram gets bit-identical answers and a decode → re-encode
/// round trip reproduces the frame byte for byte.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReply {
    /// The service's worker count.
    pub workers: u64,
    /// The service counter snapshot (same shape as the `metrics` op).
    pub metrics: ServiceMetrics,
    /// Queue-wait histograms keyed by priority, ascending.
    pub queue_wait: Vec<(i32, Histogram)>,
    /// Synthesis-stage latency across all completed requests.
    pub synth_latency: Histogram,
    /// Verification-stage latency across all verified requests.
    pub verify_latency: Histogram,
    /// Per-name span duration summaries from the server's recorder,
    /// sorted by name; empty when the server runs without tracing.
    pub spans: Vec<SpanStat>,
    /// Span events dropped by the server's recorder (ring overflow or
    /// retention eviction); `0` when tracing is off.
    pub dropped: u64,
}

/// A server reply — exactly one per request, correlated by `seq`.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to `hello`.
    Hello {
        /// The protocol version the server speaks.
        version: u64,
        /// Server software identifier (e.g. `cts-serve/0.1.0`).
        server: String,
        /// The service's worker count.
        workers: u64,
    },
    /// Reply to `submit`: the request was admitted under this id.
    Submitted {
        /// The service-assigned request id.
        id: u64,
    },
    /// Reply to `submit_batch`: every entry was admitted atomically; the
    /// ids map entry order to service-assigned request ids.
    BatchSubmitted {
        /// One id per batch entry, in entry order.
        ids: Vec<u64>,
    },
    /// Reply to `submit_sweep`: every expanded point was admitted
    /// atomically. `sweep_progress` events follow as points resolve and
    /// a terminal `pareto` event carries the folded front.
    SweepSubmitted {
        /// The per-connection sweep ordinal correlating this sweep's
        /// `sweep_progress`/`pareto` events.
        sweep: u64,
        /// One request id per expanded point, in expansion order (the
        /// point ordinal the `pareto` event refers to).
        ids: Vec<u64>,
    },
    /// Reply to `fetch_tree`: the stream header. The chunked `tree`
    /// events (and their terminal frame) follow.
    TreeHeader(TreeInfo),
    /// Reply to `status`.
    Status {
        /// The queried id.
        id: u64,
        /// Where the request is.
        state: RequestStatus,
    },
    /// Reply to `cancel` (cancellation is cooperative: the terminal
    /// outcome still arrives as a result event).
    Cancelled {
        /// The cancelled id.
        id: u64,
    },
    /// Reply to `metrics`.
    Metrics(MetricsReply),
    /// Reply to `stats`.
    Stats(Box<StatsReply>),
    /// Reply to `shutdown`, sent after the service has drained.
    ShuttingDown,
    /// Structured failure of the correlated request.
    Error {
        /// The machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn status_str(s: RequestStatus) -> &'static str {
    match s {
        RequestStatus::Queued => "queued",
        RequestStatus::InFlight => "in_flight",
        RequestStatus::Done => "done",
    }
}

fn status_from_str(s: &str) -> Option<RequestStatus> {
    Some(match s {
        "queued" => RequestStatus::Queued,
        "in_flight" => RequestStatus::InFlight,
        "done" => RequestStatus::Done,
        _ => return None,
    })
}

/// The counters object shared by the `metrics` and `stats` replies. Key
/// order is part of the byte-level frame contract the conformance
/// transcripts pin; new counters append at the end.
fn service_metrics_to_json(s: &ServiceMetrics) -> Json {
    Json::obj(vec![
        ("submitted", Json::num(s.submitted as f64)),
        ("completed", Json::num(s.completed as f64)),
        ("cancelled", Json::num(s.cancelled as f64)),
        ("expired", Json::num(s.expired as f64)),
        ("failed", Json::num(s.failed as f64)),
        ("queue_depth", Json::num(s.queue_depth as f64)),
        ("synth_seconds", Json::num(s.synth_seconds)),
        ("verify_seconds", Json::num(s.verify_seconds)),
        ("stages_simulated", Json::num(s.stages_simulated as f64)),
        ("stages_reused", Json::num(s.stages_reused as f64)),
        ("symbolic_hits", Json::num(s.symbolic_hits as f64)),
        ("symbolic_misses", Json::num(s.symbolic_misses as f64)),
        ("topology_seconds", Json::num(s.topology_seconds)),
        ("merge_seconds", Json::num(s.merge_seconds)),
        ("sinks_synthesized", Json::num(s.sinks_synthesized as f64)),
        ("sinks_verified", Json::num(s.sinks_verified as f64)),
        ("corners_evaluated", Json::num(s.corners_evaluated as f64)),
        ("corner_lib_hits", Json::num(s.corner_lib_hits as f64)),
        ("corner_lib_misses", Json::num(s.corner_lib_misses as f64)),
        (
            "queue_depth_high_water",
            Json::num(s.queue_depth_high_water as f64),
        ),
        ("sweeps_submitted", Json::num(s.sweeps_submitted as f64)),
    ])
}

fn service_metrics_from_json(m: &Json) -> Result<ServiceMetrics, String> {
    let count = |key: &str| {
        m.get(key)
            .and_then(Json::as_u64)
            .ok_or("bad metrics counter")
    };
    let seconds = |key: &str| {
        m.get(key)
            .and_then(Json::as_f64)
            .ok_or("bad metrics seconds")
    };
    // Verify-cache and per-stage counters arrived after the v1
    // frames; default to zero when talking to an older server.
    let opt_count = |key: &str| m.get(key).and_then(Json::as_u64).unwrap_or(0);
    let opt_seconds = |key: &str| m.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    Ok(ServiceMetrics {
        submitted: count("submitted")?,
        completed: count("completed")?,
        cancelled: count("cancelled")?,
        expired: count("expired")?,
        failed: count("failed")?,
        queue_depth: count("queue_depth")? as usize,
        synth_seconds: seconds("synth_seconds")?,
        verify_seconds: seconds("verify_seconds")?,
        stages_simulated: opt_count("stages_simulated"),
        stages_reused: opt_count("stages_reused"),
        symbolic_hits: opt_count("symbolic_hits"),
        symbolic_misses: opt_count("symbolic_misses"),
        topology_seconds: opt_seconds("topology_seconds"),
        merge_seconds: opt_seconds("merge_seconds"),
        sinks_synthesized: opt_count("sinks_synthesized"),
        sinks_verified: opt_count("sinks_verified"),
        corners_evaluated: opt_count("corners_evaluated"),
        corner_lib_hits: opt_count("corner_lib_hits"),
        corner_lib_misses: opt_count("corner_lib_misses"),
        queue_depth_high_water: opt_count("queue_depth_high_water"),
        sweeps_submitted: opt_count("sweeps_submitted"),
    })
}

/// A histogram as its exact wire parts plus *derived* percentiles. The
/// buckets/count/total/max quadruple is the source of truth — decode
/// rebuilds the histogram from it and drops the percentile fields, so
/// re-encoding re-derives them bit-identically.
fn histogram_to_json(h: &Histogram) -> Json {
    Json::obj(vec![
        ("count", Json::num(h.count() as f64)),
        ("total_ns", Json::num(h.total() as f64)),
        ("max_ns", Json::num(h.max() as f64)),
        ("p50_ns", Json::num(h.percentile(50.0) as f64)),
        ("p90_ns", Json::num(h.percentile(90.0) as f64)),
        ("p99_ns", Json::num(h.percentile(99.0) as f64)),
        (
            "buckets",
            Json::arr(
                h.nonzero_buckets()
                    .iter()
                    .map(|&(i, c)| Json::arr(vec![Json::num(i as f64), Json::num(c as f64)]))
                    .collect(),
            ),
        ),
    ])
}

fn histogram_from_json(j: &Json) -> Result<Histogram, String> {
    let int = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram needs an integer '{key}'"))
    };
    let buckets = j
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or("histogram needs a 'buckets' array")?
        .iter()
        .map(|pair| {
            let p = pair.as_arr()?;
            if p.len() != 2 {
                return None;
            }
            // Indices past u8 can't be valid; 255 is equally
            // out-of-range, and `from_parts` ignores it (lenient).
            let index = u8::try_from(p[0].as_u64()?).unwrap_or(u8::MAX);
            Some((index, p[1].as_u64()?))
        })
        .collect::<Option<Vec<_>>>()
        .ok_or("histogram 'buckets' must be [index, count] integer pairs")?;
    Ok(Histogram::from_parts(
        &buckets,
        int("count")?,
        int("total_ns")?,
        int("max_ns")?,
    ))
}

/// Serializes a reply frame. `seq` is `None` only for errors answering a
/// frame whose `seq` could not be decoded (serialized as `"seq":null`).
pub fn encode_response(seq: Option<u64>, response: &Response) -> Json {
    let seq_json = match seq {
        Some(s) => Json::num(s as f64),
        None => Json::Null,
    };
    match response {
        Response::Error { code, message } => Json::obj(vec![
            ("ok", Json::Bool(false)),
            ("seq", seq_json),
            (
                "error",
                Json::obj(vec![
                    ("code", Json::str(code.as_str())),
                    ("message", Json::str(message.clone())),
                ]),
            ),
        ]),
        ok => {
            let mut fields = vec![("ok", Json::Bool(true)), ("seq", seq_json)];
            match ok {
                Response::Hello {
                    version,
                    server,
                    workers,
                } => {
                    fields.push(("op", Json::str("hello")));
                    fields.push(("version", Json::num(*version as f64)));
                    fields.push(("server", Json::str(server.clone())));
                    fields.push(("workers", Json::num(*workers as f64)));
                }
                Response::Submitted { id } => {
                    fields.push(("op", Json::str("submit")));
                    fields.push(("id", Json::num(*id as f64)));
                }
                Response::BatchSubmitted { ids } => {
                    fields.push(("op", Json::str("submit_batch")));
                    fields.push((
                        "ids",
                        Json::arr(ids.iter().map(|&id| Json::num(id as f64)).collect()),
                    ));
                }
                Response::SweepSubmitted { sweep, ids } => {
                    fields.push(("op", Json::str("submit_sweep")));
                    fields.push(("sweep", Json::num(*sweep as f64)));
                    fields.push((
                        "ids",
                        Json::arr(ids.iter().map(|&id| Json::num(id as f64)).collect()),
                    ));
                }
                Response::TreeHeader(info) => {
                    fields.push(("op", Json::str("fetch_tree")));
                    fields.push(("id", Json::num(info.id as f64)));
                    fields.push(("name", Json::str(&info.name)));
                    fields.push(("nodes", Json::num(info.nodes as f64)));
                    fields.push(("chunks", Json::num(info.chunks as f64)));
                    if info.partial {
                        fields.push(("partial", Json::Bool(true)));
                        fields.push(("levels_done", Json::num(info.levels_done as f64)));
                    } else {
                        fields.push(("source", Json::num(info.source as f64)));
                    }
                }
                Response::Status { id, state } => {
                    fields.push(("op", Json::str("status")));
                    fields.push(("id", Json::num(*id as f64)));
                    fields.push(("state", Json::str(status_str(*state))));
                }
                Response::Cancelled { id } => {
                    fields.push(("op", Json::str("cancel")));
                    fields.push(("id", Json::num(*id as f64)));
                }
                Response::Metrics(m) => {
                    fields.push(("op", Json::str("metrics")));
                    fields.push(("workers", Json::num(m.workers as f64)));
                    fields.push(("metrics", service_metrics_to_json(&m.metrics)));
                }
                Response::Stats(s) => {
                    fields.push(("op", Json::str("stats")));
                    fields.push(("workers", Json::num(s.workers as f64)));
                    fields.push(("metrics", service_metrics_to_json(&s.metrics)));
                    fields.push((
                        "queue_wait",
                        Json::arr(
                            s.queue_wait
                                .iter()
                                .map(|(priority, h)| {
                                    Json::obj(vec![
                                        ("priority", Json::num(*priority as f64)),
                                        ("latency", histogram_to_json(h)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                    fields.push(("synth_latency", histogram_to_json(&s.synth_latency)));
                    fields.push(("verify_latency", histogram_to_json(&s.verify_latency)));
                    fields.push((
                        "spans",
                        Json::arr(
                            s.spans
                                .iter()
                                .map(|span| {
                                    Json::obj(vec![
                                        ("name", Json::str(&span.name)),
                                        ("latency", histogram_to_json(&span.durations)),
                                    ])
                                })
                                .collect(),
                        ),
                    ));
                    fields.push(("dropped", Json::num(s.dropped as f64)));
                }
                Response::ShuttingDown => {
                    fields.push(("op", Json::str("shutdown")));
                }
                Response::Error { .. } => unreachable!("handled above"),
            }
            Json::obj(fields)
        }
    }
}

/// Decodes a reply frame into `(seq, response)` — the client side.
///
/// # Errors
///
/// A description of the malformation (client-side this is a protocol
/// error; there is no one to send a structured reply to).
pub fn decode_response(j: &Json) -> Result<(Option<u64>, Response), String> {
    let seq = match j.get("seq") {
        Some(Json::Null) | None => None,
        Some(s) => Some(s.as_u64().ok_or("reply 'seq' must be an integer or null")?),
    };
    let ok = j
        .get("ok")
        .and_then(Json::as_bool)
        .ok_or("reply needs 'ok'")?;
    if !ok {
        let err = j.get("error").ok_or("error reply needs 'error'")?;
        let code_str = err
            .get("code")
            .and_then(Json::as_str)
            .ok_or("error needs a string 'code'")?;
        let code = ErrorCode::from_wire(code_str)
            .ok_or_else(|| format!("unknown error code '{code_str}'"))?;
        let message = err
            .get("message")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        return Ok((seq, Response::Error { code, message }));
    }
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or("reply needs a string 'op'")?;
    let need_id = || j.get("id").and_then(Json::as_u64).ok_or("reply needs 'id'");
    let response = match op {
        "hello" => Response::Hello {
            version: j
                .get("version")
                .and_then(Json::as_u64)
                .ok_or("hello reply needs 'version'")?,
            server: j
                .get("server")
                .and_then(Json::as_str)
                .ok_or("hello reply needs 'server'")?
                .to_string(),
            workers: j
                .get("workers")
                .and_then(Json::as_u64)
                .ok_or("hello reply needs 'workers'")?,
        },
        "submit" => Response::Submitted { id: need_id()? },
        "submit_batch" => Response::BatchSubmitted {
            ids: j
                .get("ids")
                .and_then(Json::as_arr)
                .ok_or("submit_batch reply needs 'ids'")?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()
                .ok_or("submit_batch 'ids' must be integers")?,
        },
        "submit_sweep" => Response::SweepSubmitted {
            sweep: j
                .get("sweep")
                .and_then(Json::as_u64)
                .ok_or("submit_sweep reply needs 'sweep'")?,
            ids: j
                .get("ids")
                .and_then(Json::as_arr)
                .ok_or("submit_sweep reply needs 'ids'")?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<_>>>()
                .ok_or("submit_sweep 'ids' must be integers")?,
        },
        "fetch_tree" => {
            let int = |key: &str| {
                j.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("fetch_tree reply needs '{key}'"))
            };
            let partial = j.get("partial").and_then(Json::as_bool).unwrap_or(false);
            Response::TreeHeader(TreeInfo {
                id: int("id")?,
                name: j
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("fetch_tree reply needs 'name'")?
                    .to_string(),
                nodes: int("nodes")?,
                chunks: int("chunks")?,
                // A partial header is a rooted forest mid-synthesis:
                // there is no source node yet, so the key is absent.
                source: if partial { 0 } else { int("source")? },
                partial,
                levels_done: if partial { int("levels_done")? } else { 0 },
            })
        }
        "status" => Response::Status {
            id: need_id()?,
            state: j
                .get("state")
                .and_then(Json::as_str)
                .and_then(status_from_str)
                .ok_or("status reply needs a valid 'state'")?,
        },
        "cancel" => Response::Cancelled { id: need_id()? },
        "metrics" => {
            let workers = j
                .get("workers")
                .and_then(Json::as_u64)
                .ok_or("metrics reply needs 'workers'")?;
            let m = j.get("metrics").ok_or("metrics reply needs 'metrics'")?;
            Response::Metrics(MetricsReply {
                workers,
                metrics: service_metrics_from_json(m)?,
            })
        }
        "stats" => {
            let workers = j
                .get("workers")
                .and_then(Json::as_u64)
                .ok_or("stats reply needs 'workers'")?;
            let metrics =
                service_metrics_from_json(j.get("metrics").ok_or("stats reply needs 'metrics'")?)?;
            let queue_wait = j
                .get("queue_wait")
                .and_then(Json::as_arr)
                .ok_or("stats reply needs a 'queue_wait' array")?
                .iter()
                .map(|entry| {
                    let priority = entry
                        .get("priority")
                        .and_then(Json::as_i64)
                        .filter(|p| i32::try_from(*p).is_ok())
                        .ok_or("queue_wait entry needs a 32-bit 'priority'")?
                        as i32;
                    let latency = histogram_from_json(
                        entry
                            .get("latency")
                            .ok_or("queue_wait entry needs 'latency'")?,
                    )?;
                    Ok((priority, latency))
                })
                .collect::<Result<Vec<_>, String>>()?;
            let hist = |key: &str| {
                histogram_from_json(
                    j.get(key)
                        .ok_or_else(|| format!("stats reply needs '{key}'"))?,
                )
            };
            let spans = j
                .get("spans")
                .and_then(Json::as_arr)
                .ok_or("stats reply needs a 'spans' array")?
                .iter()
                .map(|entry| {
                    Ok(SpanStat {
                        name: entry
                            .get("name")
                            .and_then(Json::as_str)
                            .ok_or("span entry needs a string 'name'")?
                            .to_string(),
                        durations: histogram_from_json(
                            entry.get("latency").ok_or("span entry needs 'latency'")?,
                        )?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Response::Stats(Box::new(StatsReply {
                workers,
                metrics,
                queue_wait,
                synth_latency: hist("synth_latency")?,
                verify_latency: hist("verify_latency")?,
                spans,
                // Absent on servers that predate drop accounting.
                dropped: j.get("dropped").and_then(Json::as_u64).unwrap_or(0),
            }))
        }
        "shutdown" => Response::ShuttingDown,
        other => return Err(format!("unknown reply op '{other}'")),
    };
    Ok((seq, response))
}

// ---------------------------------------------------------------------------
// Result events

/// SPICE-or-estimate timing numbers of one result (s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingStats {
    /// Worst 10–90 % slew (s).
    pub worst_slew: f64,
    /// Skew: max − min sink arrival (s).
    pub skew: f64,
    /// Max source-to-sink latency (s).
    pub latency: f64,
}

/// Per-corner distribution stats of one Monte Carlo variation run, as
/// carried by a result event. Only the folded distributions travel —
/// per-corner rows stay on the server (clients consume yield numbers,
/// and a 100k-corner row table has no business on a result frame).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationStats {
    /// Corners evaluated.
    pub corners: u64,
    /// Skew distribution across corners (s).
    pub skew: DistStats,
    /// Worst-slew distribution across corners (s).
    pub worst_slew: DistStats,
    /// Max-latency distribution across corners (s).
    pub latency: DistStats,
}

impl VariationStats {
    /// Projects a service-side summary onto the wire shape.
    pub fn from_summary(v: &VariationSummary) -> VariationStats {
        VariationStats {
            corners: v.corners as u64,
            skew: v.skew,
            worst_slew: v.worst_slew,
            latency: v.latency,
        }
    }
}

/// The stats a completed request streams back — the full
/// [`SynthesisResult`] summary minus the tree geometry (trees stay on
/// the server; clients consume numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteResult {
    /// The service-assigned request id.
    pub id: u64,
    /// Instance name, echoed.
    pub name: String,
    /// Priority the request ran at.
    pub priority: i32,
    /// Dispatch ordinal across the service lifetime.
    pub dispatch_order: u64,
    /// Client id echoed from the submission.
    pub client_id: Option<String>,
    /// Sink count.
    pub sinks: u64,
    /// Topology levels built.
    pub levels: u64,
    /// Buffers inserted.
    pub buffers: u64,
    /// Total inserted buffer input capacitance (F) — the sweep Pareto
    /// front's cost axis. `0.0` from servers that predate sweeps.
    pub buffer_cap_f: f64,
    /// Routed wirelength (µm).
    pub wirelength_um: f64,
    /// Wall time of the synthesis stage (s).
    pub synth_seconds: f64,
    /// Wall time of the verification stage (s); 0 when skipped.
    pub verify_seconds: f64,
    /// Engine-estimated timing.
    pub estimate: TimingStats,
    /// SPICE-verified timing, when the server verifies.
    pub verified: Option<TimingStats>,
    /// Monte Carlo corner distributions, when the variation axis ran.
    pub variation: Option<VariationStats>,
}

impl RemoteResult {
    /// Builds the wire stats from a service result.
    pub fn from_service(r: &SynthesisResult) -> RemoteResult {
        RemoteResult {
            id: r.id.0,
            name: r.item.name.clone(),
            priority: r.priority,
            dispatch_order: r.dispatch_order,
            client_id: r.client_id.clone(),
            sinks: r.item.sinks as u64,
            levels: r.item.result.levels as u64,
            buffers: r.item.result.buffers as u64,
            buffer_cap_f: r.item.result.buffer_cap_f,
            wirelength_um: r.item.result.wirelength_um,
            synth_seconds: r.item.synth_seconds,
            verify_seconds: r.item.verify_seconds,
            estimate: TimingStats {
                worst_slew: r.item.result.report.worst_slew,
                skew: r.item.result.report.skew(),
                latency: r.item.result.report.latency,
            },
            verified: r.item.verified.as_ref().map(|v| TimingStats {
                worst_slew: v.worst_slew,
                skew: v.skew,
                latency: v.max_latency,
            }),
            variation: r.item.variation.as_ref().map(VariationStats::from_summary),
        }
    }
}

/// How a request resolved, as carried by a result event.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Synthesis (and verification, when enabled) finished.
    Completed(Box<RemoteResult>),
    /// The request was cancelled.
    Cancelled,
    /// The request's deadline passed first.
    Expired,
    /// Synthesis or verification failed.
    Failed {
        /// The failure description.
        error: String,
    },
}

impl Outcome {
    /// Maps a service-side outcome onto the wire taxonomy.
    pub fn from_service(outcome: &Result<SynthesisResult, ServiceError>) -> Outcome {
        match outcome {
            Ok(r) => Outcome::Completed(Box::new(RemoteResult::from_service(r))),
            Err(ServiceError::Cancelled) => Outcome::Cancelled,
            Err(ServiceError::Expired) => Outcome::Expired,
            Err(e) => Outcome::Failed {
                error: e.to_string(),
            },
        }
    }
}

/// A pushed (unsolicited) server → client message: request `id` resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultEvent {
    /// The resolved request id.
    pub id: u64,
    /// How it resolved.
    pub outcome: Outcome,
}

/// Whether a decoded frame is an event (vs a reply). Clients route on
/// this before seq-matching.
pub fn is_event(j: &Json) -> bool {
    j.get("event").and_then(Json::as_bool) == Some(true)
}

/// The op of an event frame (`"result"` for terminal request outcomes,
/// `"tree"` for geometry stream frames, `"sweep_progress"` per resolved
/// sweep point, `"pareto"` for a finished sweep's folded front) — the
/// second routing key, after [`is_event`].
pub fn event_op(j: &Json) -> Option<&str> {
    j.get("op").and_then(Json::as_str)
}

fn timing_to_json(t: &TimingStats) -> Json {
    Json::obj(vec![
        ("worst_slew", Json::num(t.worst_slew)),
        ("skew", Json::num(t.skew)),
        ("latency", Json::num(t.latency)),
    ])
}

fn timing_from_json(j: &Json) -> Result<TimingStats, String> {
    let f = |key: &str| {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("timing stats need a number '{key}'"))
    };
    Ok(TimingStats {
        worst_slew: f("worst_slew")?,
        skew: f("skew")?,
        latency: f("latency")?,
    })
}

fn dist_to_json(d: &DistStats) -> Json {
    Json::obj(vec![
        ("min", Json::num(d.min)),
        ("median", Json::num(d.median)),
        ("p95", Json::num(d.p95)),
        ("max", Json::num(d.max)),
    ])
}

fn dist_from_json(j: &Json) -> Result<DistStats, String> {
    let f = |key: &str| {
        j.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("distribution stats need a number '{key}'"))
    };
    Ok(DistStats {
        min: f("min")?,
        median: f("median")?,
        p95: f("p95")?,
        max: f("max")?,
    })
}

fn variation_to_json(v: &VariationStats) -> Json {
    Json::obj(vec![
        ("corners", Json::num(v.corners as f64)),
        ("skew", dist_to_json(&v.skew)),
        ("worst_slew", dist_to_json(&v.worst_slew)),
        ("latency", dist_to_json(&v.latency)),
    ])
}

fn variation_from_json(j: &Json) -> Result<VariationStats, String> {
    let dist = |key: &str| {
        dist_from_json(
            j.get(key)
                .ok_or_else(|| format!("variation stats need '{key}'"))?,
        )
    };
    Ok(VariationStats {
        corners: j
            .get("corners")
            .and_then(Json::as_u64)
            .ok_or("variation stats need an integer 'corners'")?,
        skew: dist("skew")?,
        worst_slew: dist("worst_slew")?,
        latency: dist("latency")?,
    })
}

/// Serializes a result event frame.
pub fn encode_event(event: &ResultEvent) -> Json {
    let mut fields = vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("result")),
        ("event", Json::Bool(true)),
        ("id", Json::num(event.id as f64)),
    ];
    match &event.outcome {
        Outcome::Completed(r) => {
            fields.push(("outcome", Json::str("completed")));
            let mut res = vec![
                ("name", Json::str(&r.name)),
                ("priority", Json::num(r.priority as f64)),
                ("dispatch_order", Json::num(r.dispatch_order as f64)),
                ("sinks", Json::num(r.sinks as f64)),
                ("levels", Json::num(r.levels as f64)),
                ("buffers", Json::num(r.buffers as f64)),
                ("buffer_cap_f", Json::num(r.buffer_cap_f)),
                ("wirelength_um", Json::num(r.wirelength_um)),
                ("synth_seconds", Json::num(r.synth_seconds)),
                ("verify_seconds", Json::num(r.verify_seconds)),
                ("estimate", timing_to_json(&r.estimate)),
                (
                    "verified",
                    r.verified.as_ref().map_or(Json::Null, timing_to_json),
                ),
            ];
            // Only present when the variation axis ran: absent keys keep
            // axis-off frames byte-identical to pre-variation servers, and
            // `decode_event` reads by key so old clients skip it unharmed.
            if let Some(v) = &r.variation {
                res.push(("variation", variation_to_json(v)));
            }
            if let Some(c) = &r.client_id {
                res.insert(1, ("client_id", Json::str(c)));
            }
            fields.push((
                "result",
                Json::Obj(res.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
            ));
        }
        Outcome::Cancelled => fields.push(("outcome", Json::str("cancelled"))),
        Outcome::Expired => fields.push(("outcome", Json::str("expired"))),
        Outcome::Failed { error } => {
            fields.push(("outcome", Json::str("failed")));
            fields.push(("error", Json::str(error)));
        }
    }
    Json::obj(fields)
}

/// Decodes a result event frame.
///
/// # Errors
///
/// A description of the malformation.
pub fn decode_event(j: &Json) -> Result<ResultEvent, String> {
    if !is_event(j) {
        return Err("not an event frame".into());
    }
    let id = j
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("event needs 'id'")?;
    let outcome = match j.get("outcome").and_then(Json::as_str) {
        Some("completed") => {
            let r = j.get("result").ok_or("completed event needs 'result'")?;
            let num = |key: &str| {
                r.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("result needs a number '{key}'"))
            };
            let int = |key: &str| {
                r.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("result needs an integer '{key}'"))
            };
            Outcome::Completed(Box::new(RemoteResult {
                id,
                name: r
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("result needs 'name'")?
                    .to_string(),
                priority: r
                    .get("priority")
                    .and_then(Json::as_i64)
                    .ok_or("result needs 'priority'")? as i32,
                dispatch_order: int("dispatch_order")?,
                client_id: r
                    .get("client_id")
                    .and_then(Json::as_str)
                    .map(str::to_string),
                sinks: int("sinks")?,
                levels: int("levels")?,
                buffers: int("buffers")?,
                // Additive key (sweep revision); zero from older servers.
                buffer_cap_f: r.get("buffer_cap_f").and_then(Json::as_f64).unwrap_or(0.0),
                wirelength_um: num("wirelength_um")?,
                synth_seconds: num("synth_seconds")?,
                verify_seconds: num("verify_seconds")?,
                estimate: timing_from_json(r.get("estimate").ok_or("result needs 'estimate'")?)?,
                verified: match r.get("verified") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(timing_from_json(v)?),
                },
                variation: match r.get("variation") {
                    None | Some(Json::Null) => None,
                    Some(v) => Some(variation_from_json(v)?),
                },
            }))
        }
        Some("cancelled") => Outcome::Cancelled,
        Some("expired") => Outcome::Expired,
        Some("failed") => Outcome::Failed {
            error: j
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        },
        _ => return Err("event needs a valid 'outcome'".into()),
    };
    Ok(ResultEvent { id, outcome })
}

// ---------------------------------------------------------------------------
// Sweep events

/// How one sweep point resolved, as labelled on `sweep_progress` frames
/// (the full payload travels on the point's own `result` event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPointOutcome {
    /// The point synthesized (its row joins the Pareto fold).
    Completed,
    /// The point was cancelled.
    Cancelled,
    /// The point's deadline passed first.
    Expired,
    /// The point failed.
    Failed,
}

impl SweepPointOutcome {
    /// The wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            SweepPointOutcome::Completed => "completed",
            SweepPointOutcome::Cancelled => "cancelled",
            SweepPointOutcome::Expired => "expired",
            SweepPointOutcome::Failed => "failed",
        }
    }

    fn from_str(s: &str) -> Option<SweepPointOutcome> {
        Some(match s {
            "completed" => SweepPointOutcome::Completed,
            "cancelled" => SweepPointOutcome::Cancelled,
            "expired" => SweepPointOutcome::Expired,
            "failed" => SweepPointOutcome::Failed,
            _ => return None,
        })
    }
}

/// A pushed `sweep_progress` event: one of a sweep's points resolved.
/// The server emits it right after the point's `result` event, so a
/// client that saw `done == total` has already seen every payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepProgressEvent {
    /// The sweep ordinal from the `submit_sweep` reply.
    pub sweep: u64,
    /// Points resolved so far, including this one.
    pub done: u64,
    /// Total points in the sweep.
    pub total: u64,
    /// The resolved point's request id.
    pub id: u64,
    /// How the point resolved.
    pub outcome: SweepPointOutcome,
}

/// Serializes a `sweep_progress` event frame.
pub fn encode_sweep_progress(event: &SweepProgressEvent) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("sweep_progress")),
        ("event", Json::Bool(true)),
        ("sweep", Json::num(event.sweep as f64)),
        ("done", Json::num(event.done as f64)),
        ("total", Json::num(event.total as f64)),
        ("id", Json::num(event.id as f64)),
        ("outcome", Json::str(event.outcome.as_str())),
    ])
}

/// Decodes a `sweep_progress` event frame.
///
/// # Errors
///
/// A description of the malformation.
pub fn decode_sweep_progress(j: &Json) -> Result<SweepProgressEvent, String> {
    if !is_event(j) {
        return Err("not an event frame".into());
    }
    let int = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("sweep_progress needs an integer '{key}'"))
    };
    Ok(SweepProgressEvent {
        sweep: int("sweep")?,
        done: int("done")?,
        total: int("total")?,
        id: int("id")?,
        outcome: j
            .get("outcome")
            .and_then(Json::as_str)
            .and_then(SweepPointOutcome::from_str)
            .ok_or("sweep_progress needs a valid 'outcome'")?,
    })
}

/// One completed sweep point's objective row on a `pareto` event, tying
/// the point's expansion ordinal and request id to its three objectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoWirePoint {
    /// The point's ordinal in the sweep expansion (index into the
    /// `submit_sweep` reply's `ids`).
    pub ordinal: u64,
    /// The point's request id.
    pub id: u64,
    /// Global skew (s).
    pub skew: f64,
    /// Total inserted buffer input capacitance (F).
    pub buffer_cap_f: f64,
    /// Max source-to-sink latency (s).
    pub latency: f64,
}

/// The terminal `pareto` event of a sweep: every completed point's
/// objective row plus the dominance front, exactly as the server's
/// grouping-independent [`ParetoFront`] fold produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoEvent {
    /// The sweep ordinal from the `submit_sweep` reply.
    pub sweep: u64,
    /// Total points in the sweep.
    pub total: u64,
    /// Points that completed (rows in `points`); cancelled / expired /
    /// failed points contribute nothing.
    pub completed: u64,
    /// One row per completed point, in expansion-ordinal order.
    pub points: Vec<ParetoWirePoint>,
    /// Ordinals of the non-dominated points, ascending.
    pub front: Vec<u64>,
}

impl ParetoEvent {
    /// Rebuilds the server's fold client-side: a [`ParetoFront`] over
    /// the carried rows. Its `front_ordinals()` must equal [`front`]
    /// (`ParetoFront::from_points` is the fold's fixpoint) — the
    /// conformance suite pins that.
    ///
    /// [`front`]: ParetoEvent::front
    pub fn to_front(&self) -> ParetoFront {
        ParetoFront::from_points(self.points.iter().map(|p| ParetoPoint {
            ordinal: p.ordinal as usize,
            skew: p.skew,
            buffer_cap: p.buffer_cap_f,
            latency: p.latency,
        }))
    }
}

/// Serializes a `pareto` event frame.
pub fn encode_pareto_event(event: &ParetoEvent) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("op", Json::str("pareto")),
        ("event", Json::Bool(true)),
        ("sweep", Json::num(event.sweep as f64)),
        ("total", Json::num(event.total as f64)),
        ("completed", Json::num(event.completed as f64)),
        (
            "points",
            Json::arr(
                event
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("ordinal", Json::num(p.ordinal as f64)),
                            ("id", Json::num(p.id as f64)),
                            ("skew", Json::num(p.skew)),
                            ("buffer_cap_f", Json::num(p.buffer_cap_f)),
                            ("latency", Json::num(p.latency)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "front",
            Json::arr(event.front.iter().map(|&o| Json::num(o as f64)).collect()),
        ),
    ])
}

/// Decodes a `pareto` event frame.
///
/// # Errors
///
/// A description of the malformation.
pub fn decode_pareto_event(j: &Json) -> Result<ParetoEvent, String> {
    if !is_event(j) {
        return Err("not an event frame".into());
    }
    let int = |key: &str| {
        j.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("pareto needs an integer '{key}'"))
    };
    let points = j
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("pareto needs a 'points' array")?
        .iter()
        .map(|p| {
            let pint = |key: &str| {
                p.get(key)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("pareto point needs an integer '{key}'"))
            };
            let pnum = |key: &str| {
                p.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("pareto point needs a number '{key}'"))
            };
            Ok(ParetoWirePoint {
                ordinal: pint("ordinal")?,
                id: pint("id")?,
                skew: pnum("skew")?,
                buffer_cap_f: pnum("buffer_cap_f")?,
                latency: pnum("latency")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let front = j
        .get("front")
        .and_then(Json::as_arr)
        .ok_or("pareto needs a 'front' array")?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<_>>>()
        .ok_or("pareto 'front' must be integers")?;
    Ok(ParetoEvent {
        sweep: int("sweep")?,
        total: int("total")?,
        completed: int("completed")?,
        points,
        front,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_geom::Point;

    fn spec_instance() -> Instance {
        Instance::with_die(
            "t",
            vec![
                Sink::new("a", Point::new(10.0, 20.0), 25e-15),
                Sink::new("b", Point::new(90.5, 40.0), 30e-15),
            ],
            Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
        )
    }

    fn sample_histogram(samples: &[u64]) -> Histogram {
        let mut h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h
    }

    #[test]
    fn instance_spec_roundtrips_exactly() {
        let inst = spec_instance();
        let back = instance_from_json(&instance_to_json(&inst)).unwrap();
        assert_eq!(back, inst);
    }

    #[test]
    fn instance_spec_without_die_uses_bounding_box() {
        let j = Json::parse(
            r#"{"name":"x","sinks":[{"name":"s","x":1,"y":2,"cap_f":10e-15},
                                     {"name":"t","x":5,"y":9,"cap_f":12e-15}]}"#,
        )
        .unwrap();
        let inst = instance_from_json(&j).unwrap();
        assert_eq!(inst.die().width(), 4.0);
        assert_eq!(inst.die().height(), 7.0);
    }

    #[test]
    fn instance_spec_rejects_bad_input() {
        for bad in [
            r#"{"sinks":[{"name":"s","x":1,"y":2,"cap_f":10e-15}]}"#, // no name
            r#"{"name":"x","sinks":[]}"#,                             // no sinks
            r#"{"name":"x"}"#,                                        // missing sinks
            r#"{"name":"x","sinks":[{"name":"s","x":1,"y":2}]}"#,     // no cap
            r#"{"name":"x","sinks":[{"name":"s","x":1,"y":2,"cap_f":-3e-15}]}"#,
            r#"{"name":"x","die":[0,0,1],"sinks":[{"name":"s","x":0,"y":0,"cap_f":1e-15}]}"#,
            r#"{"name":"x","die":[0,0,1,1],"sinks":[{"name":"s","x":5,"y":0,"cap_f":1e-15}]}"#,
        ] {
            let j = Json::parse(bad).unwrap();
            let err = instance_from_json(&j).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad}");
        }
    }

    #[test]
    fn options_patch_roundtrips_and_applies() {
        let patch = OptionsPatch {
            slew_limit_ps: Some(120.0),
            slew_target_ps: Some(90.0),
            grid_resolution: Some(31),
            h_correction: Some(HCorrection::Correct),
            threads: Some(2),
            library_subset: Some(3),
            buffering: Some(Buffering::VanGinneken),
            variation_corners: Some(48),
            variation_seed: Some(2010),
            variation_sigma_buffer: Some(0.08),
            variation_sigma_wire: Some(0.04),
            variation_sigma_slew: Some(0.02),
            variation_mode: Some(VariationMode::Resynthesize),
        };
        let back = OptionsPatch::from_json(&patch.to_json()).unwrap();
        assert_eq!(back, patch);

        let base = CtsOptions::default();
        let applied = patch.apply(&base);
        assert!((applied.slew_limit - 120e-12).abs() < 1e-18);
        assert!((applied.slew_target - 90e-12).abs() < 1e-18);
        assert_eq!(applied.grid_resolution, 31);
        assert_eq!(applied.h_correction, HCorrection::Correct);
        assert_eq!(applied.threads, 2);
        assert_eq!(applied.library_subset, 3);
        assert_eq!(applied.buffering, Buffering::VanGinneken);
        assert_eq!(applied.variation.corners, 48);
        assert_eq!(applied.variation.seed, 2010);
        assert_eq!(applied.variation.sigma_buffer, 0.08);
        assert_eq!(applied.variation.sigma_wire, 0.04);
        assert_eq!(applied.variation.sigma_slew, 0.02);
        assert_eq!(applied.variation.mode, VariationMode::Resynthesize);
        // Unset fields stay at base values.
        assert_eq!(applied.cost_alpha, base.cost_alpha);

        assert!(OptionsPatch::default().is_empty());
        assert!(!patch.is_empty());
    }

    #[test]
    fn options_patch_rejects_unknown_keys() {
        let j = Json::parse(r#"{"slew_limit":100}"#).unwrap();
        let err = OptionsPatch::from_json(&j).unwrap_err();
        assert!(err.message.contains("slew_limit"), "{err}");
    }

    #[test]
    fn variation_patch_fields_roundtrip_byte_identically() {
        // Encode → decode → re-encode must reproduce the exact same bytes:
        // the determinism suite replays frames verbatim.
        let patch = OptionsPatch {
            variation_corners: Some(100),
            variation_seed: Some((1u64 << 53) - 1), // largest exactly-representable seed
            variation_sigma_buffer: Some(0.05),
            variation_sigma_wire: Some(0.03),
            variation_sigma_slew: Some(0.01),
            variation_mode: Some(VariationMode::Evaluate),
            ..OptionsPatch::default()
        };
        let first = patch.to_json().to_string();
        let back = OptionsPatch::from_json(&Json::parse(&first).unwrap()).unwrap();
        assert_eq!(back, patch);
        assert_eq!(back.to_json().to_string(), first);
        assert_eq!(back.variation_seed, Some((1u64 << 53) - 1));
    }

    #[test]
    fn variation_patch_rejects_malformed_values() {
        for (bad, needle) in [
            (r#"{"variation_corners":1.5}"#, "variation_corners"),
            (r#"{"variation_seed":-1}"#, "variation_seed"),
            (r#"{"variation_sigma_wire":"big"}"#, "variation_sigma_wire"),
            (r#"{"variation_mode":"typical"}"#, "variation_mode"),
        ] {
            let j = Json::parse(bad).unwrap();
            let err = OptionsPatch::from_json(&j).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{bad}");
            assert!(err.message.contains(needle), "{bad}: {err}");
        }
    }

    #[test]
    fn pre_variation_frames_still_decode() {
        // A metrics reply from an older server lacks the corner counters:
        // they default to zero rather than failing the decode.
        let old = Json::parse(concat!(
            r#"{"ok":true,"seq":4,"op":"metrics","workers":1,"metrics":{"#,
            r#""submitted":2,"completed":2,"cancelled":0,"expired":0,"failed":0,"#,
            r#""queue_depth":0,"synth_seconds":0.5,"verify_seconds":0.25}}"#
        ))
        .unwrap();
        let (_, resp) = decode_response(&old).unwrap();
        match resp {
            Response::Metrics(m) => {
                assert_eq!(m.metrics.corners_evaluated, 0);
                assert_eq!(m.metrics.corner_lib_hits, 0);
                assert_eq!(m.metrics.corner_lib_misses, 0);
            }
            other => panic!("expected metrics, got {other:?}"),
        }

        // A completed event without a "variation" key decodes to None, and
        // an axis-off result encodes without the key at all — old and new
        // frames are byte-compatible in both directions.
        let ev = ResultEvent {
            id: 9,
            outcome: Outcome::Completed(Box::new(RemoteResult {
                id: 9,
                name: "plain".into(),
                priority: 0,
                dispatch_order: 1,
                client_id: None,
                sinks: 4,
                levels: 2,
                buffers: 1,
                buffer_cap_f: 0.0,
                wirelength_um: 100.0,
                synth_seconds: 0.1,
                verify_seconds: 0.0,
                estimate: TimingStats {
                    worst_slew: 50e-12,
                    skew: 1e-12,
                    latency: 1e-9,
                },
                verified: None,
                variation: None,
            })),
        };
        let frame = encode_event(&ev).to_string();
        assert!(!frame.contains("variation"), "{frame}");
        let back = decode_event(&Json::parse(&frame).unwrap()).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn requests_roundtrip() {
        let requests = [
            Request::Hello {
                version: PROTOCOL_VERSION,
                client_id: Some("tester".into()),
            },
            Request::Submit {
                instance: spec_instance(),
                options: OptionsPatch {
                    grid_resolution: Some(21),
                    ..OptionsPatch::default()
                },
                priority: -4,
                deadline_ms: Some(1500),
                client_id: Some("c0".into()),
                publish_levels: true,
            },
            Request::Submit {
                instance: spec_instance(),
                options: OptionsPatch::default(),
                priority: 0,
                deadline_ms: None,
                client_id: None,
                publish_levels: false,
            },
            Request::SubmitBatch {
                entries: vec![
                    BatchEntry {
                        instance: spec_instance(),
                        priority: 3,
                        deadline_ms: Some(750),
                        client_id: Some("sweep".into()),
                        publish_levels: true,
                    },
                    BatchEntry::new(spec_instance()),
                ],
                options: OptionsPatch {
                    h_correction: Some(HCorrection::ReEstimate),
                    ..OptionsPatch::default()
                },
            },
            Request::SubmitSweep {
                instance: spec_instance(),
                base: OptionsPatch {
                    slew_target_ps: Some(80.0),
                    ..OptionsPatch::default()
                },
                range: SweepRange::Axes(SweepAxesSpec {
                    slew_targets_ps: vec![60.0, 90.0],
                    library_subsets: vec![0, 2],
                    h_corrections: vec![HCorrection::Off, HCorrection::Correct],
                    bufferings: vec![Buffering::VanGinneken],
                }),
                priority: 2,
                deadline_ms: Some(9000),
                client_id: Some("sweeper".into()),
                publish_levels: true,
            },
            Request::SubmitSweep {
                instance: spec_instance(),
                base: OptionsPatch::default(),
                range: SweepRange::Points(vec![
                    SweepPointSpec::default(),
                    SweepPointSpec {
                        slew_target_ps: Some(75.0),
                        library_subset: Some(1),
                        h_correction: Some(HCorrection::ReEstimate),
                        buffering: Some(Buffering::Greedy),
                    },
                ]),
                priority: 0,
                deadline_ms: None,
                client_id: None,
                publish_levels: false,
            },
            Request::FetchTree {
                id: 12,
                chunk: Some(64),
                levels: false,
            },
            Request::FetchTree {
                id: 13,
                chunk: None,
                levels: true,
            },
            Request::Status { id: 7 },
            Request::Cancel { id: 9 },
            Request::Metrics,
            Request::Stats,
            Request::Shutdown,
        ];
        for (i, req) in requests.iter().enumerate() {
            let frame = encode_request(i as u64, req);
            // Through text, as on the wire.
            let reparsed = Json::parse(&frame.to_string()).unwrap();
            let (seq, back) = decode_request(&reparsed).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn metrics_reply_without_verify_counters_parses_as_zero() {
        // A pre-counter server omits the verify-cache fields; the client
        // must default them to 0, not reject the frame.
        let frame = r#"{"ok":true,"seq":4,"op":"metrics","workers":2,"metrics":{"submitted":10,"completed":7,"cancelled":1,"expired":1,"failed":1,"queue_depth":0,"synth_seconds":1.25,"verify_seconds":0.5}}"#;
        let j = Json::parse(frame).unwrap();
        let (seq, resp) = decode_response(&j).unwrap();
        assert_eq!(seq, Some(4));
        let Response::Metrics(reply) = resp else {
            panic!("expected a metrics reply, got {resp:?}");
        };
        assert_eq!(reply.metrics.submitted, 10);
        assert_eq!(reply.metrics.stages_simulated, 0);
        assert_eq!(reply.metrics.stages_reused, 0);
        assert_eq!(reply.metrics.symbolic_hits, 0);
        assert_eq!(reply.metrics.symbolic_misses, 0);
        // Same for the per-stage throughput fields (arrived even later).
        assert_eq!(reply.metrics.topology_seconds, 0.0);
        assert_eq!(reply.metrics.merge_seconds, 0.0);
        assert_eq!(reply.metrics.sinks_synthesized, 0);
        assert_eq!(reply.metrics.sinks_verified, 0);
    }

    #[test]
    fn options_patch_rejects_bad_buffering_value() {
        let j = Json::parse(r#"{"buffering":"lazy"}"#).unwrap();
        let err = OptionsPatch::from_json(&j).unwrap_err();
        assert!(err.message.contains("buffering"), "{err}");
    }

    #[test]
    fn responses_roundtrip() {
        let responses = vec![
            (
                Some(0),
                Response::Hello {
                    version: 1,
                    server: "cts-serve/0.1.0".into(),
                    workers: 4,
                },
            ),
            (Some(1), Response::Submitted { id: 3 }),
            (Some(6), Response::BatchSubmitted { ids: vec![4, 5, 6] }),
            (
                Some(9),
                Response::SweepSubmitted {
                    sweep: 1,
                    ids: vec![7, 8, 9, 10],
                },
            ),
            (
                Some(7),
                Response::TreeHeader(TreeInfo {
                    id: 4,
                    name: "blk".into(),
                    nodes: 57,
                    chunks: 2,
                    source: 56,
                    partial: false,
                    levels_done: 0,
                }),
            ),
            (
                Some(10),
                Response::TreeHeader(TreeInfo {
                    id: 5,
                    name: "blk".into(),
                    nodes: 24,
                    chunks: 1,
                    source: 0,
                    partial: true,
                    levels_done: 3,
                }),
            ),
            (
                Some(2),
                Response::Status {
                    id: 3,
                    state: RequestStatus::InFlight,
                },
            ),
            (Some(3), Response::Cancelled { id: 3 }),
            (
                Some(4),
                Response::Metrics(MetricsReply {
                    workers: 2,
                    metrics: ServiceMetrics {
                        submitted: 10,
                        completed: 7,
                        cancelled: 1,
                        expired: 1,
                        failed: 1,
                        queue_depth: 0,
                        synth_seconds: 1.25,
                        verify_seconds: 0.5,
                        stages_simulated: 42,
                        stages_reused: 18,
                        symbolic_hits: 40,
                        symbolic_misses: 2,
                        topology_seconds: 0.25,
                        merge_seconds: 0.75,
                        sinks_synthesized: 640,
                        sinks_verified: 512,
                        corners_evaluated: 96,
                        corner_lib_hits: 80,
                        corner_lib_misses: 16,
                        queue_depth_high_water: 4,
                        sweeps_submitted: 2,
                    },
                }),
            ),
            (
                Some(8),
                Response::Stats(Box::new(StatsReply {
                    workers: 2,
                    metrics: ServiceMetrics {
                        submitted: 3,
                        completed: 3,
                        queue_depth_high_water: 2,
                        ..ServiceMetrics::default()
                    },
                    queue_wait: vec![
                        (-1, sample_histogram(&[0, 90_000])),
                        (5, sample_histogram(&[12])),
                    ],
                    synth_latency: sample_histogram(&[1_000_000, 2_000_000, 3_500_000]),
                    verify_latency: Histogram::new(),
                    spans: vec![
                        SpanStat {
                            name: "pipeline.merge_level".into(),
                            durations: sample_histogram(&[250_000, 300_000]),
                        },
                        SpanStat {
                            name: "verify.tree".into(),
                            durations: sample_histogram(&[7]),
                        },
                    ],
                    dropped: 1,
                })),
            ),
            (Some(5), Response::ShuttingDown),
            (
                None,
                Response::Error {
                    code: ErrorCode::BadJson,
                    message: "unparseable".into(),
                },
            ),
        ];
        for (seq, resp) in &responses {
            let frame = encode_response(*seq, resp);
            let reparsed = Json::parse(&frame.to_string()).unwrap();
            assert!(!is_event(&reparsed));
            let (got_seq, back) = decode_response(&reparsed).unwrap();
            assert_eq!(&got_seq, seq);
            assert_eq!(&back, resp);
        }
    }

    #[test]
    fn stats_reply_reencodes_byte_identically() {
        // The histogram percentile fields are derived from the bucket
        // parts at encode time, so decode → re-encode must reproduce the
        // frame byte for byte — the property the determinism suite and
        // the conformance transcript rely on.
        let reply = Response::Stats(Box::new(StatsReply {
            workers: 1,
            metrics: ServiceMetrics {
                submitted: 2,
                completed: 2,
                synth_seconds: 0.125,
                queue_depth_high_water: 2,
                ..ServiceMetrics::default()
            },
            queue_wait: vec![(0, sample_histogram(&[1_500, 40_000]))],
            synth_latency: sample_histogram(&[2_000_000, 9_000_000]),
            verify_latency: sample_histogram(&[750_000]),
            spans: vec![SpanStat {
                name: "service.synth".into(),
                durations: sample_histogram(&[2_000_000, 9_000_000]),
            }],
            dropped: 0,
        }));
        let first = encode_response(Some(3), &reply).to_string();
        let (seq, back) = decode_response(&Json::parse(&first).unwrap()).unwrap();
        assert_eq!(seq, Some(3));
        assert_eq!(back, reply);
        assert_eq!(encode_response(Some(3), &back).to_string(), first);
        // The derived percentiles on the wire match what a client
        // recomputes from the decoded buckets.
        let Response::Stats(decoded) = back else {
            unreachable!()
        };
        let j = Json::parse(&first).unwrap();
        let wire_p99 = j
            .get("synth_latency")
            .and_then(|h| h.get("p99_ns"))
            .and_then(Json::as_u64)
            .unwrap();
        assert_eq!(decoded.synth_latency.percentile(99.0), wire_p99);
    }

    #[test]
    fn empty_stats_reply_pins_its_frame_bytes() {
        // A paused, fresh server with no recorder installed answers
        // `stats` with exactly this frame — the conformance transcript in
        // docs/PROTOCOL.md replays it verbatim.
        let reply = Response::Stats(Box::new(StatsReply {
            workers: 1,
            ..StatsReply::default()
        }));
        let frame = encode_response(Some(2), &reply).to_string();
        let expected = concat!(
            r#"{"ok":true,"seq":2,"op":"stats","workers":1,"metrics":{"#,
            r#""submitted":0,"completed":0,"cancelled":0,"expired":0,"failed":0,"#,
            r#""queue_depth":0,"synth_seconds":0,"verify_seconds":0,"#,
            r#""stages_simulated":0,"stages_reused":0,"symbolic_hits":0,"#,
            r#""symbolic_misses":0,"topology_seconds":0,"merge_seconds":0,"#,
            r#""sinks_synthesized":0,"sinks_verified":0,"corners_evaluated":0,"#,
            r#""corner_lib_hits":0,"corner_lib_misses":0,"queue_depth_high_water":0,"#,
            r#""sweeps_submitted":0},"#,
            r#""queue_wait":[],"#,
            r#""synth_latency":{"count":0,"total_ns":0,"max_ns":0,"p50_ns":0,"p90_ns":0,"p99_ns":0,"buckets":[]},"#,
            r#""verify_latency":{"count":0,"total_ns":0,"max_ns":0,"p50_ns":0,"p90_ns":0,"p99_ns":0,"buckets":[]},"#,
            r#""spans":[],"dropped":0}"#,
        );
        assert_eq!(frame, expected);
    }

    #[test]
    fn stats_reply_decode_is_lenient() {
        // 'dropped' is absent on servers that predate drop accounting;
        // out-of-range bucket indices are ignored, not fatal.
        let frame = concat!(
            r#"{"ok":true,"seq":1,"op":"stats","workers":1,"metrics":{"#,
            r#""submitted":0,"completed":0,"cancelled":0,"expired":0,"failed":0,"#,
            r#""queue_depth":0,"synth_seconds":0,"verify_seconds":0},"#,
            r#""queue_wait":[],"#,
            r#""synth_latency":{"count":2,"total_ns":30,"max_ns":20,"buckets":[[4,1],[5,1],[900,7]]},"#,
            r#""verify_latency":{"count":0,"total_ns":0,"max_ns":0,"buckets":[]},"#,
            r#""spans":[]}"#,
        );
        let (_, resp) = decode_response(&Json::parse(frame).unwrap()).unwrap();
        let Response::Stats(s) = resp else {
            panic!("expected a stats reply, got {resp:?}");
        };
        assert_eq!(s.dropped, 0);
        assert_eq!(s.metrics.queue_depth_high_water, 0);
        assert_eq!(s.synth_latency.count(), 2);
        assert_eq!(s.synth_latency.nonzero_buckets(), vec![(4, 1), (5, 1)]);
        // Percentiles were not on the wire at all — the client derives
        // them from the buckets.
        assert_eq!(s.synth_latency.percentile(100.0), 20);
    }

    #[test]
    fn events_roundtrip() {
        let events = vec![
            ResultEvent {
                id: 5,
                outcome: Outcome::Completed(Box::new(RemoteResult {
                    id: 5,
                    name: "r1".into(),
                    priority: 2,
                    dispatch_order: 11,
                    client_id: Some("tenant".into()),
                    sinks: 267,
                    levels: 9,
                    buffers: 120,
                    buffer_cap_f: 1.375e-13,
                    wirelength_um: 12_345.625,
                    synth_seconds: 2.5,
                    verify_seconds: 1.25,
                    estimate: TimingStats {
                        worst_slew: 81.5e-12,
                        skew: 3.25e-12,
                        latency: 1.75e-9,
                    },
                    verified: Some(TimingStats {
                        worst_slew: 83.0e-12,
                        skew: 4.0e-12,
                        latency: 1.8e-9,
                    }),
                    variation: Some(VariationStats {
                        corners: 64,
                        skew: DistStats {
                            min: 3.0e-12,
                            median: 3.5e-12,
                            p95: 4.25e-12,
                            max: 4.5e-12,
                        },
                        worst_slew: DistStats {
                            min: 80.0e-12,
                            median: 82.0e-12,
                            p95: 85.0e-12,
                            max: 86.5e-12,
                        },
                        latency: DistStats {
                            min: 1.7e-9,
                            median: 1.75e-9,
                            p95: 1.8e-9,
                            max: 1.8125e-9,
                        },
                    }),
                })),
            },
            ResultEvent {
                id: 6,
                outcome: Outcome::Cancelled,
            },
            ResultEvent {
                id: 7,
                outcome: Outcome::Expired,
            },
            ResultEvent {
                id: 8,
                outcome: Outcome::Failed {
                    error: "slew target unachievable".into(),
                },
            },
        ];
        for ev in &events {
            let frame = encode_event(ev);
            let reparsed = Json::parse(&frame.to_string()).unwrap();
            assert!(is_event(&reparsed));
            let back = decode_event(&reparsed).unwrap();
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn tree_events_roundtrip_bit_for_bit() {
        // A small but kind-complete tree: sink, buffer, joint, source.
        let mut tree = ClockTree::new();
        let a = tree.add_sink(0, &Sink::new("a", Point::new(0.0, 0.0), 25e-15));
        let b = tree.add_sink(1, &Sink::new("b", Point::new(200.125, 0.0), 30e-15));
        let buf = tree.add_buffer(Point::new(50.5, 0.0), BufferId(1));
        tree.attach(buf, a, 50.5);
        let m = tree.add_joint(Point::new(100.0, 0.0));
        tree.attach(m, buf, 49.5);
        tree.attach(m, b, 101.0 + 2.0f64.powi(-40)); // exercise exact float carry
        let src = tree.add_source(m, BufferId(2));

        // Stream in 2-node chunks, rebuild, compare field for field.
        let nodes = tree.nodes();
        let mut rebuilt: Vec<TreeNode> = Vec::new();
        for (k, chunk) in nodes.chunks(2).enumerate() {
            let ev = TreeChunkEvent {
                id: 9,
                chunk: k as u64,
                nodes: chunk.to_vec(),
            };
            let frame = Json::parse(&encode_tree_chunk(&ev).to_string()).unwrap();
            assert!(is_event(&frame));
            assert_eq!(event_op(&frame), Some("tree"));
            match decode_tree_event(&frame).unwrap() {
                TreeEvent::Chunk(back) => {
                    assert_eq!(back, ev);
                    rebuilt.extend(back.nodes);
                }
                TreeEvent::Done(_) => panic!("chunk decoded as terminal"),
            }
        }
        let back = ClockTree::from_nodes(rebuilt).expect("streamed tree is valid");
        assert_eq!(back, tree, "geometry must round-trip bit-for-bit");
        assert_eq!(back.node(src).kind, tree.node(src).kind);

        let done = TreeDoneEvent {
            id: 9,
            level_stats: vec![LevelStats {
                level: 1,
                pairs: 1,
                seed_promoted: false,
                flippings: 0,
                buffers_inserted: 1,
                worst_skew_estimate: 3.25e-12,
                max_latency_estimate: 1.75e-9,
                nodes_total: 5,
            }],
        };
        let frame = Json::parse(&encode_tree_done(&done).to_string()).unwrap();
        match decode_tree_event(&frame).unwrap() {
            TreeEvent::Done(back) => assert_eq!(back, done),
            TreeEvent::Chunk(_) => panic!("terminal decoded as chunk"),
        }
    }

    #[test]
    fn sweep_requests_reject_bad_shapes() {
        let base = r#"{"op":"submit_sweep","seq":1,"instance":{"name":"x","sinks":[{"name":"s","x":1,"y":2,"cap_f":10e-15},{"name":"t","x":5,"y":9,"cap_f":12e-15}]}"#;
        for (tail, needle) in [
            (r#"}"#, "'axes' or 'points'"),
            (r#","axes":{},"points":[{}]}"#, "not both"),
            (r#","points":[]}"#, "at least one point"),
            (
                r#","points":[{"grid_resolution":9}]}"#,
                "unknown sweep point key 'grid_resolution'",
            ),
            (
                r#","axes":{"slew_ps":[60]}}"#,
                "unknown sweep axis 'slew_ps'",
            ),
            (r#","axes":{"buffering":["lazy"]}}"#, "'buffering' must be"),
        ] {
            let j = Json::parse(&format!("{base}{tail}")).unwrap();
            let err = decode_request(&j).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest);
            assert!(err.message.contains(needle), "{}: {}", tail, err.message);
        }
    }

    #[test]
    fn sweep_axes_convert_like_individual_patches() {
        // The ps → s conversion must be the exact expression the options
        // patch applies, so a swept point reproduces an individually
        // patched submission bit for bit.
        let axes = SweepAxesSpec {
            slew_targets_ps: vec![62.5, 90.0],
            ..SweepAxesSpec::default()
        };
        let core = axes.to_axes();
        for (ps, s) in axes.slew_targets_ps.iter().zip(&core.slew_targets) {
            let patched = OptionsPatch {
                slew_target_ps: Some(*ps),
                ..OptionsPatch::default()
            }
            .apply(&CtsOptions::default());
            assert_eq!(patched.slew_target.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn sweep_events_roundtrip() {
        let progress = SweepProgressEvent {
            sweep: 2,
            done: 1,
            total: 3,
            id: 14,
            outcome: SweepPointOutcome::Completed,
        };
        let frame = Json::parse(&encode_sweep_progress(&progress).to_string()).unwrap();
        assert!(is_event(&frame));
        assert_eq!(event_op(&frame), Some("sweep_progress"));
        assert_eq!(decode_sweep_progress(&frame).unwrap(), progress);

        let pareto = ParetoEvent {
            sweep: 2,
            total: 3,
            completed: 2,
            points: vec![
                ParetoWirePoint {
                    ordinal: 0,
                    id: 14,
                    skew: 3.25e-12,
                    buffer_cap_f: 1.5e-13,
                    latency: 1.75e-9,
                },
                ParetoWirePoint {
                    ordinal: 2,
                    id: 16,
                    skew: 2.0e-12,
                    buffer_cap_f: 2.5e-13,
                    latency: 1.5e-9,
                },
            ],
            front: vec![0, 2],
        };
        let frame = Json::parse(&encode_pareto_event(&pareto).to_string()).unwrap();
        assert!(is_event(&frame));
        assert_eq!(event_op(&frame), Some("pareto"));
        let back = decode_pareto_event(&frame).unwrap();
        assert_eq!(back, pareto);
        // The client-side refold reproduces the server's front.
        assert_eq!(
            back.to_front()
                .front_ordinals()
                .iter()
                .map(|&o| o as u64)
                .collect::<Vec<_>>(),
            back.front
        );
    }

    #[test]
    fn error_codes_roundtrip() {
        for code in [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownId,
            ErrorCode::ShuttingDown,
        ] {
            assert_eq!(ErrorCode::from_wire(code.as_str()), Some(code));
        }
        assert_eq!(ErrorCode::from_wire("nope"), None);
    }
}
