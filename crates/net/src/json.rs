//! A minimal JSON value: parse, serialize, build, inspect.
//!
//! The build environment is offline, so there is no `serde_json`; this
//! module implements the subset of JSON the wire protocol needs — which
//! is all of JSON's *data model*, hand-rolled small:
//!
//! * [`Json::parse`] — a recursive-descent parser with precise byte
//!   offsets in errors, full string escapes (including `\uXXXX`
//!   surrogate pairs), strict number grammar, a nesting-depth limit, and
//!   rejection of trailing input.
//! * [`fmt::Display`] — compact single-line serialization (never emits a
//!   raw newline, which is what makes newline framing sound); numbers
//!   round-trip exactly (Rust's shortest-representation float printing),
//!   integers print without a fraction.
//! * Builders ([`Json::obj`], [`Json::str`], …) and accessors
//!   ([`Json::get`], [`Json::as_f64`], …) so protocol code reads
//!   declaratively.
//!
//! Objects preserve insertion order (they are association lists, not
//! maps): serialized protocol frames are deterministic, which the
//! round-trip property tests rely on. [`Json::get`] returns the first
//! match; duplicate keys are tolerated on input (last writer does *not*
//! win — the first does) and never produced by this module.

use std::fmt;

/// Maximum nesting depth [`Json::parse`] accepts. Deeper input is
/// rejected rather than risking a stack overflow on hostile frames.
pub const MAX_DEPTH: usize = 128;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. JSON has one number type; `f64` holds every integer the
    /// protocol uses exactly (ids stay below 2^53). Non-finite values
    /// cannot be parsed and serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: an insertion-ordered association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A number value.
    pub fn num(n: f64) -> Json {
        Json::Num(n)
    }

    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array value.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// First value under `key`, if this is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is a non-negative integer small
    /// enough to be exact.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as an `i64`, if it is an integer small enough to be
    /// exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The field slice, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON value from `text`, rejecting trailing non-space
    /// input.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem: syntax
    /// errors, unescaped control characters, lone surrogates, numbers
    /// outside `f64`'s finite range, nesting beyond [`MAX_DEPTH`], or
    /// trailing input.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input after the value"));
        }
        Ok(value)
    }
}

/// A parse failure: where and why.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run = self.pos; // start of the current unescaped run
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.run_str(run)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.run_str(run)?);
                    self.pos += 1;
                    out.push(self.escape()?);
                    run = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err(format!("unescaped control byte 0x{b:02x} in string")))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// The raw (escape-free) slice from `run` to the cursor; always valid
    /// UTF-8 because the input is `&str` and runs break at ASCII bytes.
    fn run_str(&self, run: usize) -> Result<&'a str, JsonError> {
        std::str::from_utf8(&self.bytes[run..self.pos])
            .map_err(|_| self.err("string run is not UTF-8"))
    }

    fn escape(&mut self) -> Result<char, JsonError> {
        let c = match self.peek() {
            None => return Err(self.err("unterminated escape")),
            Some(b'"') => '"',
            Some(b'\\') => '\\',
            Some(b'/') => '/',
            Some(b'b') => '\u{0008}',
            Some(b'f') => '\u{000c}',
            Some(b'n') => '\n',
            Some(b'r') => '\r',
            Some(b't') => '\t',
            Some(b'u') => {
                self.pos += 1;
                return self.unicode_escape();
            }
            Some(other) => return Err(self.err(format!("invalid escape '\\{}'", other as char))),
        };
        self.pos += 1;
        Ok(c)
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ASCII in \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("non-hex in \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let first = self.hex4()?;
        let code = match first {
            0xD800..=0xDBFF => {
                // High surrogate: a low surrogate escape must follow.
                if self.bytes[self.pos..].starts_with(b"\\u") {
                    self.pos += 2;
                    let low = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&low) {
                        return Err(self.err("high surrogate not followed by a low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    return Err(self.err("lone high surrogate"));
                }
            }
            0xDC00..=0xDFFF => return Err(self.err("lone low surrogate")),
            c => c,
        };
        char::from_u32(code).ok_or_else(|| self.err("escape is not a scalar value"))
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after '.'"));
            }
            self.digits();
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in the exponent"));
            }
            self.digits();
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number grammar is ASCII");
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number '{text}'")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number '{text}' overflows f64")));
        }
        Ok(Json::Num(n))
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(n) => write_number(f, *n),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    value.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_number(f: &mut fmt::Formatter<'_>, n: f64) -> fmt::Result {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; `null` is the conventional lossy
        // mapping. The parser never produces non-finite numbers, so
        // round-tripping anything parseable is exact.
        return f.write_str("null");
    }
    if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        // Exact integer: print without a fraction ("3", not "3.0" —
        // Display for f64 would print "3" anyway, but going through i64
        // also normalizes -0.0 to 0).
        return write!(f, "{}", n as i64);
    }
    // Rust's float Display prints the shortest string that parses back to
    // the same bits, and never uses exponent notation — both valid JSON
    // and exactly round-trippable.
    write!(f, "{n}")
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            '\u{0008}' => f.write_str("\\b")?,
            '\u{000c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_str(c.encode_utf8(&mut [0u8; 4]))?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("serialized JSON reparses")
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.0),
            Json::Num(-0.0),
            Json::Num(3.0),
            Json::Num(-17.25),
            Json::Num(1.0e300),
            Json::Num(5e-324), // smallest subnormal
            Json::Num(f64::MAX),
            Json::str(""),
            Json::str("plain"),
            Json::str("esc \" \\ \n \r \t \u{0008} \u{000c} \u{0001}"),
            Json::str("unicode: π 💡 \u{10FFFF}"),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
        assert_eq!(Json::Num(-0.0).to_string(), "0");
        assert_eq!(Json::Num(2.5).to_string(), "2.5");
    }

    #[test]
    fn nonfinite_serializes_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn containers_roundtrip_and_preserve_order() {
        let v = Json::obj(vec![
            ("b", Json::arr(vec![Json::Num(1.0), Json::Null])),
            ("a", Json::obj(vec![("nested", Json::Bool(false))])),
            ("", Json::str("empty key")),
        ]);
        assert_eq!(roundtrip(&v), v);
        assert_eq!(
            v.to_string(),
            r#"{"b":[1,null],"a":{"nested":false},"":"empty key"}"#
        );
    }

    #[test]
    fn parses_standard_syntax() {
        let v = Json::parse(
            " { \"k\" : [ 1 , 2.5e1 , -3 ] , \"s\" : \"a\\u0041\\ud83d\\ude00b\" , \"n\" : null } ",
        )
        .unwrap();
        assert_eq!(
            v.get("k").unwrap().as_arr().unwrap(),
            &[Json::Num(1.0), Json::Num(25.0), Json::Num(-3.0)]
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("aA😀b"));
        assert!(v.get("n").unwrap().is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "   ",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "tru",
            "nul",
            "+1",
            "01",
            "1.",
            ".5",
            "1e",
            "1e+",
            "--1",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"\\u12\"",
            "\"\\ud800\"",        // lone high surrogate
            "\"\\udc00\"",        // lone low surrogate
            "\"\\ud800\\u0041\"", // high surrogate + non-surrogate
            "\u{0007}",
            "1 2",
            "[1] trailing",
            "1e999", // overflows f64
            "nan",
            "Infinity",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_unescaped_control_in_string() {
        assert!(Json::parse("\"a\u{0000}b\"").is_err());
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep_ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n":7,"f":2.5,"neg":-3,"s":"x","b":true,"a":[],"o":{}}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_i64(), Some(7));
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert!(v.get("a").unwrap().as_arr().unwrap().is_empty());
        assert!(v.get("o").unwrap().as_obj().unwrap().is_empty());
        assert!(v.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
    }

    #[test]
    fn error_carries_offset() {
        let err = Json::parse(r#"{"ok": bogus}"#).unwrap_err();
        assert_eq!(err.offset, 7);
    }
}
