//! Newline-delimited JSON framing.
//!
//! One frame = one JSON value serialized on one line, terminated by
//! `\n`. The serializer in [`crate::json`] never emits a raw newline
//! (strings escape them), so the delimiter is unambiguous and a reader
//! can always resynchronize at the next `\n` — which is what lets a
//! server answer a malformed frame with an error *reply* instead of
//! dropping the connection.
//!
//! The error taxonomy mirrors that: [`read_frame`] separates
//! *recoverable* frame problems (unparseable JSON on an intact line —
//! returned as `Ok(Some(Err(_)))`) from *fatal* transport problems (I/O
//! errors, non-UTF-8 bytes, or a frame above [`MAX_FRAME_BYTES`], where
//! no resynchronization point is known — returned as `Err(_)`).

use crate::json::{Json, JsonError};
use std::io::{self, BufRead, Read, Write};

/// Upper bound on one frame's byte length (including the newline). A
/// frame larger than this is a fatal framing error: the reader refuses to
/// buffer it, and with the line boundary unknown the stream cannot be
/// resynchronized. 8 MiB fits instances of ~10⁵ sinks with slack.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Reads one frame.
///
/// * `Ok(None)` — clean end of stream (EOF at a frame boundary).
/// * `Ok(Some(Ok(json)))` — a well-formed frame.
/// * `Ok(Some(Err(e)))` — the line was intact but is not valid JSON; the
///   stream is still synchronized and the caller may keep reading (after,
///   say, sending an error reply).
///
/// # Errors
///
/// Fatal transport problems: underlying I/O errors, a frame exceeding
/// [`MAX_FRAME_BYTES`], or non-UTF-8 frame bytes.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Result<Json, JsonError>>> {
    let mut buf = Vec::new();
    let n = r
        .by_ref()
        .take(MAX_FRAME_BYTES as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if buf.last() == Some(&b'\n') {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop(); // tolerate CRLF from line-mode tools (netcat, telnet)
        }
    } else if buf.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
        ));
    }
    // else: EOF terminated the final frame instead of '\n'; parse it as-is.
    let text = std::str::from_utf8(&buf)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))?;
    Ok(Some(Json::parse(text)))
}

/// Writes one frame: the compact serialization of `json` plus `\n`.
/// Does not flush — callers batching frames flush once.
///
/// # Errors
///
/// The underlying I/O error.
pub fn write_frame(w: &mut impl Write, json: &Json) -> io::Result<()> {
    let mut line = json.to_string();
    line.push('\n');
    w.write_all(line.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(bytes: &[u8]) -> Vec<io::Result<Option<Result<Json, JsonError>>>> {
        let mut r = BufReader::new(bytes);
        let mut out = Vec::new();
        loop {
            let item = read_frame(&mut r);
            let stop = matches!(item, Ok(None) | Err(_));
            out.push(item);
            if stop {
                return out;
            }
        }
    }

    #[test]
    fn frames_roundtrip() {
        let values = vec![
            Json::obj(vec![("op", Json::str("hello"))]),
            Json::arr(vec![Json::Num(1.0), Json::str("line\nbreak")]),
            Json::Null,
        ];
        let mut buf = Vec::new();
        for v in &values {
            write_frame(&mut buf, v).unwrap();
        }
        assert_eq!(buf.iter().filter(|&&b| b == b'\n').count(), 3);
        let mut r = BufReader::new(buf.as_slice());
        for v in &values {
            let got = read_frame(&mut r).unwrap().unwrap().unwrap();
            assert_eq!(&got, v);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn malformed_line_is_recoverable() {
        let frames = read_all(b"{\"ok\":1}\nnot json\n42\n");
        assert_eq!(frames.len(), 4);
        assert!(matches!(&frames[0], Ok(Some(Ok(_)))));
        assert!(
            matches!(&frames[1], Ok(Some(Err(_)))),
            "bad JSON, stream intact"
        );
        // The stream resynchronized at the next newline.
        assert!(matches!(&frames[2], Ok(Some(Ok(Json::Num(n)))) if *n == 42.0));
        assert!(matches!(&frames[3], Ok(None)));
    }

    #[test]
    fn empty_line_is_recoverable_garbage() {
        let frames = read_all(b"\n1\n");
        assert!(matches!(&frames[0], Ok(Some(Err(_)))));
        assert!(matches!(&frames[1], Ok(Some(Ok(_)))));
    }

    #[test]
    fn crlf_is_tolerated() {
        let frames = read_all(b"{\"a\":1}\r\n");
        assert!(matches!(&frames[0], Ok(Some(Ok(_)))));
    }

    #[test]
    fn final_frame_without_newline_parses() {
        let frames = read_all(b"7");
        assert!(matches!(&frames[0], Ok(Some(Ok(Json::Num(n)))) if *n == 7.0));
        assert!(matches!(&frames[1], Ok(None)));
    }

    #[test]
    fn oversized_frame_is_fatal() {
        let mut big = vec![b'['; MAX_FRAME_BYTES + 10];
        big.push(b'\n');
        let mut r = BufReader::new(big.as_slice());
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn non_utf8_frame_is_fatal() {
        let mut r = BufReader::new(&b"\xff\xfe\n"[..]);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
