//! A blocking Rust client for the wire protocol.
//!
//! [`Client`] owns one connection: it performs the `hello` handshake at
//! connect, correlates replies by `seq`, and stashes result events that
//! arrive while it is waiting for something else — so any submit/wait
//! interleaving works, including submitting many requests before waiting
//! any ([`Client::wait_result`] returns them in whatever order the
//! server resolved them).
//!
//! The client is deliberately synchronous and single-threaded: one
//! conversation per connection. Concurrency comes from opening more
//! connections (see `examples/remote_flow.rs`, which runs several client
//! threads against one server).

use crate::frame::{read_frame, write_frame};
use crate::json::Json;
use crate::proto::{
    decode_event, decode_pareto_event, decode_response, decode_sweep_progress, decode_tree_event,
    encode_request, event_op, is_event, BatchEntry, ErrorCode, MetricsReply, OptionsPatch, Outcome,
    ParetoEvent, RemoteTree, Request, Response, StatsReply, SweepProgressEvent, SweepRange,
    TreeEvent, TreeInfo, PROTOCOL_VERSION,
};
use cts_core::{ClockTree, Instance, LevelStats, RequestStatus, TreeNode, TreeNodeId};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A client-side failure.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (connect, read, write, disconnect).
    Io(io::Error),
    /// The server sent something the protocol does not allow.
    Protocol(String),
    /// The server answered with a structured error reply.
    Remote {
        /// The machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Remote { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// What the server said about itself in the `hello` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInfo {
    /// Protocol version the server speaks.
    pub version: u64,
    /// Server software identifier.
    pub server: String,
    /// The service's worker count.
    pub workers: u64,
}

/// Submission knobs, all defaulted — `SubmitParams::default()` is a
/// plain priority-0 submission.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubmitParams {
    /// Dispatch priority (higher first).
    pub priority: i32,
    /// Deadline in milliseconds from admission.
    pub deadline_ms: Option<u64>,
    /// Per-request options overrides.
    pub options: OptionsPatch,
    /// Client id echoed on the result (defaults to the connection's
    /// `hello` client id).
    pub client_id: Option<String>,
}

/// One typed submission: the instance plus every knob the wire carries.
/// This is the single entry shape behind [`Client::submit_spec`] (one),
/// [`Client::submit_specs`] (many), and [`Client::submit_sweep`] (a
/// swept template) — the older [`Client::submit`]/[`Client::submit_batch`]
/// pair are thin wrappers over it emitting byte-identical frames.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// The instance to synthesize.
    pub instance: Instance,
    /// Dispatch priority (higher first).
    pub priority: i32,
    /// Deadline in milliseconds from admission.
    pub deadline_ms: Option<u64>,
    /// Per-request options overrides (for a sweep, the *base* the points
    /// perturb).
    pub options: OptionsPatch,
    /// Client id echoed on the result (defaults to the connection's
    /// `hello` client id).
    pub client_id: Option<String>,
    /// Publish level-complete snapshots mid-synthesis, enabling
    /// [`Client::fetch_tree_progress`] to watch the tree grow.
    pub publish_levels: bool,
}

impl SubmitSpec {
    /// A plain priority-0 submission of `instance` under server-default
    /// options.
    pub fn new(instance: Instance) -> SubmitSpec {
        SubmitSpec {
            instance,
            priority: 0,
            deadline_ms: None,
            options: OptionsPatch::default(),
            client_id: None,
            publish_levels: false,
        }
    }

    /// Sets the dispatch priority.
    #[must_use]
    pub fn with_priority(mut self, priority: i32) -> SubmitSpec {
        self.priority = priority;
        self
    }

    /// Sets a deadline in milliseconds from admission.
    #[must_use]
    pub fn with_deadline_ms(mut self, ms: u64) -> SubmitSpec {
        self.deadline_ms = Some(ms);
        self
    }

    /// Sets the options patch.
    #[must_use]
    pub fn with_options(mut self, options: OptionsPatch) -> SubmitSpec {
        self.options = options;
        self
    }

    /// Sets the client id.
    #[must_use]
    pub fn with_client_id(mut self, client_id: impl Into<String>) -> SubmitSpec {
        self.client_id = Some(client_id.into());
        self
    }

    /// Turns mid-synthesis level publication on or off.
    #[must_use]
    pub fn with_publish_levels(mut self, publish: bool) -> SubmitSpec {
        self.publish_levels = publish;
        self
    }
}

/// How [`Client::fetch_tree`] asks the server to chunk the node stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkMode {
    /// Server-default chunk size, plain node-count boundaries.
    #[default]
    Default,
    /// Explicit nodes-per-chunk (the server clamps to its maximum).
    Nodes(u64),
    /// Level-granular: chunk boundaries align with completed topology
    /// levels, so each level can be handed off as its last chunk lands.
    Levels,
}

impl ChunkMode {
    fn wire(self) -> (Option<u64>, bool) {
        match self {
            ChunkMode::Default => (None, false),
            ChunkMode::Nodes(n) => (Some(n), false),
            ChunkMode::Levels => (None, true),
        }
    }
}

/// A sweep admitted by the server: the correlation ordinal for its
/// pushed events plus the per-point request ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSubmission {
    /// The per-connection sweep ordinal `sweep_progress`/`pareto` events
    /// carry.
    pub sweep: u64,
    /// One request id per expanded point, in expansion order.
    pub ids: Vec<u64>,
}

/// A level-granular look at a request's tree, possibly mid-synthesis —
/// what [`Client::fetch_tree_progress`] returns.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeProgress {
    /// The request id.
    pub id: u64,
    /// Instance name (empty on partial snapshots — the server does not
    /// retain it until completion).
    pub name: String,
    /// `true` while the request is still synthesizing: `nodes` is the
    /// latest level-complete snapshot (a rooted forest, no source yet).
    pub partial: bool,
    /// Topology levels fully grafted into `nodes` (0 on a completed
    /// tree, where `level_stats` carries the per-level story instead).
    pub levels_done: u64,
    /// The streamed nodes. For a completed request this is the full
    /// arena; rebuild with [`ClockTree::from_nodes`].
    pub nodes: Vec<TreeNode>,
    /// The source node, once synthesis completed.
    pub source: Option<TreeNodeId>,
    /// Per-level statistics (empty on partial snapshots).
    pub level_stats: Vec<LevelStats>,
}

/// One blocking protocol connection. See the module docs.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_seq: u64,
    /// Result events that arrived while waiting for something else.
    /// Stashed **by id unconditionally** — including ids this client has
    /// not yet learned about, because a batch reply can race the first
    /// pushed event of one of its own requests.
    stashed: HashMap<u64, Outcome>,
    /// `sweep_progress` events by sweep ordinal, in arrival order.
    sweep_progress: HashMap<u64, Vec<SweepProgressEvent>>,
    /// Terminal `pareto` events by sweep ordinal.
    paretos: HashMap<u64, ParetoEvent>,
    info: ServerInfo,
}

impl Client {
    /// Connects and performs the `hello` handshake.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server rejecting the protocol version.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, NetError> {
        Client::connect_as(addr, None)
    }

    /// [`Client::connect`] with a client id, which the server attaches
    /// to this connection's submissions by default.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server rejecting the protocol version.
    pub fn connect_as(
        addr: impl ToSocketAddrs,
        client_id: Option<&str>,
    ) -> Result<Client, NetError> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = Client {
            writer: stream,
            reader,
            next_seq: 0,
            stashed: HashMap::new(),
            sweep_progress: HashMap::new(),
            paretos: HashMap::new(),
            info: ServerInfo {
                version: 0,
                server: String::new(),
                workers: 0,
            },
        };
        let reply = client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
            client_id: client_id.map(str::to_string),
        })?;
        match reply {
            Response::Hello {
                version,
                server,
                workers,
            } => {
                client.info = ServerInfo {
                    version,
                    server,
                    workers,
                };
                Ok(client)
            }
            other => Err(unexpected("hello reply", &other)),
        }
    }

    /// What the server reported at handshake.
    pub fn server(&self) -> &ServerInfo {
        &self.info
    }

    /// Submits one typed [`SubmitSpec`]; returns the service-assigned
    /// request id. The result arrives later — fetch it with
    /// [`Client::wait_result`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a structured rejection (draining
    /// server, invalid spec).
    pub fn submit_spec(&mut self, spec: SubmitSpec) -> Result<u64, NetError> {
        let reply = self.call(&Request::Submit {
            instance: spec.instance,
            options: spec.options,
            priority: spec.priority,
            deadline_ms: spec.deadline_ms,
            client_id: spec.client_id,
            publish_levels: spec.publish_levels,
        })?;
        match reply {
            Response::Submitted { id } => Ok(id),
            other => Err(unexpected("submit reply", &other)),
        }
    }

    /// Submits many typed [`SubmitSpec`]s. Returns the service-assigned
    /// request ids, one per spec in order; results arrive later, each as
    /// its own event.
    ///
    /// When every spec carries the **same options patch** (the common
    /// sweep shape), this sends one `submit_batch` frame and the specs
    /// are admitted **atomically** — all or nothing against queue
    /// capacity, with consecutive ids. Specs with differing options fall
    /// back to sequential `submit` frames: every spec is still admitted
    /// in order, but admission is no longer all-or-nothing (a mid-list
    /// rejection surfaces as the error after the earlier specs were
    /// already admitted). An empty list returns `Ok(vec![])` without
    /// touching the wire.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a structured rejection: a batch
    /// larger than the server queue's total capacity is `bad_request`
    /// (nothing was admitted), a draining server is `shutting_down`.
    pub fn submit_specs(&mut self, specs: Vec<SubmitSpec>) -> Result<Vec<u64>, NetError> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        let uniform = specs.windows(2).all(|w| w[0].options == w[1].options);
        if !uniform {
            return specs
                .into_iter()
                .map(|spec| self.submit_spec(spec))
                .collect();
        }
        let options = specs[0].options.clone();
        let entries = specs
            .into_iter()
            .map(|spec| BatchEntry {
                instance: spec.instance,
                priority: spec.priority,
                deadline_ms: spec.deadline_ms,
                client_id: spec.client_id,
                publish_levels: spec.publish_levels,
            })
            .collect();
        let reply = self.call(&Request::SubmitBatch { entries, options })?;
        match reply {
            Response::BatchSubmitted { ids } => Ok(ids),
            other => Err(unexpected("submit_batch reply", &other)),
        }
    }

    /// Submits an instance; returns the service-assigned request id. The
    /// result arrives later — fetch it with [`Client::wait_result`].
    ///
    /// Thin wrapper over [`Client::submit_spec`]; both emit byte-identical
    /// `submit` frames.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a structured rejection (draining
    /// server, invalid spec).
    #[deprecated(note = "use Client::submit_spec with a typed SubmitSpec")]
    pub fn submit(&mut self, instance: &Instance, params: &SubmitParams) -> Result<u64, NetError> {
        self.submit_spec(SubmitSpec {
            instance: instance.clone(),
            priority: params.priority,
            deadline_ms: params.deadline_ms,
            options: params.options.clone(),
            client_id: params.client_id.clone(),
            publish_levels: false,
        })
    }

    /// Submits many instances in **one frame**, admitted atomically into
    /// the service (all-or-nothing against queue capacity). Returns the
    /// service-assigned request ids, one per entry in entry order. The
    /// results arrive later, each as its own event — fetch them with
    /// [`Client::wait_result`], in any order.
    ///
    /// `options` is the [`OptionsPatch`] shared by every entry;
    /// scheduling knobs (priority, deadline, client id) travel per entry
    /// on the [`BatchEntry`]. An empty batch returns `Ok(vec![])`
    /// without touching the wire — matching
    /// `SynthesisService::submit_batch`'s no-op semantics (the wire op
    /// itself requires at least one entry).
    ///
    /// Thin wrapper kept for compatibility; [`Client::submit_specs`]
    /// with uniform options emits a byte-identical `submit_batch` frame.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a structured rejection: a batch
    /// larger than the server queue's total capacity is `bad_request`
    /// (nothing was admitted), a draining server is `shutting_down`.
    #[deprecated(note = "use Client::submit_specs with typed SubmitSpecs")]
    pub fn submit_batch(
        &mut self,
        entries: Vec<BatchEntry>,
        options: &OptionsPatch,
    ) -> Result<Vec<u64>, NetError> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let reply = self.call(&Request::SubmitBatch {
            entries,
            options: options.clone(),
        })?;
        match reply {
            Response::BatchSubmitted { ids } => Ok(ids),
            other => Err(unexpected("submit_batch reply", &other)),
        }
    }

    /// Submits a parameter sweep in **one frame**: the server expands
    /// `range` over the spec's options (the *base* patch) into
    /// deterministic per-point requests, admitted atomically like a
    /// batch. Each point streams its own result event; `sweep_progress`
    /// events arrive as points resolve, and the terminal `pareto` event
    /// ([`Client::wait_pareto`]) carries the folded front over (skew,
    /// buffer capacitance, latency).
    ///
    /// Every swept point synthesizes a tree **byte-identical** to the
    /// same options submitted individually — the sweep only saves round
    /// trips and folds the front server-side.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a structured rejection: an empty
    /// or oversized expansion is `bad_request` (nothing was admitted), a
    /// draining server is `shutting_down`.
    pub fn submit_sweep(
        &mut self,
        spec: SubmitSpec,
        range: SweepRange,
    ) -> Result<SweepSubmission, NetError> {
        let reply = self.call(&Request::SubmitSweep {
            instance: spec.instance,
            base: spec.options,
            range,
            priority: spec.priority,
            deadline_ms: spec.deadline_ms,
            client_id: spec.client_id,
            publish_levels: spec.publish_levels,
        })?;
        match reply {
            Response::SweepSubmitted { sweep, ids } => Ok(SweepSubmission { sweep, ids }),
            other => Err(unexpected("submit_sweep reply", &other)),
        }
    }

    /// Blocks until sweep `sweep`'s terminal `pareto` event arrives and
    /// returns it. Result and progress events that arrive meanwhile are
    /// stashed for their own accessors.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures (a lost connection rejects every
    /// outstanding wait).
    pub fn wait_pareto(&mut self, sweep: u64) -> Result<ParetoEvent, NetError> {
        loop {
            if let Some(event) = self.paretos.remove(&sweep) {
                return Ok(event);
            }
            let frame = self.read()?;
            if is_event(&frame) {
                self.stash_event(&frame)?;
            } else {
                return Err(NetError::Protocol(
                    "unsolicited reply while waiting for a pareto event".into(),
                ));
            }
        }
    }

    /// Drains the `sweep_progress` events stashed so far for `sweep`, in
    /// arrival order (each point's progress frame follows its result
    /// event). Does not block; poll between waits or after
    /// [`Client::wait_pareto`].
    pub fn take_sweep_progress(&mut self, sweep: u64) -> Vec<SweepProgressEvent> {
        self.sweep_progress.remove(&sweep).unwrap_or_default()
    }

    /// Blocks until request `id` resolves and returns its outcome
    /// (completed stats, cancelled, expired, or failed). Events for
    /// *other* requests that arrive meanwhile are stashed for their own
    /// `wait_result` calls.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures (a lost connection rejects every
    /// outstanding wait).
    pub fn wait_result(&mut self, id: u64) -> Result<Outcome, NetError> {
        loop {
            if let Some(outcome) = self.stashed.remove(&id) {
                return Ok(outcome);
            }
            let frame = self.read()?;
            if is_event(&frame) {
                self.stash_event(&frame)?;
            } else {
                return Err(NetError::Protocol(
                    "unsolicited reply while waiting for a result event".into(),
                ));
            }
        }
    }

    /// Fetches the full routed tree geometry of a completed request:
    /// every node with exact-µm coordinates, buffer insertions with
    /// their library cell ids, the routed wire length of every segment,
    /// and the per-level synthesis statistics — rebuilt into a
    /// [`ClockTree`] **bit-identical** to the one the server synthesized
    /// in process. `mode` picks the chunking; every mode rebuilds the
    /// same tree ([`ChunkMode::Levels`] only aligns chunk boundaries
    /// with completed topology levels).
    ///
    /// # Errors
    ///
    /// Transport failures — including a stream truncated mid-geometry,
    /// which surfaces as an error rather than a silently partial tree —
    /// protocol violations (chunk gaps, short streams, structurally
    /// invalid nodes), `unknown_id` when the server no longer retains
    /// (or never completed) the request, or a *partial* header (the
    /// request is still synthesizing under [`ChunkMode::Levels`]) —
    /// watch those with [`Client::fetch_tree_progress`] instead.
    pub fn fetch_tree(&mut self, id: u64, mode: ChunkMode) -> Result<RemoteTree, NetError> {
        let header = self.fetch_tree_header(id, mode)?;
        let (nodes, level_stats) = self.collect_stream(&header)?;
        if header.partial {
            return Err(NetError::Protocol(format!(
                "request {id} is still synthesizing ({} levels published); \
                 use fetch_tree_progress to watch a partial tree",
                header.levels_done
            )));
        }
        if header.source >= header.nodes {
            return Err(NetError::Protocol(format!(
                "tree source {} is outside the {}-node arena",
                header.source, header.nodes
            )));
        }
        let tree = ClockTree::from_nodes(nodes).map_err(|e| NetError::Protocol(e.to_string()))?;
        Ok(RemoteTree {
            id: header.id,
            name: header.name,
            tree,
            source: TreeNodeId::from_index(header.source as usize),
            level_stats,
        })
    }

    /// [`Client::fetch_tree`] with an explicit chunk size (nodes per
    /// `tree` event); `None` uses the server default. Thin wrapper over
    /// `fetch_tree(id, ChunkMode::...)`, kept for compatibility.
    ///
    /// # Errors
    ///
    /// See [`Client::fetch_tree`].
    #[deprecated(note = "use Client::fetch_tree with a ChunkMode")]
    pub fn fetch_tree_chunked(
        &mut self,
        id: u64,
        chunk: Option<u64>,
    ) -> Result<RemoteTree, NetError> {
        self.fetch_tree(id, chunk.map_or(ChunkMode::Default, ChunkMode::Nodes))
    }

    /// Streams a level-granular look at request `id`'s tree, **including
    /// mid-synthesis**: a request submitted with `publish_levels` answers
    /// with its latest level-complete snapshot (a rooted forest — whole
    /// levels only, never a torn level) while it synthesizes, and with
    /// the full tree once done. A request that published nothing yet
    /// returns an empty partial (zero nodes, zero levels) rather than an
    /// error, so a watcher can poll from submission to completion.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or `unknown_id` for an id this
    /// connection never submitted (or whose geometry was evicted).
    pub fn fetch_tree_progress(&mut self, id: u64) -> Result<TreeProgress, NetError> {
        let header = self.fetch_tree_header(id, ChunkMode::Levels)?;
        let (nodes, level_stats) = self.collect_stream(&header)?;
        Ok(TreeProgress {
            id: header.id,
            name: header.name,
            partial: header.partial,
            levels_done: header.levels_done,
            nodes,
            source: (!header.partial).then(|| TreeNodeId::from_index(header.source as usize)),
            level_stats,
        })
    }

    /// Sends a `fetch_tree` and validates the stream header.
    fn fetch_tree_header(&mut self, id: u64, mode: ChunkMode) -> Result<TreeInfo, NetError> {
        let (chunk, levels) = mode.wire();
        let header = match self.call(&Request::FetchTree { id, chunk, levels })? {
            Response::TreeHeader(h) => h,
            other => return Err(unexpected("fetch_tree reply", &other)),
        };
        if header.id != id {
            return Err(NetError::Protocol(format!(
                "fetch_tree reply names id {}, asked for {id}",
                header.id
            )));
        }
        Ok(header)
    }

    /// Consumes the chunked `tree` events following a stream header and
    /// returns the streamed nodes plus the terminal frame's level stats.
    /// Result events that interleave are stashed; `tree` events for
    /// *other* ids cannot belong to a live stream (this synchronous
    /// client runs at most one at a time — they are stale leftovers of
    /// an earlier failed fetch) and are discarded, so a failed stream
    /// never poisons a later retry.
    fn collect_stream(
        &mut self,
        header: &TreeInfo,
    ) -> Result<(Vec<TreeNode>, Vec<LevelStats>), NetError> {
        // `header.nodes` is server-supplied: cap the preallocation so a
        // buggy or hostile peer cannot panic/abort this process with an
        // absurd claim — the vector grows normally past the hint, and a
        // short stream is caught against the header before the rebuild.
        let mut nodes: Vec<TreeNode> =
            Vec::with_capacity(usize::try_from(header.nodes).unwrap_or(0).min(1 << 16));
        let mut next_chunk = 0u64;
        loop {
            // A truncated stream fails here with a transport error (EOF
            // mid-stream) — never a partial tree.
            let frame = self.read()?;
            if !is_event(&frame) {
                return Err(NetError::Protocol(
                    "unsolicited reply inside a tree stream".into(),
                ));
            }
            if event_op(&frame) != Some("tree") {
                self.stash_event(&frame)?;
                continue;
            }
            let event = decode_tree_event(&frame).map_err(NetError::Protocol)?;
            if event.id() != header.id {
                continue; // stale frames of an earlier failed stream
            }
            match event {
                TreeEvent::Chunk(c) => {
                    if c.chunk != next_chunk || c.chunk >= header.chunks {
                        return Err(NetError::Protocol(format!(
                            "tree chunk {} arrived out of order (expected {next_chunk} of {})",
                            c.chunk, header.chunks
                        )));
                    }
                    // Enforce the header's budget per chunk, not just at
                    // the terminal frame — a server streaming more nodes
                    // than it announced must not grow this vector
                    // without bound.
                    if (nodes.len() + c.nodes.len()) as u64 > header.nodes {
                        return Err(NetError::Protocol(format!(
                            "tree stream overran its header: more than {} nodes",
                            header.nodes
                        )));
                    }
                    next_chunk += 1;
                    nodes.extend(c.nodes);
                }
                TreeEvent::Done(done) => {
                    if next_chunk != header.chunks || nodes.len() as u64 != header.nodes {
                        return Err(NetError::Protocol(format!(
                            "tree stream ended short: {} of {} nodes in {} of {} chunks",
                            nodes.len(),
                            header.nodes,
                            next_chunk,
                            header.chunks
                        )));
                    }
                    return Ok((nodes, done.level_stats));
                }
            }
        }
    }

    /// Asks where request `id` currently is.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or `unknown_id`.
    pub fn status(&mut self, id: u64) -> Result<RequestStatus, NetError> {
        match self.call(&Request::Status { id })? {
            Response::Status { state, .. } => Ok(state),
            other => Err(unexpected("status reply", &other)),
        }
    }

    /// Requests cooperative cancellation of `id`. The terminal outcome
    /// (usually [`Outcome::Cancelled`], or the result if it won the
    /// race) still arrives as an event.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or `unknown_id`.
    pub fn cancel(&mut self, id: u64) -> Result<(), NetError> {
        match self.call(&Request::Cancel { id })? {
            Response::Cancelled { .. } => Ok(()),
            other => Err(unexpected("cancel reply", &other)),
        }
    }

    /// Snapshots the server's service metrics.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn metrics(&mut self) -> Result<MetricsReply, NetError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(m) => Ok(m),
            other => Err(unexpected("metrics reply", &other)),
        }
    }

    /// Snapshots the server's full observability state: the `metrics`
    /// counters plus latency histograms (queue wait per priority,
    /// synthesis, verification) and per-span duration summaries. The
    /// decode is lenient — fields a pre-`stats` server never sends
    /// default to empty — and the histograms are reconstructed from
    /// their exact wire parts, so percentiles recomputed client-side
    /// are bit-identical to the server's.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures; a server predating the `stats` op
    /// answers `bad_request` (surface as [`NetError::Remote`]) — fall
    /// back to [`Client::metrics`].
    pub fn stats(&mut self) -> Result<StatsReply, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(*s),
            other => Err(unexpected("stats reply", &other)),
        }
    }

    /// Asks the server to drain and stop. Blocks until the server
    /// confirms — by then every admitted request has resolved and
    /// streamed its event (wait your own results first, or they arrive
    /// interleaved before the confirmation and are stashed).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown reply", &other)),
        }
    }

    /// Routes one pushed event frame. Result events are stashed by id
    /// **unconditionally** — the id may belong to a submission whose
    /// reply this client has not even read yet (a batch reply racing its
    /// first pushed event); dropping such an event would lose the
    /// request's only terminal outcome. Sweep events stash by sweep
    /// ordinal the same way. `tree` events seen here are decoded
    /// (malformed frames still fail loudly) but then discarded: a live
    /// stream is consumed entirely inside `collect_stream`, so any tree
    /// frame reaching this point is a stale leftover of a fetch that
    /// already failed — retaining it would only poison a retry.
    fn stash_event(&mut self, frame: &Json) -> Result<(), NetError> {
        match event_op(frame) {
            Some("tree") => {
                decode_tree_event(frame).map_err(NetError::Protocol)?;
            }
            Some("sweep_progress") => {
                let event = decode_sweep_progress(frame).map_err(NetError::Protocol)?;
                self.sweep_progress
                    .entry(event.sweep)
                    .or_default()
                    .push(event);
            }
            Some("pareto") => {
                let event = decode_pareto_event(frame).map_err(NetError::Protocol)?;
                self.paretos.insert(event.sweep, event);
            }
            _ => {
                let event = decode_event(frame).map_err(NetError::Protocol)?;
                self.stashed.insert(event.id, event.outcome);
            }
        }
        Ok(())
    }

    /// Sends `request` and reads until its reply arrives, stashing any
    /// events that come first. A structured error reply becomes
    /// [`NetError::Remote`].
    fn call(&mut self, request: &Request) -> Result<Response, NetError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        write_frame(&mut self.writer, &encode_request(seq, request))?;
        self.writer.flush()?;
        loop {
            let frame = self.read()?;
            if is_event(&frame) {
                self.stash_event(&frame)?;
                continue;
            }
            let (reply_seq, response) = decode_response(&frame).map_err(NetError::Protocol)?;
            if reply_seq != Some(seq) {
                return Err(NetError::Protocol(format!(
                    "reply seq {reply_seq:?} does not match request seq {seq}"
                )));
            }
            return match response {
                Response::Error { code, message } => Err(NetError::Remote { code, message }),
                ok => Ok(ok),
            };
        }
    }

    /// Reads one well-formed frame; EOF and malformed server output are
    /// both errors here (the client has no error-reply channel).
    fn read(&mut self) -> Result<Json, NetError> {
        match read_frame(&mut self.reader)? {
            None => Err(NetError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            Some(Ok(frame)) => Ok(frame),
            Some(Err(e)) => Err(NetError::Protocol(format!("unparseable server frame: {e}"))),
        }
    }
}

impl fmt::Debug for Client {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Client")
            .field("server", &self.info.server)
            .field("next_seq", &self.next_seq)
            .field("stashed_results", &self.stashed.len())
            .finish()
    }
}

fn unexpected(context: &str, got: &Response) -> NetError {
    NetError::Protocol(format!("unexpected {context}: {got:?}"))
}
