//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the *API subset* it actually uses: [`rngs::StdRng`] seeded through
//! [`SeedableRng::seed_from_u64`], plus [`Rng::gen_range`] and
//! [`Rng::gen_bool`]. The generator is xoshiro256++ seeded via SplitMix64 —
//! not the upstream ChaCha-based `StdRng`, so the *values* differ from
//! crates.io `rand`, but everything in this workspace only relies on the
//! stream being deterministic per seed, which this guarantees (and pins:
//! the algorithm here must never change, or every seeded benchmark
//! instance silently becomes a different instance).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws a value in `[range.start, range.end)`.
    fn sample_uniform<R: Rng + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo bias is irrelevant for the workspace's synthetic
                // instance generation; keep the mapping simple and stable.
                range.start + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}
impl_sample_int!(u32, u64, usize);

macro_rules! impl_sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: Rng + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_signed!(i32 => u32, i64 => u64);

impl SampleUniform for f64 {
    fn sample_uniform<R: Rng + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "invalid f64 gen_range [{}, {})",
            range.start,
            range.end
        );
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: Rng + ?Sized>(range: &Range<Self>, rng: &mut R) -> Self {
        f64::sample_uniform(&((range.start as f64)..(range.end as f64)), rng) as f32
    }
}

/// The user-facing random-value interface (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_uniform(&range, self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; see the crate docs for the compatibility caveat).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn ranges_are_honored() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&x));
            let n = rng.gen_range(3..17usize);
            assert!((3..17).contains(&n));
            let s = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.35)).count();
        assert!((3000..4000).contains(&hits), "got {hits}");
    }

    #[test]
    fn stream_is_pinned() {
        // The generated benchmark instances are a pure function of this
        // stream. If this test ever fails, the generator changed and every
        // recorded experiment silently changed meaning.
        let mut rng = StdRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330
            ]
        );
    }
}
