//! Verification throughput on a 512-sink tree: cold (empty caches) vs
//! warm (stage cache and solver plans populated by a prior verify of the
//! same tree).
//!
//! The warm case is the one the batch driver and service actually hit
//! when a tree is re-verified (or when sibling instances share stage
//! geometry): every stage is served from the incremental cache and
//! nothing is re-simulated. The cold/warm ratio is the headline number
//! of the sparse-solver PR and is gated in CI (see
//! `examples/bench_gate.rs`): warm must stay at least 5x cold.
//!
//! Alongside wall time, the cold pass prints stage throughput
//! (stages/second) once, so BENCH_ci.json trend lines can be read in
//! units that survive tree-size changes.

use criterion::{criterion_group, criterion_main, Criterion};
use cts::benchmarks::generate_custom;
use cts::timing::fast_library;
use cts::{CtsOptions, Synthesizer, Technology, Verifier, VerifyOptions};

fn bench_verify_throughput(c: &mut Criterion) {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let options = CtsOptions::builder().threads(1).build().unwrap();
    let synth = Synthesizer::new(lib, options);
    let inst = generate_custom("verify512", 512, 9000.0, 0x5eed);
    let result = synth.synthesize(&inst).expect("512-sink synthesis");
    let opts = VerifyOptions::default();

    // One instrumented pass for the stages/second headline number.
    let mut probe = Verifier::new();
    let t0 = std::time::Instant::now();
    probe
        .verify(&result.tree, result.source, &tech, &opts)
        .expect("verify succeeds");
    let cold_secs = t0.elapsed().as_secs_f64();
    let stages = probe.stats().stages_simulated;
    println!(
        "verify512: {stages} stages cold in {cold_secs:.3} s ({:.0} stages/s)",
        stages as f64 / cold_secs
    );

    let mut group = c.benchmark_group("verify_512sinks");
    group.sample_size(10);
    // Cold: a fresh Verifier every iteration — no solver plans, no stage
    // records. This is what a one-shot `verify_tree` call pays.
    group.bench_function("cold", |b| {
        b.iter(|| {
            let mut v = Verifier::new();
            v.verify(&result.tree, result.source, &tech, &opts)
                .expect("verify succeeds")
        });
    });
    // Warm: one long-lived Verifier — after the first pass every stage
    // hit is served from the cache (stages_simulated stops growing).
    let mut warm = Verifier::new();
    warm.verify(&result.tree, result.source, &tech, &opts)
        .expect("warmup verify");
    group.bench_function("warm", |b| {
        b.iter(|| {
            warm.verify(&result.tree, result.source, &tech, &opts)
                .expect("verify succeeds")
        });
    });
    // Calibration: a fixed pure-FP workload with no cache or allocator
    // sensitivity. The CI gate compares verify medians *normalized by
    // this* so a slower runner does not read as a code regression.
    group.bench_function("calibration", |b| {
        b.iter(|| {
            let mut x = 1.000_000_1_f64;
            let mut acc = 0.0_f64;
            for _ in 0..4_000_000u32 {
                acc += x;
                x = (x * 1.000_000_1).rem_euclid(2.0);
            }
            criterion::black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(verify, bench_verify_throughput);
criterion_main!(verify);
