//! Scale-tier throughput: sinks/second for full synthesis at 10k/100k
//! (and 1M when `CTS_SCALE_1M` is set), plus the pairing speedup of the
//! grid-indexed matcher over the retained brute scan at 100k roots.
//!
//! The heavy workloads are timed **one-shot** (`record_measurement`):
//! a 100k-sink synthesis runs for minutes, so the usual warmup-then-
//! sample loop would triple the cost for no extra information. The CI
//! gate (`examples/bench_gate.rs`) reads the recorded entries and
//! enforces the ≥10× matching-speedup floor and the synthesis
//! regression bound, normalized by this group's calibration entry.

use criterion::{criterion_group, criterion_main, Criterion};
use cts::benchmarks::generate_scale;
use cts::core::topology::{find_matching, find_matching_brute, MatchCandidate};
use cts::geom::Point;
use cts::timing::fast_library;
use cts::{CtsOptions, Synthesizer};
use std::time::Instant;

/// Matching candidates from a scale instance's sinks, as the first
/// pairing level sees them (zero accumulated delay).
fn candidates_of(n: usize) -> (Vec<MatchCandidate>, Point) {
    let inst = generate_scale(n, 0x5ca1e);
    let cands: Vec<MatchCandidate> = inst
        .sinks()
        .iter()
        .map(|s| MatchCandidate {
            location: s.location,
            delay: 0.0,
        })
        .collect();
    let die = inst.die();
    (cands, Point::new(die.width() / 2.0, die.height() / 2.0))
}

fn bench_matching_speedup(c: &mut Criterion) {
    // Test mode shrinks the workload so `cargo test --benches` stays
    // fast; the recorded ids are the same either way (but nothing is
    // written in test mode).
    let n = if c.is_test_mode() { 512 } else { 100_000 };
    let (cands, centroid) = candidates_of(n);

    let t0 = Instant::now();
    let fast = find_matching(&cands, centroid, 1e-3, 1e11).expect("finite");
    let spatial = t0.elapsed();
    c.record_measurement("synth_scale/matching_100k_spatial", spatial);

    let t1 = Instant::now();
    let brute = find_matching_brute(&cands, centroid, 1e-3, 1e11).expect("finite");
    let brute_elapsed = t1.elapsed();
    c.record_measurement("synth_scale/matching_100k_brute", brute_elapsed);

    assert_eq!(fast.pairs, brute.pairs, "index diverged from brute scan");
    assert_eq!(fast.seed, brute.seed);
    if !c.is_test_mode() {
        println!(
            "matching at {n} roots: brute {:.2} s, spatial {:.3} s — {:.0}x speedup",
            brute_elapsed.as_secs_f64(),
            spatial.as_secs_f64(),
            brute_elapsed.as_secs_f64() / spatial.as_secs_f64().max(1e-12)
        );
    }
}

fn bench_synth_tiers(c: &mut Criterion) {
    let mut tiers: Vec<usize> = if c.is_test_mode() {
        vec![256]
    } else {
        vec![10_000, 100_000]
    };
    // The million-sink tier runs for well over an hour single-threaded;
    // opt in explicitly (local scale runs), CI sticks to 10k/100k.
    if std::env::var("CTS_SCALE_1M").is_ok_and(|v| !v.is_empty() && v != "0") {
        tiers.push(1_000_000);
    }

    let lib = fast_library();
    let options = CtsOptions::builder().threads(1).build().unwrap();
    let synth = Synthesizer::new(lib, options);
    for n in tiers {
        let inst = generate_scale(n, 0x5ca1e);
        let t0 = Instant::now();
        let result = synth.synthesize_unverified(&inst).expect("synthesis");
        let elapsed = t0.elapsed();
        let id = if c.is_test_mode() {
            // Stand-in tier: never recorded (test mode skips JSON), the
            // distinct id keeps real artifacts unpolluted regardless.
            "synth_scale/synth_test".to_string()
        } else {
            format!("synth_scale/synth_{n}")
        };
        c.record_measurement(&id, elapsed);
        if !c.is_test_mode() {
            let secs = elapsed.as_secs_f64();
            println!(
                "synth {n} sinks: {secs:.2} s ({:.0} sinks/s; topology {:.0}/s, merge {:.0}/s)",
                n as f64 / secs,
                n as f64 / result.topology_seconds.max(1e-12),
                n as f64 / result.merge_seconds.max(1e-12),
            );
        }
    }
}

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_scale");
    group.sample_size(10);
    // Fixed pure-FP workload with no cache or allocator sensitivity;
    // the CI gate divides scale medians by this so a slower runner does
    // not read as a code regression (same idiom as the verify bench).
    group.bench_function("calibration", |b| {
        b.iter(|| {
            let mut x = 1.000_000_1_f64;
            let mut acc = 0.0_f64;
            for _ in 0..4_000_000u32 {
                acc += x;
                x = (x * 1.000_000_1).rem_euclid(2.0);
            }
            criterion::black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    synth_scale,
    bench_matching_speedup,
    bench_synth_tiers,
    bench_calibration
);
criterion_main!(synth_scale);
