//! 1-shard vs N-shard batch wall time: the smoke measurement behind the
//! sharded batch driver with overlapped SPICE verification.
//!
//! On a single-core container the shard counts should tie (that they do
//! not *regress* is the smoke check); the speedup claim needs multicore
//! hardware, like `--bench parallel`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cts::benchmarks::generate_custom;
use cts::timing::fast_library;
use cts::{BatchOptions, BatchRunner, CtsOptions, Instance, Technology};

fn bench_batch_shards(c: &mut Criterion) {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    // Enough small instances that every shard stays busy and the
    // verification stage has a real backlog to overlap with.
    let suite: Vec<Instance> = (0..8)
        .map(|k| generate_custom(&format!("b{k}"), 10, 2600.0, 0x5eed + k as u64))
        .collect();
    // Shards are the parallel axis, so synthesis stays serial.
    let options = CtsOptions::builder().threads(1).build().unwrap();

    let mut group = c.benchmark_group("batch_8x10sinks");
    group.sample_size(10);
    for (label, shards, overlap_verify) in [
        ("1shard_fused", 1usize, false),
        ("1shard_overlap", 1, true),
        ("4shard_fused", 4, false),
        ("4shard_overlap", 4, true),
    ] {
        let mut batch = BatchOptions::default();
        batch.shards = shards;
        batch.overlap_verify = overlap_verify;
        let runner = BatchRunner::new(lib, &tech, options.clone(), batch);
        group.bench_with_input(BenchmarkId::from_parameter(label), &runner, |b, r| {
            b.iter(|| r.run(&suite).expect("batch run"));
        });
    }
    group.finish();
}

criterion_group!(batch, bench_batch_shards);
criterion_main!(batch);
