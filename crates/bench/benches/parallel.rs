//! Serial vs multi-threaded synthesis on GSRC-scale instances: the
//! wall-clock measurement behind the parallel level-synthesis pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cts::benchmarks::{generate_scaled_gsrc, GsrcBenchmark};
use cts::timing::fast_library;
use cts::{CtsOptions, Synthesizer};

fn bench_parallel_synthesis(c: &mut Criterion) {
    let lib = fast_library();
    // >= 256 sinks so every early level carries a wide rank of independent
    // pair merges.
    let inst = generate_scaled_gsrc(GsrcBenchmark::R1, 256);
    let mut group = c.benchmark_group("synthesize_r1_256");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 0] {
        let opts = CtsOptions::builder().threads(threads).build().unwrap();
        let synth = Synthesizer::new(lib, opts);
        let label = if threads == 0 {
            "auto".to_string()
        } else {
            format!("{threads}")
        };
        group.bench_with_input(BenchmarkId::from_parameter(label), &synth, |b, s| {
            b.iter(|| s.synthesize(&inst).expect("synthesis"));
        });
    }
    group.finish();
}

criterion_group!(parallel, bench_parallel_synthesis);
criterion_main!(parallel);
