//! Ablation benches for the design choices DESIGN.md calls out:
//! integrator order, routing-grid resolution, H-correction cost, and the
//! timing-model ladder (Elmore / D2M / characterized library).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cts::benchmarks::generate_custom;
use cts::spice::units::{NS, PS};
use cts::spice::{simulate, Circuit, Integrator, SimOptions, Waveform};
use cts::timing::fast_library;
use cts::timing::{metrics, RcTree};
use cts::{CtsOptions, HCorrection, Synthesizer, Technology};

/// Backward Euler vs trapezoidal at equal step size: cost comparison (the
/// accuracy side is covered by the solver tests).
fn ablate_integrator(c: &mut Criterion) {
    let tech = Technology::nominal_45nm();
    let mut group = c.benchmark_group("integrator");
    group.sample_size(10);
    for integ in [Integrator::BackwardEuler, Integrator::Trapezoidal] {
        let mut circuit = Circuit::new(&tech);
        let vin = circuit.add_node("in");
        let out = circuit.add_node("out");
        circuit.add_buffer(vin, out, &tech.buffer_library()[2]);
        let far = circuit.add_node("far");
        circuit.add_wire(out, far, 1000.0, tech.wire());
        circuit.drive(
            vin,
            Waveform::rising_ramp_10_90(50.0 * PS, 80.0 * PS, tech.vdd()),
        );
        let mut opts = SimOptions::default_for(2.0 * NS);
        opts.dt = 0.5 * PS;
        opts.integrator = integ;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{integ:?}")),
            &(circuit, opts),
            |b, (circ, o)| b.iter(|| simulate(circ, o).expect("sim")),
        );
    }
    group.finish();
}

/// Routing-grid resolution: the paper's R = 45 vs finer/coarser grids, on
/// a full small-instance synthesis.
fn ablate_grid_resolution(c: &mut Criterion) {
    let lib = fast_library();
    let inst = generate_custom("grid_ablation", 12, 5000.0, 9);
    let mut group = c.benchmark_group("grid_resolution");
    group.sample_size(10);
    for r in [25u32, 45, 90] {
        let opts = CtsOptions::builder().grid_resolution(r).build().unwrap();
        let synth = Synthesizer::new(lib, opts);
        group.bench_with_input(BenchmarkId::from_parameter(r), &synth, |b, s| {
            b.iter(|| s.synthesize(&inst).expect("synthesis"));
        });
    }
    group.finish();
}

/// H-correction modes: Off vs Method 1 vs Method 2 synthesis cost (the
/// paper notes Method 2 is "the most computationally expensive").
fn ablate_hcorrection(c: &mut Criterion) {
    let lib = fast_library();
    let inst = generate_custom("hcost", 16, 5000.0, 11);
    let mut group = c.benchmark_group("h_correction");
    group.sample_size(10);
    for mode in [
        HCorrection::Off,
        HCorrection::ReEstimate,
        HCorrection::Correct,
    ] {
        let opts = CtsOptions::builder().h_correction(mode).build().unwrap();
        let synth = Synthesizer::new(lib, opts);
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.to_string()),
            &synth,
            |b, s| b.iter(|| s.synthesize(&inst).expect("synthesis")),
        );
    }
    group.finish();
}

/// The timing-model ladder: cost of Elmore, D2M, and a library lookup for
/// one net evaluation (accuracy ladder is in the tests; this is the speed
/// side of the trade).
fn ablate_timing_models(c: &mut Criterion) {
    let lib = fast_library();
    let tech = Technology::nominal_45nm();
    let wire = tech.wire();
    c.bench_function("model_elmore", |b| {
        b.iter(|| {
            let mut t = RcTree::new(0.0);
            let end = t.add_wire(
                t.root(),
                wire.resistance(std::hint::black_box(1000.0)),
                wire.capacitance(1000.0),
                16,
            );
            t.elmore_delay(end)
        });
    });
    c.bench_function("model_d2m", |b| {
        b.iter(|| {
            let mut t = RcTree::new(0.0);
            let end = t.add_wire(
                t.root(),
                wire.resistance(std::hint::black_box(1000.0)),
                wire.capacitance(1000.0),
                16,
            );
            let (m1, m2) = t.m1_m2(end);
            metrics::d2m_delay(m1, m2)
        });
    });
    c.bench_function("model_library", |b| {
        b.iter(|| {
            lib.single_wire(
                cts::timing::BufferId(1),
                cts::timing::Load::Buffer(cts::timing::BufferId(1)),
                std::hint::black_box(60.0 * PS),
                std::hint::black_box(1000.0),
            )
        });
    });
}

criterion_group!(
    ablations,
    ablate_integrator,
    ablate_grid_resolution,
    ablate_hcorrection,
    ablate_timing_models
);
criterion_main!(ablations);
