//! Criterion benches for the flow's computational kernels, backing the
//! paper's §4.3 complexity analysis (nearest-neighbor selection dominates;
//! maze routing is steady per merge thanks to dynamic grid sizing).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cts::benchmarks::generate_custom;
use cts::core::maze::{MazeRouter, MergeSide};
use cts::core::topology::{find_matching, MatchCandidate};
use cts::geom::Point;
use cts::spice::units::{NS, PS};
use cts::spice::{simulate, Circuit, SimOptions, Waveform};
use cts::timing::fast_library;
use cts::timing::{BufferId, Load};
use cts::{CtsOptions, Synthesizer, Technology, TimingEngine};

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("nearest_neighbor_matching");
    for n in [64usize, 256, 1024] {
        let candidates: Vec<MatchCandidate> = (0..n)
            .map(|i| MatchCandidate {
                location: Point::new((i * 37 % 101) as f64 * 50.0, (i * 61 % 103) as f64 * 50.0),
                delay: (i % 17) as f64 * 5e-12,
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &candidates, |b, cand| {
            b.iter(|| find_matching(cand, Point::new(2500.0, 2500.0), 1e-3, 1e11).expect("finite"));
        });
    }
    group.finish();
}

fn bench_maze_route(c: &mut Criterion) {
    let lib = fast_library();
    let opts = CtsOptions::default();
    let router = MazeRouter::new(lib, &opts);
    let mut group = c.benchmark_group("maze_route");
    group.sample_size(10);
    for dist in [500.0f64, 2000.0, 8000.0] {
        let a = MergeSide {
            root_point: Point::new(0.0, 0.0),
            root_load: Load::Sink { cap: 25e-15 },
            subtree_delay: 0.0,
            unbuffered_depth_um: 0.0,
        };
        let b_side = MergeSide {
            root_point: Point::new(dist, dist * 0.2),
            root_load: Load::Sink { cap: 25e-15 },
            subtree_delay: 10.0 * PS,
            unbuffered_depth_um: 0.0,
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(dist as u64),
            &(a, b_side),
            |bch, (x, y)| {
                bch.iter(|| router.route(x, y).expect("route"));
            },
        );
    }
    group.finish();
}

fn bench_engine_eval(c: &mut Criterion) {
    let lib = fast_library();
    let synth = Synthesizer::new(lib, CtsOptions::default());
    let engine = TimingEngine::new(lib);
    let mut group = c.benchmark_group("engine_evaluate");
    group.sample_size(20);
    for n in [16usize, 48] {
        let inst = generate_custom("bench", n, 6000.0, 42);
        let result = synth.synthesize(&inst).expect("synthesis");
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(result.tree, result.source),
            |b, (tree, source)| {
                b.iter(|| engine.evaluate(tree, *source, 80.0 * PS));
            },
        );
    }
    group.finish();
}

fn bench_library_lookup(c: &mut Criterion) {
    let lib = fast_library();
    c.bench_function("library_single_wire_lookup", |b| {
        b.iter(|| {
            lib.single_wire(
                BufferId(1),
                Load::Buffer(BufferId(2)),
                std::hint::black_box(60.0 * PS),
                std::hint::black_box(700.0),
            )
        });
    });
    c.bench_function("library_branch_lookup", |b| {
        b.iter(|| {
            lib.branch(
                BufferId(2),
                (Load::Buffer(BufferId(0)), Load::Buffer(BufferId(1))),
                std::hint::black_box(60.0 * PS),
                (std::hint::black_box(400.0), std::hint::black_box(900.0)),
            )
        });
    });
}

fn bench_transient_sim(c: &mut Criterion) {
    let tech = Technology::nominal_45nm();
    let mut group = c.benchmark_group("transient_sim");
    group.sample_size(10);
    for len in [300.0f64, 1500.0] {
        let mut circuit = Circuit::new(&tech);
        let vin = circuit.add_node("in");
        let out = circuit.add_node("out");
        circuit.add_buffer(vin, out, &tech.buffer_library()[1]);
        let far = circuit.add_node("far");
        circuit.add_wire(out, far, len, tech.wire());
        circuit.drive(
            vin,
            Waveform::rising_ramp_10_90(50.0 * PS, 80.0 * PS, tech.vdd()),
        );
        let mut opts = SimOptions::default_for(2.0 * NS);
        opts.dt = 0.5 * PS;
        group.bench_with_input(
            BenchmarkId::from_parameter(len as u64),
            &(circuit, opts),
            |b, (circ, o)| {
                b.iter(|| simulate(circ, o).expect("sim"));
            },
        );
    }
    group.finish();
}

criterion_group!(
    kernels,
    bench_matching,
    bench_maze_route,
    bench_engine_eval,
    bench_library_lookup,
    bench_transient_sim
);
criterion_main!(kernels);
