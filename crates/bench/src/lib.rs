//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); this library holds the pieces
//! they share: the cached delay library, the standard flow invocation, and
//! row formatting.

use cts::spice::units::{NS, PS};
use cts::{
    BatchItem, BatchOptions, BatchRunner, CtsOptions, DelaySlewLibrary, Instance, Technology,
};

/// Loads (or characterizes and caches) the delay library the binaries use.
///
/// Default is the fast configuration (cached at
/// `target/ctslib_fast.v1.txt`); set `CTS_STANDARD_LIB=1` for the
/// paper-scale characterization (slower first run, cached separately).
///
/// # Panics
///
/// Panics if characterization fails — the binaries cannot run without a
/// library.
pub fn library(tech: &Technology) -> DelaySlewLibrary {
    let standard = std::env::var("CTS_STANDARD_LIB").is_ok();
    let (path, cfg) = if standard {
        (
            "target/ctslib_standard.v1.txt",
            cts::timing::CharacterizeConfig::standard(),
        )
    } else {
        (
            "target/ctslib_fast.v1.txt",
            cts::timing::CharacterizeConfig::fast(),
        )
    };
    cts::timing::load_or_characterize(path, tech, &cfg)
        .expect("delay library characterization must succeed")
}

/// One row of a Table 5.1/5.2-style report.
#[derive(Debug, Clone)]
pub struct FlowRow {
    /// Benchmark name.
    pub name: String,
    /// Sink count.
    pub sinks: usize,
    /// SPICE-verified worst slew (s).
    pub worst_slew: f64,
    /// SPICE-verified skew (s).
    pub skew: f64,
    /// SPICE-verified max latency (s).
    pub max_latency: f64,
    /// Buffers inserted.
    pub buffers: usize,
    /// Total wirelength (µm).
    pub wirelength_um: f64,
    /// Synthesis wall time (s).
    pub synth_seconds: f64,
}

impl FlowRow {
    /// Builds a table row from a batch item (verified numbers when the
    /// batch ran verification, engine estimates otherwise).
    pub fn from_item(item: &BatchItem) -> FlowRow {
        FlowRow {
            name: item.name.clone(),
            sinks: item.sinks,
            worst_slew: item.worst_slew(),
            skew: item.skew(),
            max_latency: item.max_latency(),
            buffers: item.result.buffers,
            wirelength_um: item.result.wirelength_um,
            synth_seconds: item.synth_seconds,
        }
    }
}

/// Runs a whole suite through the sharded batch driver — SPICE
/// verification of finished trees overlaps with synthesis of later
/// instances — and returns one table row per instance, in input order.
///
/// This is the standard flow invocation of every table-regeneration
/// binary; pass custom [`CtsOptions`] for ablations (H-corrections etc.).
///
/// # Panics
///
/// Panics if synthesis or verification fails — benchmark instances are
/// expected to be feasible.
pub fn run_suite(
    lib: &DelaySlewLibrary,
    tech: &Technology,
    options: CtsOptions,
    instances: &[Instance],
) -> Vec<FlowRow> {
    run_suite_items(lib, tech, options, instances)
        .iter()
        .map(FlowRow::from_item)
        .collect()
}

/// [`run_suite`] returning the full batch items (tree, level stats,
/// verified timing) instead of flattened rows.
///
/// Multi-instance suites parallelize on the **shard axis**: the caller's
/// `options.threads` is overridden to `1`, since per-instance merge
/// parallelism on top of the shards would oversubscribe the cores without
/// changing any result (synthesis is bit-identical for every thread
/// count). A single-instance suite keeps the caller's thread knob and
/// parallelizes within the instance instead.
///
/// # Panics
///
/// Panics if synthesis or verification fails — benchmark instances are
/// expected to be feasible.
pub fn run_suite_items(
    lib: &DelaySlewLibrary,
    tech: &Technology,
    mut options: CtsOptions,
    instances: &[Instance],
) -> Vec<BatchItem> {
    if instances.len() > 1 {
        options.threads = 1;
    }
    let runner = BatchRunner::new(lib, tech, options, BatchOptions::default());
    runner
        .run(instances)
        .expect("benchmark suite must synthesize and verify")
        .items
}

/// Prints the standard flow-table header.
pub fn print_flow_header() {
    println!(
        "{:<6} {:>7} {:>14} {:>10} {:>13} {:>8} {:>10} {:>8}",
        "bench", "#sinks", "worst slew", "skew", "max latency", "#buf", "wire", "time"
    );
}

/// Prints one flow-table row.
pub fn print_flow_row(r: &FlowRow) {
    println!(
        "{:<6} {:>7} {:>11.1} ps {:>7.1} ps {:>10.2} ns {:>8} {:>7.1} mm {:>6.1} s",
        r.name,
        r.sinks,
        r.worst_slew / PS,
        r.skew / PS,
        r.max_latency / NS,
        r.buffers,
        r.wirelength_um / 1000.0,
        r.synth_seconds
    );
}

/// Returns `true` when `--full` was passed (run unreduced instances).
pub fn full_run_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}
