//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` for the index); this library holds the pieces
//! they share: the cached delay library, the standard flow invocation, and
//! row formatting.

use cts::spice::units::{NS, PS};
use cts::{CtsOptions, DelaySlewLibrary, Instance, Synthesizer, Technology, VerifyOptions};

/// Loads (or characterizes and caches) the delay library the binaries use.
///
/// Default is the fast configuration (cached at
/// `target/ctslib_fast.v1.txt`); set `CTS_STANDARD_LIB=1` for the
/// paper-scale characterization (slower first run, cached separately).
///
/// # Panics
///
/// Panics if characterization fails — the binaries cannot run without a
/// library.
pub fn library(tech: &Technology) -> DelaySlewLibrary {
    let standard = std::env::var("CTS_STANDARD_LIB").is_ok();
    let (path, cfg) = if standard {
        (
            "target/ctslib_standard.v1.txt",
            cts::timing::CharacterizeConfig::standard(),
        )
    } else {
        (
            "target/ctslib_fast.v1.txt",
            cts::timing::CharacterizeConfig::fast(),
        )
    };
    cts::timing::load_or_characterize(path, tech, &cfg)
        .expect("delay library characterization must succeed")
}

/// One row of a Table 5.1/5.2-style report.
#[derive(Debug, Clone)]
pub struct FlowRow {
    /// Benchmark name.
    pub name: String,
    /// Sink count.
    pub sinks: usize,
    /// SPICE-verified worst slew (s).
    pub worst_slew: f64,
    /// SPICE-verified skew (s).
    pub skew: f64,
    /// SPICE-verified max latency (s).
    pub max_latency: f64,
    /// Buffers inserted.
    pub buffers: usize,
    /// Total wirelength (µm).
    pub wirelength_um: f64,
    /// Synthesis wall time (s).
    pub synth_seconds: f64,
}

/// Runs the full flow (synthesize + SPICE verify) on one instance.
///
/// # Panics
///
/// Panics if synthesis or verification fails — benchmark instances are
/// expected to be feasible.
pub fn run_flow(lib: &DelaySlewLibrary, tech: &Technology, instance: &Instance) -> FlowRow {
    let synth = Synthesizer::new(lib, CtsOptions::default());
    let t0 = std::time::Instant::now();
    let result = synth
        .synthesize(instance)
        .expect("benchmark synthesis must succeed");
    let synth_seconds = t0.elapsed().as_secs_f64();
    let verified = cts::verify_tree(&result.tree, result.source, tech, &VerifyOptions::default())
        .expect("benchmark verification must succeed");
    FlowRow {
        name: instance.name().to_string(),
        sinks: instance.sinks().len(),
        worst_slew: verified.worst_slew,
        skew: verified.skew,
        max_latency: verified.max_latency,
        buffers: result.buffers,
        wirelength_um: result.wirelength_um,
        synth_seconds,
    }
}

/// Prints the standard flow-table header.
pub fn print_flow_header() {
    println!(
        "{:<6} {:>7} {:>14} {:>10} {:>13} {:>8} {:>10} {:>8}",
        "bench", "#sinks", "worst slew", "skew", "max latency", "#buf", "wire", "time"
    );
}

/// Prints one flow-table row.
pub fn print_flow_row(r: &FlowRow) {
    println!(
        "{:<6} {:>7} {:>11.1} ps {:>7.1} ps {:>10.2} ns {:>8} {:>7.1} mm {:>6.1} s",
        r.name,
        r.sinks,
        r.worst_slew / PS,
        r.skew / PS,
        r.max_latency / NS,
        r.buffers,
        r.wirelength_um / 1000.0,
        r.synth_seconds
    );
}

/// Returns `true` when `--full` was passed (run unreduced instances).
pub fn full_run_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}
