//! Regenerates **Figure 3.4**: buffer intrinsic delay as a function of
//! input slew and load wire length — raw characterization samples next to
//! the fitted polynomial surface, with fit residuals.
//!
//! ```sh
//! cargo run --release -p cts-bench --bin fig_3_4
//! ```

use cts::spice::units::PS;
use cts::timing::{sweep_single_wire, BufferId, CharacterizeConfig, Load};
use cts::Technology;
use cts_bench::library;

fn main() {
    let tech = Technology::nominal_45nm();
    let lib = library(&tech);
    let cfg = CharacterizeConfig::standard();

    // The paper plots one (drive, load) combination; use 20X -> 20X.
    let (drive, load) = (1usize, 1usize);
    println!(
        "== Figure 3.4: {} intrinsic delay vs (input slew, wire length) ==\n",
        tech.buffer_library()[drive].name()
    );
    println!("-- raw characterization samples (SPICE sweep) --");
    println!(
        "{:>14} {:>14} {:>16}",
        "slew (ps)", "length (µm)", "intrinsic (ps)"
    );
    let samples = sweep_single_wire(&tech, drive, load, &cfg).expect("sweep");
    for s in samples.iter().step_by(4) {
        println!(
            "{:>14.1} {:>14.0} {:>16.2}",
            s.input_slew / PS,
            s.length_um,
            s.intrinsic_delay / PS
        );
    }

    println!("\n-- fitted surface (delay library), with residual vs samples --");
    println!(
        "{:>14} {:>14} {:>13} {:>12}",
        "slew (ps)", "length (µm)", "fit (ps)", "residual"
    );
    let mut worst: f64 = 0.0;
    for s in &samples {
        let fit = lib
            .single_wire(
                BufferId(drive),
                Load::Buffer(BufferId(load)),
                s.input_slew,
                s.length_um,
            )
            .buffer_delay;
        let resid = (fit - s.intrinsic_delay).abs();
        worst = worst.max(resid);
        if s.length_um > 500.0 && s.length_um < 1600.0 {
            println!(
                "{:>14.1} {:>14.0} {:>13.2} {:>9.2} ps",
                s.input_slew / PS,
                s.length_um,
                fit / PS,
                resid / PS
            );
        }
    }
    println!("\nworst residual over the sweep: {:.2} ps", worst / PS);
    println!(
        "paper's observation: intrinsic delay varies by several ps across input slews \
         (\"up to 10 ps for a 10X buffer\"), so the surface must be slew-indexed."
    );
}
