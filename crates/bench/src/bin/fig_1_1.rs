//! Regenerates **Figure 1.1**: wire output slew vs wire length for 20X and
//! 30X driving buffers — the motivation that buffer *sizing* alone cannot
//! control slew on long wires.
//!
//! ```sh
//! cargo run --release -p cts-bench --bin fig_1_1
//! ```

use cts::spice::stages::{single_wire_stage, SingleWireConfig};
use cts::spice::units::{NS, PS};
use cts::spice::SimOptions;
use cts::Technology;

fn main() {
    let tech = Technology::nominal_45nm();
    let buffers = tech.buffer_library();
    let (buf20, buf30) = (&buffers[1], &buffers[2]);
    let mut opts = SimOptions::default_for(10.0 * NS);
    opts.dt = 0.5 * PS;

    println!("== Figure 1.1: wire output slew vs wire length (SPICE sweep) ==");
    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "length (µm)", "20X slew (ps)", "30X slew (ps)", "30X improvement"
    );
    for &len in &[250.0, 500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0] {
        let slew = |drive| {
            let cfg = SingleWireConfig {
                input_buf: buf20,
                l_input_um: 200.0,
                drive,
                l_um: len,
                load: buf20,
                wire: tech.wire(),
                ramp_slew: 80.0 * PS,
                rising: true,
            };
            single_wire_stage(&tech, &cfg)
                .measure(&opts)
                .expect("sweep point must simulate")
                .wire_slew
        };
        let (s20, s30) = (slew(buf20), slew(buf30));
        println!(
            "{:>12.0} {:>14.1} {:>14.1} {:>15.1} %",
            len,
            s20 / PS,
            s30 / PS,
            100.0 * (s20 - s30) / s20
        );
    }
    println!(
        "\npaper's observation: slew grows dramatically with length; upsizing 20X->30X \
         gives only a slight improvement, so long wires need buffers *along* them."
    );
}
