//! Regenerates **Table 5.1**: GSRC benchmarks r1–r5 — SPICE-verified worst
//! slew, skew, and max latency, next to the paper's reported values and
//! prior-work skews.
//!
//! ```sh
//! cargo run --release -p cts-bench --bin table_5_1            # r1..r3 (quick)
//! cargo run --release -p cts-bench --bin table_5_1 -- --full  # all five
//! ```

use cts::benchmarks::gsrc_suite;
use cts::spice::units::PS;
use cts::{CtsOptions, Technology};
use cts_bench::{full_run_requested, library, print_flow_header, print_flow_row, run_suite};

/// One paper row of Table 5.1: (bench, sinks, worst slew ps, skew ps,
/// latency ns, skew of \[6\], skew of \[8\], skew of \[16\]).
type PaperRow = (&'static str, usize, f64, f64, f64, f64, f64, f64);

const PAPER: [PaperRow; 5] = [
    ("r1", 267, 89.5, 69.7, 1.30, 100.0, 57.0, 37.0),
    ("r2", 598, 89.3, 59.9, 1.69, 96.0, 87.4, 59.5),
    ("r3", 862, 89.7, 64.2, 1.95, 101.0, 59.6, 49.5),
    ("r4", 1903, 100.0, 107.1, 2.75, 176.0, 98.6, 59.8),
    ("r5", 3101, 98.3, 89.4, 3.00, 110.0, 86.9, 50.6),
];

fn main() {
    let tech = Technology::nominal_45nm();
    let lib = library(&tech);
    let full = full_run_requested();
    let mut suite = gsrc_suite();
    if !full {
        suite.truncate(3);
        println!("(quick mode: r1–r3; pass --full for r4/r5)\n");
    }

    println!("== Table 5.1: GSRC benchmarks (this reproduction) ==");
    // The whole suite goes through the sharded batch driver: instances
    // spread over the cores, SPICE verification overlapped with synthesis.
    let rows = run_suite(&lib, &tech, CtsOptions::default(), &suite);
    print_flow_header();
    for row in &rows {
        print_flow_row(row);
    }

    println!("\n== Table 5.1: paper values (ps / ns) and prior-work skews ==");
    println!(
        "{:<6} {:>7} {:>11} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "bench", "#sinks", "worst slew", "skew", "latency", "[6]", "[8]", "[16]"
    );
    for (name, sinks, slew, skew, lat, s6, s8, s16) in PAPER {
        println!(
            "{:<6} {:>7} {:>8.1} ps {:>6.1} ps {:>6.2} ns {:>6.1} {:>9.1} {:>9.1}",
            name, sinks, slew, skew, lat, s6, s8, s16
        );
    }

    println!("\n== shape checks ==");
    for row in &rows {
        let paper = PAPER.iter().find(|p| p.0 == row.name).expect("known");
        let slew_ok = row.worst_slew <= 100.0 * PS;
        println!(
            "{}: slew limit {} ({:.1} ps <= 100 ps), skew at {:.1}x the paper's",
            row.name,
            if slew_ok { "HONORED" } else { "VIOLATED" },
            row.worst_slew / PS,
            (row.skew / PS) / paper.3
        );
    }
}
