//! Regenerates **Figure 3.2**: the curve-vs-ramp experiment — two input
//! waveforms with the *same 10–90 % slew* but different shapes shift the
//! buffer output by tens of ps (the paper measures 32 ps at 150 ps slew).
//!
//! ```sh
//! cargo run --release -p cts-bench --bin fig_3_2
//! ```

use cts::spice::stages::{single_wire_stage, SingleWireConfig};
use cts::spice::units::{NS, PS};
use cts::spice::{simulate, Circuit, SimOptions, Waveform};
use cts::Technology;

fn main() {
    let tech = Technology::nominal_45nm();
    let buffers = tech.buffer_library();
    let drive = &buffers[1];
    let mut opts = SimOptions::default_for(8.0 * NS);
    opts.dt = 0.5 * PS;

    println!("== Figure 3.2: curve vs ramp input, same 10-90% slew ==\n");
    println!(
        "{:>16} {:>14} {:>12} {:>12} {:>10}",
        "shaping L (µm)", "slew (ps)", "curve t50", "ramp t50", "shift"
    );

    for &l_shape in &[1200.0, 1800.0, 2400.0] {
        // Build the curved waveform through a buffer + long wire.
        let cfg = SingleWireConfig {
            input_buf: &buffers[0],
            l_input_um: l_shape,
            drive,
            l_um: 600.0,
            load: &buffers[1],
            wire: tech.wire(),
            ramp_slew: 150.0 * PS,
            rising: true,
        };
        let stage = single_wire_stage(&tech, &cfg);
        let res = simulate(&stage.circuit, &opts).expect("shaping sim");
        let curved = res.waveform(stage.probes.drive_in);
        let slew = curved.slew_10_90(tech.vdd()).expect("curved slew");
        let out_curve = res.waveform(stage.probes.load_in);
        let t50_curve = out_curve.t50(tech.vdd()).expect("curve output edge");

        // Ideal ramp with identical slew, aligned at the 10 % crossing.
        let t10_curve = curved.first_crossing(0.1 * tech.vdd(), true).expect("t10");
        let ramp0 = Waveform::rising_ramp_10_90(100.0 * PS, slew, tech.vdd());
        let t10_ramp = ramp0.first_crossing(0.1 * tech.vdd(), true).expect("t10");
        let ramp = ramp0.shifted(t10_curve - t10_ramp);

        let mut c = Circuit::new(&tech);
        let din = c.add_node("drive_in");
        let dout = c.add_node("drive_out");
        c.add_buffer(din, dout, drive);
        let lin = c.add_node("load_in");
        c.add_wire(dout, lin, 600.0, tech.wire());
        let lout = c.add_node("load_out");
        c.add_buffer(lin, lout, &buffers[1]);
        c.drive(din, ramp);
        let res2 = simulate(&c, &opts).expect("ramp sim");
        let t50_ramp = res2
            .waveform(lin)
            .t50(tech.vdd())
            .expect("ramp output edge");

        println!(
            "{:>16.0} {:>14.1} {:>9.1} ps {:>9.1} ps {:>7.1} ps",
            l_shape,
            slew / PS,
            t50_curve / PS,
            t50_ramp / PS,
            (t50_curve - t50_ramp).abs() / PS
        );
    }
    println!(
        "\npaper's observation: at 150 ps slew the output shifted by 32 ps — waveform \
         *shape* matters, which is why the library is characterized with real buffer \
         output waveforms instead of ramps."
    );
}
