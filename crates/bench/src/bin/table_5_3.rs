//! Regenerates **Table 5.3**: H-structure corrections — skew of the
//! original flow vs Method 1 (re-estimation) vs Method 2 (correction) on
//! the twelve benchmark instances, with the flipping counts.
//!
//! Method 2 merge-routes every alternative pairing, so the full-size runs
//! are expensive; quick mode uses size-reduced instances with identical
//! geometry (pass `--full` for the real sink counts).
//!
//! ```sh
//! cargo run --release -p cts-bench --bin table_5_3
//! cargo run --release -p cts-bench --bin table_5_3 -- --full
//! ```

use cts::benchmarks::{full_suite, reduced_suite};
use cts::spice::units::PS;
use cts::{CtsOptions, HCorrection, Technology};
use cts_bench::{full_run_requested, library, run_suite_items};

/// Paper Table 5.3 ratios (%, negative = improvement) and flip counts:
/// (bench, re-estimation ratio, correction ratio, flippings).
const PAPER: [(&str, f64, f64, usize); 12] = [
    ("r1", 23.07, 18.75, 51),
    ("r2", 4.79, 4.57, 116),
    ("r3", 5.32, 5.05, 164),
    ("r4", -12.11, -13.78, 293),
    ("r5", -3.80, -3.95, 509),
    ("f11", -21.68, -27.67, 19),
    ("f12", 20.69, 17.14, 21),
    ("f21", 25.78, 20.50, 22),
    ("f22", -32.66, -48.50, 17),
    ("f31", -9.32, -10.28, 44),
    ("f32", -20.30, -25.47, 42),
    ("fnb1", -8.99, -9.88, 71),
];

fn main() {
    let tech = Technology::nominal_45nm();
    let lib = library(&tech);
    let full = full_run_requested();
    if !full {
        println!("(quick mode: 32-sink variants with benchmark geometry; pass --full for paper-size runs)\n");
    }
    let suite = if full {
        full_suite()
    } else {
        reduced_suite(32)
    };

    // One sharded batch per correction mode: within a mode the twelve
    // instances spread over the shards and their SPICE verification
    // overlaps the remaining synthesis.
    let mode_items: Vec<_> = [
        HCorrection::Off,
        HCorrection::ReEstimate,
        HCorrection::Correct,
    ]
    .into_iter()
    .map(|mode| {
        let opts = CtsOptions::builder().h_correction(mode).build().unwrap();
        run_suite_items(&lib, &tech, opts, &suite)
    })
    .collect();

    println!("== Table 5.3: H-structure corrections (this reproduction) ==");
    println!(
        "{:<6} {:>12} {:>12} {:>8} {:>12} {:>8} {:>6}",
        "bench", "orig skew", "re-est", "ratio", "correct", "ratio", "flips"
    );
    let mut avg_re = 0.0;
    let mut avg_co = 0.0;
    let mut n = 0.0;
    for (i, inst) in suite.iter().enumerate() {
        let skews: Vec<f64> = mode_items.iter().map(|items| items[i].skew()).collect();
        let flips = mode_items[2][i].result.flippings;
        let ratio = |alt: f64| 100.0 * (alt - skews[0]) / skews[0];
        println!(
            "{:<6} {:>9.1} ps {:>9.1} ps {:>+7.1}% {:>9.1} ps {:>+7.1}% {:>6}",
            inst.name(),
            skews[0] / PS,
            skews[1] / PS,
            ratio(skews[1]),
            skews[2] / PS,
            ratio(skews[2]),
            flips
        );
        avg_re += ratio(skews[1]);
        avg_co += ratio(skews[2]);
        n += 1.0;
    }
    println!(
        "\naverage ratio: re-estimation {:+.2} %, correction {:+.2} % (paper: -2.43 % / -6.13 %)",
        avg_re / n,
        avg_co / n
    );

    println!("\n== Table 5.3: paper ratios ==");
    println!(
        "{:<6} {:>10} {:>10} {:>6}",
        "bench", "re-est", "correct", "flips"
    );
    for (name, re, co, flips) in PAPER {
        println!("{:<6} {:>+9.2}% {:>+9.2}% {:>6}", name, re, co, flips);
    }
}
