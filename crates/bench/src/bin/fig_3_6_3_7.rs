//! Regenerates **Figures 3.6 and 3.7**: branch wire delays of the left and
//! right branch as functions of the two branch lengths — the hyperplane
//! fits of the branch characterization.
//!
//! ```sh
//! cargo run --release -p cts-bench --bin fig_3_6_3_7
//! ```

use cts::spice::units::PS;
use cts::timing::{sweep_branch, BufferId, CharacterizeConfig, Load};
use cts::Technology;
use cts_bench::library;

fn main() {
    let tech = Technology::nominal_45nm();
    let lib = library(&tech);
    let cfg = CharacterizeConfig::standard();
    let (drive, ll, lr) = (1usize, 1usize, 1usize);
    let slew = 80.0 * PS;

    println!(
        "== Figures 3.6/3.7: {} branch wire delays vs (l_left, l_right) at {} ps input slew ==\n",
        tech.buffer_library()[drive].name(),
        slew / PS
    );

    let lengths = [100.0, 500.0, 900.0, 1300.0];
    println!("-- Figure 3.6: LEFT branch delay (ps), fitted volume --");
    print!("{:>12}", "l_l \\ l_r");
    for &lr_um in &lengths {
        print!("{lr_um:>10.0}");
    }
    println!();
    for &ll_um in &lengths {
        print!("{ll_um:>12.0}");
        for &lr_um in &lengths {
            let t = lib.branch(
                BufferId(drive),
                (Load::Buffer(BufferId(ll)), Load::Buffer(BufferId(lr))),
                slew,
                (ll_um, lr_um),
            );
            print!("{:>10.2}", t.left_delay / PS);
        }
        println!();
    }

    println!("\n-- Figure 3.7: RIGHT branch delay (ps), fitted volume --");
    print!("{:>12}", "l_l \\ l_r");
    for &lr_um in &lengths {
        print!("{lr_um:>10.0}");
    }
    println!();
    for &ll_um in &lengths {
        print!("{ll_um:>12.0}");
        for &lr_um in &lengths {
            let t = lib.branch(
                BufferId(drive),
                (Load::Buffer(BufferId(ll)), Load::Buffer(BufferId(lr))),
                slew,
                (ll_um, lr_um),
            );
            print!("{:>10.2}", t.right_delay / PS);
        }
        println!();
    }

    // Residuals against a fresh simulation sweep.
    println!("\n-- fit residuals vs direct simulation (sampled) --");
    let samples = sweep_branch(&tech, drive, ll, lr, &cfg).expect("branch sweep");
    let mut worst_l: f64 = 0.0;
    let mut worst_r: f64 = 0.0;
    for s in &samples {
        let t = lib.branch(
            BufferId(drive),
            (Load::Buffer(BufferId(ll)), Load::Buffer(BufferId(lr))),
            s.input_slew,
            (s.l_left_um, s.l_right_um),
        );
        worst_l = worst_l.max((t.left_delay - s.left_delay).abs());
        worst_r = worst_r.max((t.right_delay - s.right_delay).abs());
    }
    println!(
        "worst residual: left {:.2} ps, right {:.2} ps over {} samples",
        worst_l / PS,
        worst_r / PS,
        samples.len()
    );
    println!(
        "\npaper's observation: each branch's delay depends on BOTH lengths (resistive \
         shielding), so the fits live in the joint (slew, l_left, l_right) space."
    );
}
