//! Regenerates **Table 5.2**: ISPD 2009 benchmarks — SPICE-verified worst
//! slew, skew, and max latency, plus the paper's "skew within 3 % of
//! latency" observation.
//!
//! ```sh
//! cargo run --release -p cts-bench --bin table_5_2            # f11..f22
//! cargo run --release -p cts-bench --bin table_5_2 -- --full  # all seven
//! ```

use cts::benchmarks::ispd_suite;
use cts::{CtsOptions, Technology};
use cts_bench::{full_run_requested, library, print_flow_header, print_flow_row, run_suite};

/// Paper Table 5.2: (bench, sinks, worst slew ps, skew ps, latency ns).
const PAPER: [(&str, usize, f64, f64, f64); 7] = [
    ("f11", 121, 99.2, 45.2, 2.26),
    ("f12", 117, 83.6, 45.8, 1.92),
    ("f21", 117, 99.2, 51.1, 2.16),
    ("f22", 91, 100.0, 42.4, 1.62),
    ("f31", 273, 98.1, 65.1, 4.22),
    ("f32", 190, 85.2, 52.3, 3.38),
    ("fnb1", 330, 80.0, 68.6, 4.67),
];

fn main() {
    let tech = Technology::nominal_45nm();
    let lib = library(&tech);
    let full = full_run_requested();
    let mut suite = ispd_suite();
    if !full {
        suite.truncate(4);
        println!("(quick mode: f11..f22; pass --full for all seven)\n");
    }

    println!("== Table 5.2: ISPD'09 benchmarks (this reproduction) ==");
    // Sharded batch run with overlapped SPICE verification.
    let rows = run_suite(&lib, &tech, CtsOptions::default(), &suite);
    print_flow_header();
    for row in &rows {
        print_flow_row(row);
    }

    println!("\n== Table 5.2: paper values ==");
    println!(
        "{:<6} {:>7} {:>11} {:>9} {:>9} {:>12}",
        "bench", "#sinks", "worst slew", "skew", "latency", "skew/latency"
    );
    for (name, sinks, slew, skew, lat) in PAPER {
        println!(
            "{:<6} {:>7} {:>8.1} ps {:>6.1} ps {:>6.2} ns {:>10.1} %",
            name,
            sinks,
            slew,
            skew,
            lat,
            0.1 * skew / lat
        );
    }

    println!("\n== skew-to-latency ratios (paper: all within 3 %) ==");
    for row in &rows {
        println!(
            "{}: {:.1} % of latency",
            row.name,
            100.0 * row.skew / row.max_latency
        );
    }
}
