//! Buffered clock tree synthesis under aggressive buffer insertion —
//! a full reproduction of the DAC 2010 paper (Y.-Y. Chen, C. Dong,
//! D. Chen) and its thesis expansion, as one facade crate.
//!
//! The workspace implements the entire stack the paper depends on:
//!
//! | layer | crate | contents |
//! |---|---|---|
//! | geometry | [`geom`] | Manhattan metric, merge arcs, routing grids |
//! | circuits | [`spice`] | nonlinear RC transient simulator (SPICE stand-in) |
//! | timing | [`timing`] | Elmore/D2M baselines, characterization, delay/slew library |
//! | synthesis | [`core`] | topology generation, merge-routing, H-corrections, verification |
//! | workloads | [`benchmarks`] | GSRC r1–r5, ISPD'09 f11–fnb1, bookshelf IO |
//! | network | [`net`] | JSON-over-TCP front end: `cts-serve` server, blocking client |
//!
//! The most common types are re-exported at the top level.
//!
//! # Quickstart
//!
//! The flow of `examples/quickstart.rs`, compile-checked and *run* as a
//! doc-test (`cargo test --doc`): synthesize a small instance, then
//! SPICE-verify the synthesized netlist — the two stages every workload
//! in this workspace composes.
//!
//! ```
//! use cts::{CtsOptions, Instance, Sink, Synthesizer, Technology, VerifyOptions};
//! use cts::geom::Point;
//!
//! // Four flip-flops on a 2 mm die.
//! let sinks = vec![
//!     Sink::new("ff0", Point::new(0.0, 0.0), 25e-15),
//!     Sink::new("ff1", Point::new(2000.0, 100.0), 25e-15),
//!     Sink::new("ff2", Point::new(150.0, 1900.0), 25e-15),
//!     Sink::new("ff3", Point::new(1800.0, 2000.0), 25e-15),
//! ];
//! let instance = Instance::new("quick", sinks);
//!
//! // Characterized delay/slew library (cached on disk after first use).
//! let library = cts::timing::fast_library();
//! let synth = Synthesizer::new(library, CtsOptions::default());
//! let result = synth.synthesize(&instance)?;
//! assert_eq!(result.tree.sinks_under(result.source).len(), 4);
//!
//! // SPICE-verify the synthesized netlist — the numbers the paper reports.
//! let tech = Technology::nominal_45nm();
//! let verified = cts::verify_tree(
//!     &result.tree,
//!     result.source,
//!     &tech,
//!     &VerifyOptions::default(),
//! )?;
//! assert!(
//!     verified.worst_slew <= synth.options().slew_limit,
//!     "slew limit must be honored"
//! );
//! # Ok::<(), cts::CtsError>(())
//! ```
//!
//! For many instances at once, use [`BatchRunner`]; for a long-running
//! shared process serving concurrent clients, use [`SynthesisService`]
//! (see `examples/service_flow.rs`); to drive that process over TCP —
//! from other processes or non-Rust clients — use [`net`]
//! (`examples/remote_flow.rs` and `docs/PROTOCOL.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Benchmark instances (re-export of `cts-benchmarks`).
pub use cts_benchmarks as benchmarks;
/// The synthesis flow (re-export of `cts-core`).
pub use cts_core as core;
/// Manhattan geometry substrate (re-export of `cts-geom`).
pub use cts_geom as geom;
/// The JSON-over-TCP service front end (re-export of `cts-net`).
pub use cts_net as net;
/// Span tracing, latency histograms, and trace exporters (re-export of
/// `cts-obs`).
pub use cts_obs as obs;
/// Circuit simulation substrate (re-export of `cts-spice`).
pub use cts_spice as spice;
/// Delay/slew modeling (re-export of `cts-timing`).
pub use cts_timing as timing;

pub use cts_core::{
    verify_tree, BatchItem, BatchOptions, BatchOutput, BatchRunner, BatchSubmitError, BatchSummary,
    Buffering, ClockTree, CornerRow, CtsError, CtsOptions, CtsOptionsBuilder, CtsResult, DistStats,
    HCorrection, Instance, LevelStats, NodeKind, OptionsError, ParetoFront, ParetoPoint,
    RequestHandle, RequestId, RequestStatus, ServiceError, ServiceMetrics, ServiceOptions,
    ServiceStats, Sink, StagedSynthesis, SubmitError, SynthesisContext, SynthesisPipeline,
    SynthesisRequest, SynthesisResult, SynthesisService, Synthesizer, Ticket, TimingEngine,
    TimingReport, TreeNode, TreeNodeId, TreeStructureError, Variation, VariationMode,
    VariationSummary, VerifiedTiming, Verifier, VerifyOptions, VerifyStats,
};
pub use cts_spice::Technology;
pub use cts_timing::{
    corner_seed, library_fingerprint, perturb_library, BufferId, CornerLibraryCache,
    DelaySlewLibrary, Load, PerturbSigma,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Compile-time check that the key paths exist and agree.
        fn assert_same<T>(_: T, _: T) {}
        assert_same(
            crate::CtsOptions::default(),
            crate::core::CtsOptions::default(),
        );
        let t = crate::Technology::nominal_45nm();
        assert_eq!(t.buffer_library().len(), 3);
    }
}
