//! Property-based tests on the synthesis flow: structural and timing
//! invariants over randomized instances.

use cts_core::{
    CtsOptions, Instance, NodeKind, ParetoFront, ParetoPoint, Sink, Synthesizer, TimingEngine,
};
use cts_geom::Point;
use cts_timing::fast_library;
use proptest::prelude::*;

fn instance_strategy() -> impl Strategy<Value = Instance> {
    // 2..10 sinks over dies from 0.5 mm to 8 mm.
    (
        prop::collection::vec(((0.0..1.0f64), (0.0..1.0f64), (10.0..40.0f64)), 2..10),
        500.0..8000.0f64,
    )
        .prop_map(|(raw, die)| {
            let sinks = raw
                .iter()
                .enumerate()
                .map(|(i, &(x, y, cap_ff))| {
                    Sink::new(
                        format!("s{i}"),
                        Point::new(x * die, y * die),
                        cap_ff * 1e-15,
                    )
                })
                .collect();
            Instance::new("prop", sinks)
        })
}

fn pareto_points_strategy() -> impl Strategy<Value = Vec<ParetoPoint>> {
    // Small ordinal range on purpose: collisions exercise the canonical
    // tie-breaks that folding relies on. Objectives span realistic
    // magnitudes (ps skew, fF cap, ns latency) so exact float identity —
    // not approximate equality — is what the property checks.
    prop::collection::vec(
        (0usize..16, 0.0..80.0f64, 0.0..900.0f64, 0.1..4.0f64).prop_map(
            |(ordinal, skew_ps, cap_ff, lat_ns)| ParetoPoint {
                ordinal,
                skew: skew_ps * 1e-12,
                buffer_cap: cap_ff * 1e-15,
                latency: lat_ns * 1e-9,
            },
        ),
        0..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every sink of the instance appears exactly once in the synthesized
    /// tree, the tree validates structurally, and there is a single root.
    #[test]
    fn synthesis_preserves_sinks(inst in instance_strategy()) {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let r = synth.synthesize(&inst).expect("synthesis");
        let sinks = r.tree.sinks_under(r.source);
        prop_assert_eq!(sinks.len(), inst.sinks().len());
        let mut indices: Vec<usize> = sinks
            .iter()
            .map(|&id| match r.tree.node(id).kind {
                NodeKind::Sink { index, .. } => index,
                ref k => panic!("non-sink leaf {k:?}"),
            })
            .collect();
        indices.sort_unstable();
        let expect: Vec<usize> = (0..inst.sinks().len()).collect();
        prop_assert_eq!(indices, expect);
        r.tree.validate_under(r.source);
    }

    /// The engine-estimated worst slew respects the synthesis limit and
    /// every sink arrival is positive and below 100 ns (sanity bounds).
    #[test]
    fn synthesis_respects_slew_and_bounds(inst in instance_strategy()) {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let r = synth.synthesize(&inst).expect("synthesis");
        prop_assert!(
            r.report.worst_slew <= synth.options().slew_limit * 1.1,
            "engine slew {} ps", r.report.worst_slew / 1e-12
        );
        for &(_, t) in &r.report.sink_arrivals {
            prop_assert!((0.0..100e-9).contains(&t), "arrival {t}");
        }
        prop_assert!(r.report.skew() <= r.report.latency + 1e-15);
    }

    /// Wirelength dominates the sink-spread lower bound: every sink must be
    /// reachable, so total wire >= half-perimeter of the bounding box.
    #[test]
    fn wirelength_lower_bound(inst in instance_strategy()) {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let r = synth.synthesize(&inst).expect("synthesis");
        let bb = inst.die();
        let lower = (bb.width() + bb.height()) * 0.5;
        prop_assert!(
            r.wirelength_um >= lower * 0.5,
            "wire {} µm vs lower bound {} µm", r.wirelength_um, lower
        );
    }

    /// Synthesis is a pure function of its inputs.
    #[test]
    fn synthesis_is_deterministic(inst in instance_strategy()) {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let a = synth.synthesize(&inst).expect("first");
        let b = synth.synthesize(&inst).expect("second");
        prop_assert_eq!(a.tree, b.tree);
        prop_assert_eq!(a.report.latency, b.report.latency);
    }

    /// Unbuffered depth is conserved by the engine's stage decomposition:
    /// evaluating any buffer node's subtree twice (directly and as part of
    /// the full tree) yields identical sink orderings.
    #[test]
    fn subtree_evaluation_consistency(inst in instance_strategy()) {
        let lib = fast_library();
        let synth = Synthesizer::new(lib, CtsOptions::default());
        let r = synth.synthesize(&inst).expect("synthesis");
        let engine = TimingEngine::new(lib);
        let full = engine.evaluate(&r.tree, r.source, synth.options().source_slew);
        let full_arr = full.arrival_map();
        // Pick the first buffer node; its subtree ordering must match the
        // full-tree ordering restricted to its sinks.
        if let Some(buf) = r.tree.ids().find(|&id| {
            matches!(r.tree.node(id).kind, NodeKind::Buffer { .. })
                && !r.tree.sinks_under(id).is_empty()
        }) {
            let sub = engine.evaluate_subtree(
                &r.tree,
                buf,
                synth.options().virtual_driver,
                synth.options().slew_target,
            );
            let sub_arr = sub.arrival_map();
            let sinks = r.tree.sinks_under(buf);
            for &a in &sinks {
                for &b in &sinks {
                    // Clearly separated pairs must agree in order.
                    if sub_arr[&a] + 20e-12 < sub_arr[&b] {
                        prop_assert!(
                            full_arr[&a] < full_arr[&b] + 10e-12,
                            "ordering flip between subtree and full evaluation"
                        );
                    }
                }
            }
        }
    }

    /// Pareto folding is associative, commutative, and
    /// grouping-independent **bit for bit**: however a sweep's evaluated
    /// points are partitioned across workers, every association of
    /// partial folds produces the identical front. This is the exactness
    /// contract the server's `pareto` event depends on for
    /// worker-count-independent wire bytes.
    #[test]
    fn pareto_fold_is_associative_bit_for_bit(
        a in pareto_points_strategy(),
        b in pareto_points_strategy(),
        c in pareto_points_strategy(),
    ) {
        let (fa, fb, fc) = (
            ParetoFront::from_points(a.iter().copied()),
            ParetoFront::from_points(b.iter().copied()),
            ParetoFront::from_points(c.iter().copied()),
        );
        let left = ParetoFront::fold(&[ParetoFront::fold(&[fa.clone(), fb.clone()]), fc.clone()]);
        let right = ParetoFront::fold(&[fa.clone(), ParetoFront::fold(&[fb.clone(), fc.clone()])]);
        let flat = ParetoFront::fold(&[fc, fb, fa]); // reversed order too
        let one_shot = ParetoFront::from_points(
            a.iter().chain(b.iter()).chain(c.iter()).copied(),
        );
        for other in [&right, &flat, &one_shot] {
            prop_assert_eq!(&left, other);
            // Bitwise, not just PartialEq: NaN-free here, but the rows
            // must be the same floats, not merely equal ones.
            for (x, y) in left.rows().iter().zip(other.rows()) {
                prop_assert_eq!(x.skew.to_bits(), y.skew.to_bits());
                prop_assert_eq!(x.buffer_cap.to_bits(), y.buffer_cap.to_bits());
                prop_assert_eq!(x.latency.to_bits(), y.latency.to_bits());
            }
        }
        prop_assert_eq!(left.len(), a.len() + b.len() + c.len());
        // The derived front is a subset of the rows and never empty when
        // rows exist (something is always non-dominated).
        let front = left.front();
        prop_assert!(front.len() <= left.len());
        prop_assert_eq!(front.is_empty(), left.is_empty());
    }
}
