//! Equivalence pin: the spatially-indexed `find_matching` must reproduce
//! the retained brute-force scan **bit for bit** — same `pairs` vector
//! (order included), same `seed` — for every input. This is what lets
//! the index replace the O(n²) scan without perturbing a single golden
//! or determinism test: the default synthesis path flows through it.
//!
//! Coverage: every size 1..=96 with deterministic pseudo-random inputs
//! (clustered, ties on purpose), proptest sweeps up to 512 candidates
//! with wild-but-finite coordinates, the all-same-point degenerate case,
//! and delay-dominated cost weights where the geometric bound prunes
//! nothing.

use cts_core::topology::{find_matching, find_matching_brute, MatchCandidate};
use cts_geom::Point;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_equivalent(cands: &[MatchCandidate], centroid: Point, alpha: f64, beta: f64) {
    let fast = find_matching(cands, centroid, alpha, beta).expect("finite input");
    let brute = find_matching_brute(cands, centroid, alpha, beta).expect("finite input");
    assert_eq!(
        fast.seed,
        brute.seed,
        "seed diverged at n = {}",
        cands.len()
    );
    assert_eq!(
        fast.pairs,
        brute.pairs,
        "pairs diverged at n = {}",
        cands.len()
    );
}

#[test]
fn every_size_up_to_96_matches_brute() {
    let mut rng = StdRng::seed_from_u64(0x5eed_cafe);
    for n in 1..=96usize {
        // Clustered geometry with duplicated points and delays, to force
        // distance and cost ties through both tie-break paths.
        let cands: Vec<MatchCandidate> = (0..n)
            .map(|_| {
                let cluster = rng.gen_range(0..4u32);
                let base = 2500.0 * cluster as f64;
                let quantum = 130.0; // coarse grid => frequent exact ties
                MatchCandidate {
                    location: Point::new(
                        base + rng.gen_range(0..6u32) as f64 * quantum,
                        rng.gen_range(0..6u32) as f64 * quantum,
                    ),
                    delay: rng.gen_range(0..5u32) as f64 * 3e-12,
                }
            })
            .collect();
        let centroid = Point::new(3750.0, 400.0);
        assert_equivalent(&cands, centroid, 1e-3, 1e11);
        // Delay-dominated weights: the ring bound prunes nothing and the
        // query degenerates to a full scan — still bit-identical.
        assert_equivalent(&cands, centroid, 0.0, 1e12);
    }
}

#[test]
fn all_same_point_degenerate() {
    for n in [1usize, 2, 3, 17, 64, 255] {
        let cands = vec![
            MatchCandidate {
                location: Point::new(42.0, 17.0),
                delay: 5e-12,
            };
            n
        ];
        assert_equivalent(&cands, Point::new(42.0, 17.0), 1e-3, 1e11);
        assert_equivalent(&cands, Point::ORIGIN, 1e-3, 1e11);
    }
}

fn candidate_strategy(max: usize) -> impl Strategy<Value = Vec<MatchCandidate>> {
    // Wild but finite: coordinates across six orders of magnitude,
    // negatives included, delays from zero to microseconds.
    prop::collection::vec(
        (
            (-1.0e6..1.0e6f64),
            (-1.0e6..1.0e6f64),
            (0.0..1.0e-6f64),
            (0.0..1.0f64), // quantizer selector: forces coincidences
        ),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(x, y, d, q)| {
                // A third of the points snap to a coarse lattice so exact
                // ties (same point, same cost) appear at every size.
                let (x, y, d) = if q < 0.33 {
                    (
                        (x / 1e5).round() * 1e5,
                        (y / 1e5).round() * 1e5,
                        (d / 1e-7).round() * 1e-7,
                    )
                } else {
                    (x, y, d)
                };
                MatchCandidate {
                    location: Point::new(x, y),
                    delay: d,
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random candidate sets up to 512: the indexed matcher is
    /// bit-identical to the brute scan under the default cost weights.
    #[test]
    fn indexed_equals_brute_up_to_512(cands in candidate_strategy(512)) {
        let centroid = Point::new(1234.5, -9876.5);
        assert_equivalent(&cands, centroid, 1e-3, 1e11);
    }

    /// Same, under adversarial weights (distance-only and delay-heavy).
    #[test]
    fn indexed_equals_brute_other_weights(cands in candidate_strategy(192)) {
        let centroid = Point::ORIGIN;
        assert_equivalent(&cands, centroid, 1.0, 0.0);
        assert_equivalent(&cands, centroid, 1e-9, 1e12);
    }
}
