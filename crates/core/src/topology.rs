//! Levelized topology generation (paper §4.1.1).
//!
//! Each level pairs up the active sub-tree roots using a cost that mixes
//! distance and delay difference (eq. 4.1), with the paper's greedy
//! heuristic: repeatedly take the unmatched node *farthest from the sink
//! centroid* and pair it with its cheapest unmatched partner. With an odd
//! node count, the node with maximum latency is promoted unmatched to the
//! next level (the "seed"), where its larger delay is a better fit.

use cts_geom::Point;

/// A candidate for pairing at the current level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchCandidate {
    /// Location of the sub-tree root (µm).
    pub location: Point,
    /// Sub-tree delay/latency estimate (s).
    pub delay: f64,
}

/// The pairing computed for one level.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// Index pairs into the candidate slice, in processing order.
    pub pairs: Vec<(usize, usize)>,
    /// Index of the unmatched seed node (odd counts only).
    pub seed: Option<usize>,
}

/// The pairing cost of eq. 4.1: `α·distance + β·|Δdelay|`.
pub fn edge_cost(a: &MatchCandidate, b: &MatchCandidate, alpha: f64, beta: f64) -> f64 {
    alpha * a.location.manhattan_dist(b.location) + beta * (a.delay - b.delay).abs()
}

/// Computes the level matching with the farthest-from-centroid greedy
/// heuristic.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn find_matching(
    candidates: &[MatchCandidate],
    centroid: Point,
    alpha: f64,
    beta: f64,
) -> Matching {
    assert!(!candidates.is_empty(), "cannot match zero candidates");
    let n = candidates.len();
    let mut unmatched: Vec<usize> = (0..n).collect();
    let mut pairs = Vec::with_capacity(n / 2);

    // Seed: with an odd count, promote the maximum-latency node.
    let seed = if n % 2 == 1 {
        let s = *unmatched
            .iter()
            .max_by(|&&i, &&j| {
                candidates[i]
                    .delay
                    .partial_cmp(&candidates[j].delay)
                    .unwrap()
                    .then(i.cmp(&j))
            })
            .expect("non-empty");
        unmatched.retain(|&i| i != s);
        Some(s)
    } else {
        None
    };

    while unmatched.len() >= 2 {
        // Farthest unmatched node from the centroid.
        let (pos, &far) = unmatched
            .iter()
            .enumerate()
            .max_by(|(_, &i), (_, &j)| {
                let di = candidates[i].location.manhattan_dist(centroid);
                let dj = candidates[j].location.manhattan_dist(centroid);
                di.partial_cmp(&dj).unwrap().then(j.cmp(&i))
            })
            .expect("len >= 2");
        unmatched.swap_remove(pos);

        // Its cheapest partner.
        let (pos, &near) = unmatched
            .iter()
            .enumerate()
            .min_by(|(_, &i), (_, &j)| {
                let ci = edge_cost(&candidates[far], &candidates[i], alpha, beta);
                let cj = edge_cost(&candidates[far], &candidates[j], alpha, beta);
                ci.partial_cmp(&cj).unwrap().then(i.cmp(&j))
            })
            .expect("len >= 1");
        unmatched.swap_remove(pos);
        pairs.push((far, near));
    }
    debug_assert!(unmatched.is_empty());

    Matching { pairs, seed }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(x: f64, y: f64, delay_ps: f64) -> MatchCandidate {
        MatchCandidate {
            location: Point::new(x, y),
            delay: delay_ps * 1e-12,
        }
    }

    #[test]
    fn even_count_pairs_everything() {
        let c = vec![
            cand(0.0, 0.0, 0.0),
            cand(100.0, 0.0, 0.0),
            cand(1000.0, 1000.0, 0.0),
            cand(1100.0, 1000.0, 0.0),
        ];
        let m = find_matching(&c, Point::new(550.0, 500.0), 1.0, 0.0);
        assert_eq!(m.pairs.len(), 2);
        assert!(m.seed.is_none());
        // Close pairs should be matched together.
        let mut matched: Vec<(usize, usize)> =
            m.pairs.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        matched.sort_unstable();
        assert_eq!(matched, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn odd_count_promotes_max_latency_seed() {
        let c = vec![
            cand(0.0, 0.0, 10.0),
            cand(10.0, 0.0, 90.0), // slowest: becomes the seed
            cand(20.0, 0.0, 12.0),
        ];
        let m = find_matching(&c, Point::new(10.0, 0.0), 1.0, 0.0);
        assert_eq!(m.seed, Some(1));
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(
            (
                m.pairs[0].0.min(m.pairs[0].1),
                m.pairs[0].0.max(m.pairs[0].1)
            ),
            (0, 2)
        );
    }

    #[test]
    fn beta_steers_toward_delay_balance() {
        // Node 0 is geometrically closest to 1 but delay-matched with 2.
        let c = vec![
            cand(0.0, 0.0, 0.0),
            cand(50.0, 0.0, 100.0),
            cand(400.0, 0.0, 1.0),
            cand(450.0, 0.0, 99.0),
        ];
        // Pure distance: (0,1), (2,3).
        let m_dist = find_matching(&c, Point::new(225.0, 0.0), 1.0, 0.0);
        let norm = |p: (usize, usize)| (p.0.min(p.1), p.0.max(p.1));
        let pairs_dist: Vec<_> = m_dist.pairs.iter().map(|&p| norm(p)).collect();
        assert!(pairs_dist.contains(&(0, 1)));
        // Delay-dominated: (0,2), (1,3).
        let m_delay = find_matching(&c, Point::new(225.0, 0.0), 1e-6, 1e12);
        let pairs_delay: Vec<_> = m_delay.pairs.iter().map(|&p| norm(p)).collect();
        assert!(pairs_delay.contains(&(0, 2)), "{pairs_delay:?}");
        assert!(pairs_delay.contains(&(1, 3)));
    }

    #[test]
    fn farthest_first_processing_order() {
        // The node farthest from the centroid must appear in the first pair.
        let c = vec![
            cand(0.0, 0.0, 0.0),
            cand(10.0, 0.0, 0.0),
            cand(5000.0, 5000.0, 0.0), // far outlier
            cand(4990.0, 5000.0, 0.0),
        ];
        let m = find_matching(&c, Point::new(10.0, 10.0), 1.0, 0.0);
        let first = m.pairs[0];
        assert!(first.0 == 2 || first.1 == 2);
    }

    #[test]
    fn two_nodes_trivial() {
        let c = vec![cand(0.0, 0.0, 0.0), cand(10.0, 0.0, 5.0)];
        let m = find_matching(&c, Point::ORIGIN, 1.0, 1.0);
        assert_eq!(m.pairs.len(), 1);
        assert!(m.seed.is_none());
    }

    #[test]
    fn single_node_is_seed() {
        let c = vec![cand(0.0, 0.0, 0.0)];
        let m = find_matching(&c, Point::ORIGIN, 1.0, 1.0);
        assert!(m.pairs.is_empty());
        assert_eq!(m.seed, Some(0));
    }
}
