//! Levelized topology generation (paper §4.1.1).
//!
//! Each level pairs up the active sub-tree roots using a cost that mixes
//! distance and delay difference (eq. 4.1), with the paper's greedy
//! heuristic: repeatedly take the unmatched node *farthest from the sink
//! centroid* and pair it with its cheapest unmatched partner. With an odd
//! node count, the node with maximum latency is promoted unmatched to the
//! next level (the "seed"), where its larger delay is a better fit.
//!
//! [`find_matching`] runs the heuristic against the grid-bucket index in
//! [`crate::spatial`]: the farthest-first order is one distance sort up
//! front (the centroid is fixed, so the order never changes — matched
//! nodes are merely skipped), and each cheapest-partner query scans
//! expanding rings instead of every unmatched node. Both selections use
//! exact total orders on `(key, index)`, so the result is bit-identical
//! to the retained brute-force scan [`find_matching_brute`] — pinned by
//! an equivalence proptest over degenerate and adversarial inputs.

use crate::options::CtsError;
use crate::spatial::GridIndex;
use cts_geom::Point;

/// A candidate for pairing at the current level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchCandidate {
    /// Location of the sub-tree root (µm).
    pub location: Point,
    /// Sub-tree delay/latency estimate (s).
    pub delay: f64,
}

/// The pairing computed for one level.
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// Index pairs into the candidate slice, in processing order.
    pub pairs: Vec<(usize, usize)>,
    /// Index of the unmatched seed node (odd counts only).
    pub seed: Option<usize>,
}

/// The pairing cost of eq. 4.1: `α·distance + β·|Δdelay|`.
pub fn edge_cost(a: &MatchCandidate, b: &MatchCandidate, alpha: f64, beta: f64) -> f64 {
    alpha * a.location.manhattan_dist(b.location) + beta * (a.delay - b.delay).abs()
}

/// Rejects non-finite coordinates or delays up front, so a NaN never
/// reaches a comparison deep inside a worker thread.
fn validate_finite(candidates: &[MatchCandidate], centroid: Point) -> Result<(), CtsError> {
    for (i, c) in candidates.iter().enumerate() {
        if !(c.location.x.is_finite() && c.location.y.is_finite() && c.delay.is_finite()) {
            return Err(CtsError::NonFinite {
                context: format!(
                    "matching candidate {i} at ({}, {}) with delay {} — all must be finite",
                    c.location.x, c.location.y, c.delay
                ),
            });
        }
    }
    if !(centroid.x.is_finite() && centroid.y.is_finite()) {
        return Err(CtsError::NonFinite {
            context: format!("sink centroid ({}, {})", centroid.x, centroid.y),
        });
    }
    Ok(())
}

/// Seed selection (odd counts): the maximum-delay candidate, ties broken
/// toward the **largest** index (the order `max_by` resolves to).
fn pick_seed(candidates: &[MatchCandidate]) -> usize {
    (0..candidates.len())
        .max_by(|&i, &j| {
            candidates[i]
                .delay
                .total_cmp(&candidates[j].delay)
                .then(i.cmp(&j))
        })
        .expect("non-empty")
}

/// Computes the level matching with the farthest-from-centroid greedy
/// heuristic, accelerated by the [`GridIndex`]. Bit-identical to
/// [`find_matching_brute`] for every input.
///
/// # Errors
///
/// [`CtsError::NonFinite`] if any candidate coordinate/delay or the
/// centroid is NaN or infinite.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn find_matching(
    candidates: &[MatchCandidate],
    centroid: Point,
    alpha: f64,
    beta: f64,
) -> Result<Matching, CtsError> {
    assert!(!candidates.is_empty(), "cannot match zero candidates");
    validate_finite(candidates, centroid)?;
    let n = candidates.len();

    // Seed: with an odd count, promote the maximum-latency node.
    let seed = (n % 2 == 1).then(|| pick_seed(candidates));

    // Farthest-first order, fixed for the whole level: distance to the
    // centroid descending, then smallest index (the brute scan's
    // tie-break). Matched nodes are skipped via the index's live flags.
    let dist: Vec<f64> = candidates
        .iter()
        .map(|c| c.location.manhattan_dist(centroid))
        .collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        dist[b as usize]
            .total_cmp(&dist[a as usize])
            .then(a.cmp(&b))
    });

    let mut index = GridIndex::build(candidates);
    if let Some(s) = seed {
        index.remove(s);
    }

    let mut pairs = Vec::with_capacity(n / 2);
    let mut cursor = 0usize;
    while index.len() >= 2 {
        let far = loop {
            let i = order[cursor] as usize;
            cursor += 1;
            if index.is_live(i) {
                break i;
            }
        };
        index.remove(far);
        let near = index
            .cheapest_partner(candidates, far, alpha, beta)
            .expect("at least one live partner remains");
        index.remove(near);
        pairs.push((far, near));
    }

    Ok(Matching { pairs, seed })
}

/// The original O(n²) scan, retained as the semantic reference: the
/// equivalence proptest asserts [`find_matching`] reproduces its output
/// bit for bit, and `--bench synth_scale` measures the speedup against
/// it at 100k roots.
///
/// # Errors
///
/// [`CtsError::NonFinite`] if any candidate coordinate/delay or the
/// centroid is NaN or infinite.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn find_matching_brute(
    candidates: &[MatchCandidate],
    centroid: Point,
    alpha: f64,
    beta: f64,
) -> Result<Matching, CtsError> {
    assert!(!candidates.is_empty(), "cannot match zero candidates");
    validate_finite(candidates, centroid)?;
    let n = candidates.len();
    let mut unmatched: Vec<usize> = (0..n).collect();
    let mut pairs = Vec::with_capacity(n / 2);

    let seed = if n % 2 == 1 {
        let s = pick_seed(candidates);
        unmatched.retain(|&i| i != s);
        Some(s)
    } else {
        None
    };

    while unmatched.len() >= 2 {
        // Farthest unmatched node from the centroid.
        let (pos, &far) = unmatched
            .iter()
            .enumerate()
            .max_by(|(_, &i), (_, &j)| {
                let di = candidates[i].location.manhattan_dist(centroid);
                let dj = candidates[j].location.manhattan_dist(centroid);
                di.total_cmp(&dj).then(j.cmp(&i))
            })
            .expect("len >= 2");
        unmatched.swap_remove(pos);

        // Its cheapest partner.
        let (pos, &near) = unmatched
            .iter()
            .enumerate()
            .min_by(|(_, &i), (_, &j)| {
                let ci = edge_cost(&candidates[far], &candidates[i], alpha, beta);
                let cj = edge_cost(&candidates[far], &candidates[j], alpha, beta);
                ci.total_cmp(&cj).then(i.cmp(&j))
            })
            .expect("len >= 1");
        unmatched.swap_remove(pos);
        pairs.push((far, near));
    }
    debug_assert!(unmatched.is_empty());

    Ok(Matching { pairs, seed })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(x: f64, y: f64, delay_ps: f64) -> MatchCandidate {
        MatchCandidate {
            location: Point::new(x, y),
            delay: delay_ps * 1e-12,
        }
    }

    #[test]
    fn even_count_pairs_everything() {
        let c = vec![
            cand(0.0, 0.0, 0.0),
            cand(100.0, 0.0, 0.0),
            cand(1000.0, 1000.0, 0.0),
            cand(1100.0, 1000.0, 0.0),
        ];
        let m = find_matching(&c, Point::new(550.0, 500.0), 1.0, 0.0).unwrap();
        assert_eq!(m.pairs.len(), 2);
        assert!(m.seed.is_none());
        // Close pairs should be matched together.
        let mut matched: Vec<(usize, usize)> =
            m.pairs.iter().map(|&(a, b)| (a.min(b), a.max(b))).collect();
        matched.sort_unstable();
        assert_eq!(matched, vec![(0, 1), (2, 3)]);
    }

    #[test]
    fn odd_count_promotes_max_latency_seed() {
        let c = vec![
            cand(0.0, 0.0, 10.0),
            cand(10.0, 0.0, 90.0), // slowest: becomes the seed
            cand(20.0, 0.0, 12.0),
        ];
        let m = find_matching(&c, Point::new(10.0, 0.0), 1.0, 0.0).unwrap();
        assert_eq!(m.seed, Some(1));
        assert_eq!(m.pairs.len(), 1);
        assert_eq!(
            (
                m.pairs[0].0.min(m.pairs[0].1),
                m.pairs[0].0.max(m.pairs[0].1)
            ),
            (0, 2)
        );
    }

    #[test]
    fn beta_steers_toward_delay_balance() {
        // Node 0 is geometrically closest to 1 but delay-matched with 2.
        let c = vec![
            cand(0.0, 0.0, 0.0),
            cand(50.0, 0.0, 100.0),
            cand(400.0, 0.0, 1.0),
            cand(450.0, 0.0, 99.0),
        ];
        // Pure distance: (0,1), (2,3).
        let m_dist = find_matching(&c, Point::new(225.0, 0.0), 1.0, 0.0).unwrap();
        let norm = |p: (usize, usize)| (p.0.min(p.1), p.0.max(p.1));
        let pairs_dist: Vec<_> = m_dist.pairs.iter().map(|&p| norm(p)).collect();
        assert!(pairs_dist.contains(&(0, 1)));
        // Delay-dominated: (0,2), (1,3).
        let m_delay = find_matching(&c, Point::new(225.0, 0.0), 1e-6, 1e12).unwrap();
        let pairs_delay: Vec<_> = m_delay.pairs.iter().map(|&p| norm(p)).collect();
        assert!(pairs_delay.contains(&(0, 2)), "{pairs_delay:?}");
        assert!(pairs_delay.contains(&(1, 3)));
    }

    #[test]
    fn farthest_first_processing_order() {
        // The node farthest from the centroid must appear in the first pair.
        let c = vec![
            cand(0.0, 0.0, 0.0),
            cand(10.0, 0.0, 0.0),
            cand(5000.0, 5000.0, 0.0), // far outlier
            cand(4990.0, 5000.0, 0.0),
        ];
        let m = find_matching(&c, Point::new(10.0, 10.0), 1.0, 0.0).unwrap();
        let first = m.pairs[0];
        assert!(first.0 == 2 || first.1 == 2);
    }

    #[test]
    fn two_nodes_trivial() {
        let c = vec![cand(0.0, 0.0, 0.0), cand(10.0, 0.0, 5.0)];
        let m = find_matching(&c, Point::ORIGIN, 1.0, 1.0).unwrap();
        assert_eq!(m.pairs.len(), 1);
        assert!(m.seed.is_none());
    }

    #[test]
    fn single_node_is_seed() {
        let c = vec![cand(0.0, 0.0, 0.0)];
        let m = find_matching(&c, Point::ORIGIN, 1.0, 1.0).unwrap();
        assert!(m.pairs.is_empty());
        assert_eq!(m.seed, Some(0));
    }

    #[test]
    fn nan_candidate_is_a_structured_error() {
        let c = vec![cand(0.0, 0.0, 0.0), cand(f64::NAN, 0.0, 0.0)];
        let err = find_matching(&c, Point::ORIGIN, 1.0, 1.0).unwrap_err();
        assert!(matches!(err, CtsError::NonFinite { .. }), "{err}");
        let err = find_matching_brute(&c, Point::ORIGIN, 1.0, 1.0).unwrap_err();
        assert!(matches!(err, CtsError::NonFinite { .. }));
    }

    #[test]
    fn infinite_delay_is_a_structured_error() {
        let c = vec![cand(0.0, 0.0, f64::INFINITY), cand(1.0, 0.0, 0.0)];
        assert!(find_matching(&c, Point::ORIGIN, 1.0, 1.0).is_err());
    }

    #[test]
    fn nan_centroid_is_a_structured_error() {
        let c = vec![cand(0.0, 0.0, 0.0), cand(1.0, 0.0, 0.0)];
        let err = find_matching(&c, Point::new(f64::NAN, 0.0), 1.0, 1.0).unwrap_err();
        assert!(matches!(err, CtsError::NonFinite { .. }));
    }

    #[test]
    fn indexed_matches_brute_on_clustered_input() {
        // A quick inline spot check; the exhaustive sweep lives in the
        // equivalence proptest (tests/matching_equivalence.rs).
        let mut c = Vec::new();
        for i in 0..37 {
            let cx = (i % 3) as f64 * 3000.0;
            let cy = (i % 5) as f64 * 2000.0;
            c.push(cand(
                cx + (i * 17 % 13) as f64,
                cy + (i * 29 % 7) as f64,
                i as f64,
            ));
        }
        let centroid = Point::new(3100.0, 4200.0);
        let fast = find_matching(&c, centroid, 1e-3, 1e11).unwrap();
        let brute = find_matching_brute(&c, centroid, 1e-3, 1e11).unwrap();
        assert_eq!(fast, brute);
    }
}
