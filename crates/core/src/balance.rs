//! The balance stage: progressive wire snaking under the slew constraint
//! (paper §4.2.1).
//!
//! When the delay difference between two sub-trees exceeds what moving the
//! merge point can compensate, extra delay must be *manufactured* on the
//! faster side. Unbuffered snaking would violate the slew limit, so the
//! paper inserts wire and buffers alternately: each snaking stage is a
//! driving buffer plus as much wire as the slew target allows (or as much
//! as still needed), repeated until the target delay is reached. The last
//! inserted buffer becomes the new sub-tree root.

use crate::options::{CtsError, CtsOptions};
use crate::tree::{ClockTree, NodeKind, TreeNodeId};
use cts_timing::{BufferId, DelaySlewLibrary, Load};

/// Wire-snaking balancer.
#[derive(Debug, Clone, Copy)]
pub struct Balancer<'a> {
    lib: &'a DelaySlewLibrary,
    options: &'a CtsOptions,
}

/// Result of a balancing pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BalanceOutcome {
    /// The (possibly new) root of the balanced sub-tree.
    pub root: TreeNodeId,
    /// Estimated delay added (s).
    pub added_delay: f64,
    /// Snaking stages inserted.
    pub stages: usize,
}

impl<'a> Balancer<'a> {
    /// Creates a balancer.
    pub fn new(lib: &'a DelaySlewLibrary, options: &'a CtsOptions) -> Balancer<'a> {
        Balancer { lib, options }
    }

    /// The load a routing/balancing wire sees when it reaches `root`.
    pub fn load_of(&self, tree: &ClockTree, root: TreeNodeId) -> Load {
        match tree.node(root).kind {
            NodeKind::Buffer { buffer } => Load::Buffer(buffer),
            NodeKind::Sink { cap, .. } => Load::Sink { cap },
            NodeKind::Joint | NodeKind::Source { .. } => Load::Sink {
                cap: tree.shielded_cap_under(root, self.lib.wire().c_per_um(), &|b| {
                    self.lib.buffer(b).stage1_size() * 1.2e-15
                }),
            },
        }
    }

    /// Effective unbuffered pending below `root` in wire-equivalent µm —
    /// the budget a snaking stage's driver must additionally cover. The
    /// larger of raw unbuffered depth and shielded capacitance as length.
    pub fn effective_pending_um(&self, tree: &ClockTree, root: TreeNodeId) -> f64 {
        match tree.node(root).kind {
            NodeKind::Buffer { .. } | NodeKind::Sink { .. } => 0.0,
            _ => {
                let c_per_um = self.lib.wire().c_per_um();
                let depth = tree.unbuffered_depth_um(root);
                let cap = tree.shielded_cap_under(root, c_per_um, &|b| {
                    self.lib.buffer(b).stage1_size() * 1.2e-15
                });
                depth.max(0.8 * cap / c_per_um)
            }
        }
    }

    /// Delay of one snaking stage: buffer `drive` plus `len` µm of wire
    /// into `load`, under the slew-target input assumption.
    fn stage_delay(&self, drive: BufferId, load: Load, len: f64) -> f64 {
        let t = self
            .lib
            .single_wire(drive, load, self.options.slew_target, len.max(1.0));
        t.buffer_delay + t.wire_delay
    }

    /// Smallest achievable single-stage delay onto `load` (strongest buffer,
    /// minimal wire).
    fn min_stage_delay(&self, load: Load) -> f64 {
        self.lib
            .buffer_ids()
            .map(|b| self.stage_delay(b, load, 1.0))
            .fold(f64::INFINITY, f64::min)
    }

    /// Adds approximately `delay_needed` seconds of snaking delay above
    /// `root`: buffered stages for the bulk (each a driving buffer plus a
    /// slew-legal wire), then — where a whole stage would overshoot — a
    /// plain snaked wire of up to `fine_wire_cap_um` µm, bisected against
    /// the timing engine, for the residue.
    ///
    /// Returns the new root. Stages are inserted at the root's location —
    /// snaking is a physical detour loop whose geometry the flow abstracts;
    /// the wirelength (and therefore the delay and capacitance) is real.
    ///
    /// # Errors
    ///
    /// [`CtsError::SlewUnachievable`] if no buffer can drive any wire at
    /// the slew target.
    pub fn add_delay(
        &self,
        tree: &mut ClockTree,
        root: TreeNodeId,
        delay_needed: f64,
        fine_wire_cap_um: f64,
    ) -> Result<BalanceOutcome, CtsError> {
        self.add_delay_impl(tree, root, delay_needed, fine_wire_cap_um, false)
    }

    /// [`Balancer::add_delay`] with an overshoot escape hatch: when the
    /// residue falls in the dead zone between the largest plain-wire gain
    /// and the smallest buffered stage, `allow_overshoot` inserts one
    /// minimum stage anyway — the caller then compensates on the *other*
    /// side, whose plain wire can absorb the (smaller) overshoot.
    pub fn add_delay_overshooting(
        &self,
        tree: &mut ClockTree,
        root: TreeNodeId,
        delay_needed: f64,
        fine_wire_cap_um: f64,
    ) -> Result<BalanceOutcome, CtsError> {
        self.add_delay_impl(tree, root, delay_needed, fine_wire_cap_um, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn add_delay_impl(
        &self,
        tree: &mut ClockTree,
        root: TreeNodeId,
        delay_needed: f64,
        fine_wire_cap_um: f64,
        allow_overshoot: bool,
    ) -> Result<BalanceOutcome, CtsError> {
        let mut current = root;
        let mut remaining = delay_needed;
        let mut added = 0.0;
        let mut stages = 0;
        let location = tree.node(root).location;

        // Guard against configurations where nothing can be driven.
        let target = self.options.slew_target;
        let any_drivable = self.lib.buffer_ids().any(|b| {
            self.lib
                .max_wire_length_for_slew(b, Load::Buffer(b), target, target)
                .is_some()
        });
        if !any_drivable {
            return Err(CtsError::SlewUnachievable {
                context: "balance stage: no buffer drives any wire at the slew target".into(),
            });
        }

        loop {
            let load = self.load_of(tree, current);
            let pending = self.effective_pending_um(tree, current);
            let min_stage = self.min_stage_delay(load);
            if remaining < min_stage {
                break; // close enough; binary search absorbs the rest
            }
            // Pick the buffer/wire-length combination: longest slew-legal
            // wire whose stage delay does not overshoot `remaining`. The
            // driver must also push through the root's unbuffered pending.
            let mut best: Option<(BufferId, f64, f64)> = None; // (buf, len, delay)
            for drive in self.lib.buffer_ids() {
                let lmax = match self
                    .lib
                    .max_wire_length_for_slew(drive, load, target, target)
                {
                    Some(l) => (l - pending).max(0.0),
                    None => continue,
                };
                if lmax < 1.0 {
                    continue;
                }
                // Longest wire (<= lmax) with stage delay <= remaining.
                let full = self.stage_delay(drive, load, lmax);
                let len = if full <= remaining {
                    lmax
                } else {
                    let (mut lo, mut hi) = (1.0, lmax);
                    for _ in 0..40 {
                        let mid = 0.5 * (lo + hi);
                        if self.stage_delay(drive, load, mid) <= remaining {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    lo
                };
                let d = self.stage_delay(drive, load, len);
                if d <= remaining && best.is_none_or(|(_, _, bd)| d > bd) {
                    best = Some((drive, len, d));
                }
            }
            let Some((drive, len, d)) = best else { break };
            let buf = tree.add_buffer(location, drive);
            tree.attach(buf, current, len);
            current = buf;
            remaining -= d;
            added += d;
            stages += 1;
            // Defensive cap: delay_needed / min_stage + slack stages.
            if stages > 10_000 {
                return Err(CtsError::SlewUnachievable {
                    context: "balance stage failed to converge".into(),
                });
            }
        }

        // Fine stage: a plain snaked wire (no buffer) for the sub-stage
        // residue, bisected against the timing engine. The wire deepens the
        // root's unbuffered pending, which downstream routing budgets for.
        if remaining > 0.5e-12 && fine_wire_cap_um > 2.0 {
            let engine = crate::engine::TimingEngine::new(self.lib);
            let latency = |tree: &ClockTree, at: TreeNodeId| {
                engine
                    .evaluate_subtree(
                        tree,
                        at,
                        self.options.virtual_driver,
                        self.options.slew_target,
                    )
                    .latency
            };
            let base = latency(tree, current);
            let joint = tree.add_joint(location);
            tree.attach(joint, current, fine_wire_cap_um);
            let full_gain = latency(tree, joint) - base;
            let len = if full_gain <= remaining {
                fine_wire_cap_um
            } else {
                let (mut lo, mut hi) = (1.0, fine_wire_cap_um);
                for _ in 0..30 {
                    let mid = 0.5 * (lo + hi);
                    tree.set_wire_to_parent(current, mid);
                    if latency(tree, joint) - base <= remaining {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            };
            tree.set_wire_to_parent(current, len);
            let gained = latency(tree, joint) - base;
            remaining -= gained;
            added += gained;
            current = joint;
        }

        // Overshoot escape: the residue sits in the dead zone (too big for
        // wire, too small for a stage). Insert the smallest stage anyway;
        // the caller rebalances the other side.
        if allow_overshoot && remaining > 1.0e-12 {
            let load = self.load_of(tree, current);
            let pending = self.effective_pending_um(tree, current);
            // Only buffers that can drive through the pending region are
            // feasible overshoot stages.
            let Some(best) = self
                .lib
                .buffer_ids()
                .filter(|&b| {
                    self.lib
                        .max_wire_length_for_slew(b, load, target, target)
                        .is_some_and(|l| l >= pending + 1.0)
                })
                .min_by(|&a, &b| {
                    self.stage_delay(a, load, 1.0)
                        .partial_cmp(&self.stage_delay(b, load, 1.0))
                        .unwrap()
                })
            else {
                return Ok(BalanceOutcome {
                    root: current,
                    added_delay: added,
                    stages,
                });
            };
            let d = self.stage_delay(best, load, 1.0);
            // Only overshoot when the resulting excess (d - remaining) is
            // small enough for the sibling's plain wire to absorb.
            if remaining > 0.4 * d {
                let buf = tree.add_buffer(location, best);
                tree.attach(buf, current, 1.0);
                current = buf;
                added += d;
                stages += 1;
            }
        }

        Ok(BalanceOutcome {
            root: current,
            added_delay: added,
            stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::TimingEngine;
    use crate::instance::Sink;
    use cts_geom::Point;
    use cts_spice::units::PS;
    use cts_timing::fast_library;

    fn one_sink_tree() -> (ClockTree, TreeNodeId) {
        let mut t = ClockTree::new();
        let s = t.add_sink(0, &Sink::new("a", Point::new(0.0, 0.0), 20e-15));
        (t, s)
    }

    #[test]
    fn zero_need_is_a_noop() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let bal = Balancer::new(lib, &opts);
        let (mut t, s) = one_sink_tree();
        let out = bal.add_delay(&mut t, s, 0.0, 500.0).unwrap();
        assert_eq!(out.root, s);
        assert_eq!(out.stages, 0);
        assert_eq!(out.added_delay, 0.0);
    }

    #[test]
    fn snaking_adds_requested_delay() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let bal = Balancer::new(lib, &opts);
        let engine = TimingEngine::new(lib);

        for &need_ps in &[120.0, 400.0, 900.0] {
            let (mut t, s) = one_sink_tree();
            let before = engine
                .evaluate_subtree(&t, s, opts.virtual_driver, opts.slew_target)
                .latency;
            let out = bal.add_delay(&mut t, s, need_ps * PS, 400.0).unwrap();
            let after = engine
                .evaluate_subtree(&t, out.root, opts.virtual_driver, opts.slew_target)
                .latency;
            let gained = after - before;
            assert!(out.stages >= 1, "need {need_ps} ps should insert stages");
            // The engine-measured gain tracks the request within one
            // minimum stage delay (undershoot only).
            assert!(
                gained <= need_ps * PS * 1.05 + 10.0 * PS,
                "overshoot: requested {need_ps} ps, got {} ps",
                gained / PS
            );
            assert!(
                gained >= need_ps * PS * 0.4,
                "undershoot: requested {need_ps} ps, got {} ps",
                gained / PS
            );
        }
        // A request below the minimum stage delay is honored by doing
        // nothing (the binary-search stage absorbs such residues).
        let (mut t, s) = one_sink_tree();
        let out = bal.add_delay(&mut t, s, 5.0 * PS, 0.0).unwrap();
        assert_eq!(out.stages, 0);
    }

    #[test]
    fn snaked_stages_respect_slew_target() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let bal = Balancer::new(lib, &opts);
        let engine = TimingEngine::new(lib);
        let (mut t, s) = one_sink_tree();
        let out = bal.add_delay(&mut t, s, 300.0 * PS, 400.0).unwrap();
        let rep = engine.evaluate_subtree(&t, out.root, opts.virtual_driver, opts.slew_target);
        assert!(
            rep.worst_slew <= opts.slew_limit,
            "snaking violated slew: {} ps",
            rep.worst_slew / PS
        );
        t.validate_under(out.root);
    }

    #[test]
    fn load_of_kinds() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let bal = Balancer::new(lib, &opts);
        let mut t = ClockTree::new();
        let s = t.add_sink(0, &Sink::new("a", Point::new(0.0, 0.0), 33e-15));
        assert_eq!(bal.load_of(&t, s), Load::Sink { cap: 33e-15 });
        let b = t.add_buffer(Point::new(0.0, 0.0), BufferId(2));
        t.attach(b, s, 10.0);
        assert_eq!(bal.load_of(&t, b), Load::Buffer(BufferId(2)));
        let j = t.add_joint(Point::new(5.0, 0.0));
        t.attach(j, b, 5.0);
        match bal.load_of(&t, j) {
            Load::Sink { cap } => assert!(cap > 0.0),
            other => panic!("joint load should be a cap, got {other:?}"),
        }
    }
}
