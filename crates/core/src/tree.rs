//! The clock tree intermediate representation.
//!
//! A [`ClockTree`] is an arena of nodes. During synthesis it holds a
//! *forest*: every parentless node is the root of a partial sub-tree; the
//! levelized flow repeatedly merges two roots under a new node until one
//! root remains, then crowns it with the clock source. Buffers appear as
//! unary in-line nodes anywhere along an edge path — the paper's central
//! liberty.
//!
//! Edges carry a *routed* wirelength (µm) that may exceed the Manhattan
//! distance between the endpoints' coordinates: maze detours and the
//! balance stage's wire snaking add length without moving endpoints.

use crate::instance::Sink;
use cts_geom::Point;
use cts_timing::BufferId;
use std::fmt;

/// Identifier of a clock tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TreeNodeId(usize);

impl TreeNodeId {
    /// Index into per-node arrays.
    pub fn index(self) -> usize {
        self.0
    }

    /// The id of the node at `index` — the inverse of
    /// [`TreeNodeId::index`], for deserializers rebuilding an arena from
    /// a wire or file representation. An out-of-range id is not itself an
    /// error; every arena method validates on use, and
    /// [`ClockTree::from_nodes`] rejects dangling links up front.
    pub fn from_index(index: usize) -> TreeNodeId {
        TreeNodeId(index)
    }
}

impl fmt::Display for TreeNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What a tree node is.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The clock source (root of the finished tree). Modeled as a driver of
    /// the given buffer type.
    Source {
        /// Driver strength of the clock source.
        driver: BufferId,
    },
    /// A clock sink (leaf).
    Sink {
        /// Index into the instance's sink list.
        index: usize,
        /// Sink capacitance (F), denormalized for engine convenience.
        cap: f64,
    },
    /// A merge/branch point or routing joint (no device).
    Joint,
    /// An in-line buffer (unary).
    Buffer {
        /// Which library buffer is instantiated here.
        buffer: BufferId,
    },
}

/// One node of the arena.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeNode {
    /// Node kind.
    pub kind: NodeKind,
    /// Placement (µm).
    pub location: Point,
    /// Parent node, if attached.
    pub parent: Option<TreeNodeId>,
    /// Routed wirelength to the parent (µm); 0 for co-located attachments.
    pub wire_to_parent_um: f64,
    /// Children (at most 2; buffers and the source have exactly 1).
    pub children: Vec<TreeNodeId>,
}

/// An arena-allocated clock tree (or forest, during synthesis).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClockTree {
    nodes: Vec<TreeNode>,
}

/// Why [`ClockTree::from_nodes`] rejected a node list: a description of
/// the first structural violation (dangling link, arity overflow,
/// inconsistent parent/child pointers, non-finite geometry, or a cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeStructureError(String);

impl fmt::Display for TreeStructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed tree: {}", self.0)
    }
}

impl std::error::Error for TreeStructureError {}

impl ClockTree {
    /// Creates an empty arena.
    pub fn new() -> ClockTree {
        ClockTree::default()
    }

    /// Adds a sink leaf for `sink` (at instance index `index`).
    pub fn add_sink(&mut self, index: usize, sink: &Sink) -> TreeNodeId {
        self.push(TreeNode {
            kind: NodeKind::Sink {
                index,
                cap: sink.cap,
            },
            location: sink.location,
            parent: None,
            wire_to_parent_um: 0.0,
            children: Vec::new(),
        })
    }

    /// Adds an unattached joint at `location`.
    pub fn add_joint(&mut self, location: Point) -> TreeNodeId {
        self.push(TreeNode {
            kind: NodeKind::Joint,
            location,
            parent: None,
            wire_to_parent_um: 0.0,
            children: Vec::new(),
        })
    }

    /// Adds an unattached buffer node at `location`.
    pub fn add_buffer(&mut self, location: Point, buffer: BufferId) -> TreeNodeId {
        self.push(TreeNode {
            kind: NodeKind::Buffer { buffer },
            location,
            parent: None,
            wire_to_parent_um: 0.0,
            children: Vec::new(),
        })
    }

    /// Adds the clock source above `child` (same location, zero wire) and
    /// returns it.
    ///
    /// # Panics
    ///
    /// Panics if `child` already has a parent.
    pub fn add_source(&mut self, child: TreeNodeId, driver: BufferId) -> TreeNodeId {
        let loc = self.node(child).location;
        let src = self.push(TreeNode {
            kind: NodeKind::Source { driver },
            location: loc,
            parent: None,
            wire_to_parent_um: 0.0,
            children: Vec::new(),
        });
        self.attach(src, child, 0.0);
        src
    }

    fn push(&mut self, node: TreeNode) -> TreeNodeId {
        let id = TreeNodeId(self.nodes.len());
        self.nodes.push(node);
        id
    }

    /// Attaches `child` under `parent` with the given routed wirelength.
    ///
    /// # Panics
    ///
    /// Panics if the child already has a parent, the parent already has two
    /// children (or one, for unary kinds), the wirelength is negative, or
    /// `parent == child`.
    pub fn attach(&mut self, parent: TreeNodeId, child: TreeNodeId, wire_um: f64) {
        assert!(parent != child, "cannot attach a node to itself");
        assert!(
            wire_um >= 0.0 && wire_um.is_finite(),
            "wirelength must be non-negative, got {wire_um}"
        );
        assert!(
            self.node(child).parent.is_none(),
            "node {child} already attached"
        );
        let max_children = match self.node(parent).kind {
            NodeKind::Sink { .. } => 0,
            NodeKind::Buffer { .. } | NodeKind::Source { .. } => 1,
            NodeKind::Joint => 2,
        };
        assert!(
            self.node(parent).children.len() < max_children,
            "node {parent} cannot take another child"
        );
        self.nodes[child.0].parent = Some(parent);
        self.nodes[child.0].wire_to_parent_um = wire_um;
        self.nodes[parent.0].children.push(child);
    }

    /// Detaches `child` from its parent (used by H-structure correction to
    /// dissolve tentative merges).
    ///
    /// # Panics
    ///
    /// Panics if the node has no parent.
    pub fn detach(&mut self, child: TreeNodeId) {
        let parent = self.node(child).parent.expect("node has no parent");
        self.nodes[parent.0].children.retain(|&c| c != child);
        self.nodes[child.0].parent = None;
        self.nodes[child.0].wire_to_parent_um = 0.0;
    }

    /// Immutable node access.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: TreeNodeId) -> &TreeNode {
        &self.nodes[id.0]
    }

    /// The whole arena in id order — the export walk serializers iterate
    /// (node `i` is the one [`ClockTree::node`] returns for the id with
    /// index `i`). Together with [`ClockTree::from_nodes`] this is the
    /// round-trip seam: `from_nodes(tree.nodes().to_vec())` rebuilds a
    /// tree equal to `tree`, field for field.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Rebuilds an arena from raw nodes (a deserialized wire or file
    /// representation), validating every structural invariant the mutator
    /// API would otherwise have enforced: links in range, parent/child
    /// pointers mutually consistent (including child order multiplicity),
    /// arity limits, finite locations and non-negative finite
    /// wirelengths/capacitances, roots carrying zero parent wire, and no
    /// cycles. The node list is stored verbatim, so a valid rebuild is
    /// bit-identical to the exported arena — nothing is renumbered.
    ///
    /// # Errors
    ///
    /// [`TreeStructureError`] describing the first violation.
    pub fn from_nodes(nodes: Vec<TreeNode>) -> Result<ClockTree, TreeStructureError> {
        let total = nodes.len();
        let fail = |msg: String| Err(TreeStructureError(msg));
        for (i, n) in nodes.iter().enumerate() {
            if !n.location.is_finite() {
                return fail(format!("node {i} location is not finite"));
            }
            if !(n.wire_to_parent_um >= 0.0 && n.wire_to_parent_um.is_finite()) {
                return fail(format!(
                    "node {i} parent wire {} is invalid",
                    n.wire_to_parent_um
                ));
            }
            if let NodeKind::Sink { cap, .. } = n.kind {
                if !(cap >= 0.0 && cap.is_finite()) {
                    return fail(format!("sink node {i} capacitance {cap} F is invalid"));
                }
            }
            let max_children = match n.kind {
                NodeKind::Sink { .. } => 0,
                NodeKind::Buffer { .. } | NodeKind::Source { .. } => 1,
                NodeKind::Joint => 2,
            };
            if n.children.len() > max_children {
                return fail(format!(
                    "node {i} has {} children (max {max_children})",
                    n.children.len()
                ));
            }
            match n.parent {
                Some(p) if p.0 >= total => {
                    return fail(format!("node {i} parent {} is out of range", p.0))
                }
                Some(p) if p.0 == i => return fail(format!("node {i} is its own parent")),
                None if n.wire_to_parent_um != 0.0 => {
                    return fail(format!("root node {i} carries a parent wire"))
                }
                _ => {}
            }
            if let Some(&c) = n.children.iter().find(|c| c.0 >= total) {
                return fail(format!("node {i} child {} is out of range", c.0));
            }
        }
        // Mutual link consistency: every child points back, and every
        // parented node appears exactly once in its parent's child list.
        for (i, n) in nodes.iter().enumerate() {
            for &c in &n.children {
                if nodes[c.0].parent != Some(TreeNodeId(i)) {
                    return fail(format!("child {} does not point back to {i}", c.0));
                }
            }
            if let Some(p) = n.parent {
                let listed = nodes[p.0].children.iter().filter(|c| c.0 == i).count();
                if listed != 1 {
                    return fail(format!(
                        "node {i} appears {listed} times in parent {}'s children",
                        p.0
                    ));
                }
            }
        }
        // With links mutually consistent, any node not reachable from a
        // root sits on a parent cycle.
        let mut seen = vec![false; total];
        let mut stack: Vec<usize> = (0..total).filter(|&i| nodes[i].parent.is_none()).collect();
        let mut reached = 0usize;
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            reached += 1;
            stack.extend(nodes[i].children.iter().map(|c| c.0));
        }
        if reached != total {
            return fail(format!(
                "{} nodes are unreachable from any root (parent cycle)",
                total - reached
            ));
        }
        Ok(ClockTree { nodes })
    }

    /// Sets a node's location (binary search moves merge joints).
    pub fn set_location(&mut self, id: TreeNodeId, location: Point) {
        assert!(location.is_finite());
        self.nodes[id.0].location = location;
    }

    /// Sets the routed wirelength of `child`'s parent edge.
    ///
    /// # Panics
    ///
    /// Panics if the node is unattached or the length is negative.
    pub fn set_wire_to_parent(&mut self, child: TreeNodeId, wire_um: f64) {
        assert!(self.nodes[child.0].parent.is_some(), "node unattached");
        assert!(wire_um >= 0.0 && wire_um.is_finite());
        self.nodes[child.0].wire_to_parent_um = wire_um;
    }

    /// Re-types an existing buffer (the sizing refinement swaps types to
    /// fine-balance delays).
    ///
    /// # Panics
    ///
    /// Panics if the node is not a buffer.
    pub fn set_buffer_type(&mut self, node: TreeNodeId, buffer: BufferId) {
        match &mut self.nodes[node.0].kind {
            NodeKind::Buffer { buffer: b } => *b = buffer,
            other => panic!("set_buffer_type on non-buffer node ({other:?})"),
        }
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the arena has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = TreeNodeId> {
        (0..self.nodes.len()).map(TreeNodeId)
    }

    /// Current roots (parentless nodes) — the active sub-trees during
    /// synthesis, or the single root of a finished tree.
    pub fn roots(&self) -> Vec<TreeNodeId> {
        self.ids()
            .filter(|&id| self.node(id).parent.is_none())
            .collect()
    }

    /// All sink leaves under `root` (including `root` itself if a sink).
    pub fn sinks_under(&self, root: TreeNodeId) -> Vec<TreeNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if matches!(self.node(id).kind, NodeKind::Sink { .. }) {
                out.push(id);
            }
            stack.extend(self.node(id).children.iter().copied());
        }
        out
    }

    /// Total routed wirelength under `root` (µm), including `root`'s own
    /// parent edge if attached... excluded: only edges *below* `root`.
    pub fn wirelength_under(&self, root: TreeNodeId) -> f64 {
        let mut total = 0.0;
        let mut stack: Vec<TreeNodeId> = self.node(root).children.to_vec();
        while let Some(id) = stack.pop() {
            total += self.node(id).wire_to_parent_um;
            stack.extend(self.node(id).children.iter().copied());
        }
        total
    }

    /// Number of buffers under (and including) `root`.
    pub fn buffer_count_under(&self, root: TreeNodeId) -> usize {
        let mut count = 0;
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if matches!(self.node(id).kind, NodeKind::Buffer { .. }) {
                count += 1;
            }
            stack.extend(self.node(id).children.iter().copied());
        }
        count
    }

    /// Total downstream capacitance below `root`: wire + buffer input +
    /// sink caps of the sub-tree, stopping at buffer inputs (a buffer shields
    /// everything beneath it).
    ///
    /// `wire_c_per_um` is the unit wire capacitance (F/µm); buffer input
    /// caps come from `input_cap_of`.
    pub fn shielded_cap_under(
        &self,
        root: TreeNodeId,
        wire_c_per_um: f64,
        input_cap_of: &dyn Fn(BufferId) -> f64,
    ) -> f64 {
        let mut total = 0.0;
        let mut stack: Vec<TreeNodeId> = self.node(root).children.to_vec();
        while let Some(id) = stack.pop() {
            total += self.node(id).wire_to_parent_um * wire_c_per_um;
            match self.node(id).kind {
                NodeKind::Buffer { buffer } => total += input_cap_of(buffer),
                NodeKind::Sink { cap, .. } => total += cap,
                _ => stack.extend(self.node(id).children.iter().copied()),
            }
        }
        total
    }

    /// Maximum unbuffered wire depth under `root` (µm): the longest
    /// accumulated wirelength from `root` down to the first buffer input or
    /// sink on any path. This is the wire a future upstream driver must
    /// drive *through* before reaching a restoring buffer, so merge-routing
    /// budgets it against the slew-legal segment length.
    pub fn unbuffered_depth_um(&self, root: TreeNodeId) -> f64 {
        let mut worst = 0.0f64;
        let mut stack: Vec<(TreeNodeId, f64)> = self
            .node(root)
            .children
            .iter()
            .map(|&c| (c, self.node(c).wire_to_parent_um))
            .collect();
        while let Some((id, depth)) = stack.pop() {
            match self.node(id).kind {
                NodeKind::Buffer { .. } | NodeKind::Sink { .. } => worst = worst.max(depth),
                _ => {
                    worst = worst.max(depth);
                    stack.extend(
                        self.node(id)
                            .children
                            .iter()
                            .map(|&c| (c, depth + self.node(c).wire_to_parent_um)),
                    );
                }
            }
        }
        worst
    }

    /// Copies the sub-trees rooted at `roots` into a fresh, detached arena.
    ///
    /// Nodes are copied in ascending id order (so relative order — and with
    /// it every order-sensitive traversal — is preserved), with parent and
    /// child links remapped into the new arena. The returned map gives, for
    /// each local node id `i`, the original arena id `map[i]`; it is sorted
    /// ascending, so [`ClockTree::local_id`] can binary-search it.
    ///
    /// This is the extraction half of the parallel merge stage: a worker
    /// merges the detached forest in isolation, and
    /// [`ClockTree::graft_forest`] later writes the result back.
    ///
    /// # Panics
    ///
    /// Panics if the sub-trees overlap (a node reachable from two roots).
    pub fn extract_forest(&self, roots: &[TreeNodeId]) -> (ClockTree, Vec<TreeNodeId>) {
        let mut ids: Vec<TreeNodeId> = Vec::new();
        for &root in roots {
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                ids.push(id);
                stack.extend(self.node(id).children.iter().copied());
            }
        }
        ids.sort_unstable();
        for w in ids.windows(2) {
            assert!(
                w[0] != w[1],
                "extract_forest: overlapping sub-trees at {}",
                w[0]
            );
        }

        let local = |id: TreeNodeId| -> TreeNodeId {
            TreeNodeId(ids.binary_search(&id).expect("link inside the forest"))
        };
        let nodes = ids
            .iter()
            .map(|&id| {
                let n = self.node(id);
                TreeNode {
                    kind: n.kind.clone(),
                    location: n.location,
                    parent: n.parent.map(local),
                    wire_to_parent_um: n.wire_to_parent_um,
                    children: n.children.iter().map(|&c| local(c)).collect(),
                }
            })
            .collect();
        (ClockTree { nodes }, ids)
    }

    /// The local id (in a forest extracted with `map`) of the original
    /// arena node `global`.
    ///
    /// # Panics
    ///
    /// Panics if `global` was not part of the extraction.
    pub fn local_id(map: &[TreeNodeId], global: TreeNodeId) -> TreeNodeId {
        TreeNodeId(
            map.binary_search(&global)
                .expect("node was part of the extracted forest"),
        )
    }

    /// Writes a forest produced by [`ClockTree::extract_forest`] (and since
    /// mutated — merged, balanced, re-typed) back into this arena.
    ///
    /// The first `map.len()` forest nodes overwrite their originals in
    /// place; nodes beyond that are appended in forest order, so grafting
    /// the per-pair results in matching order reproduces exactly the arena
    /// a serial in-place merge pass would have built. Returns the
    /// local→global id translation for every forest node.
    ///
    /// # Panics
    ///
    /// Panics if the forest has fewer nodes than `map` (extraction never
    /// shrinks) or `map` names an id outside this arena.
    pub fn graft_forest(&mut self, forest: ClockTree, map: &[TreeNodeId]) -> Vec<TreeNodeId> {
        assert!(
            forest.nodes.len() >= map.len(),
            "grafted forest lost nodes ({} < {})",
            forest.nodes.len(),
            map.len()
        );
        let base = self.nodes.len();
        let global: Vec<TreeNodeId> = (0..forest.nodes.len())
            .map(|i| {
                if i < map.len() {
                    map[i]
                } else {
                    TreeNodeId(base + i - map.len())
                }
            })
            .collect();
        for (i, n) in forest.nodes.into_iter().enumerate() {
            let mapped = TreeNode {
                kind: n.kind,
                location: n.location,
                parent: n.parent.map(|p| global[p.0]),
                wire_to_parent_um: n.wire_to_parent_um,
                children: n.children.iter().map(|&c| global[c.0]).collect(),
            };
            if i < map.len() {
                self.nodes[map[i].0] = mapped;
            } else {
                debug_assert_eq!(global[i].0, self.nodes.len());
                self.nodes.push(mapped);
            }
        }
        global
    }

    /// Validates structural invariants of the (sub)tree under `root`:
    /// child/parent links consistent, arity respected, no cycles, sinks are
    /// leaves. Returns the number of nodes visited.
    ///
    /// # Panics
    ///
    /// Panics (with a description) on any violation — this is a debugging
    /// aid used liberally in tests.
    pub fn validate_under(&self, root: TreeNodeId) -> usize {
        let mut visited = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        let mut count = 0;
        while let Some(id) = stack.pop() {
            assert!(!visited[id.0], "cycle detected at {id}");
            visited[id.0] = true;
            count += 1;
            let n = self.node(id);
            let max_children = match n.kind {
                NodeKind::Sink { .. } => 0,
                NodeKind::Buffer { .. } | NodeKind::Source { .. } => 1,
                NodeKind::Joint => 2,
            };
            assert!(
                n.children.len() <= max_children,
                "node {id} has {} children (max {max_children})",
                n.children.len()
            );
            for &c in &n.children {
                assert_eq!(
                    self.node(c).parent,
                    Some(id),
                    "child {c} does not point back to {id}"
                );
                stack.push(c);
            }
        }
        count
    }
}

impl fmt::Display for ClockTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let roots = self.roots();
        write!(f, "clock tree[{} nodes, {} roots]", self.len(), roots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_geom::Point;

    fn sink(name: &str, x: f64, y: f64) -> Sink {
        Sink::new(name, Point::new(x, y), 20e-15)
    }

    fn two_sink_tree() -> (ClockTree, TreeNodeId, TreeNodeId, TreeNodeId) {
        let mut t = ClockTree::new();
        let a = t.add_sink(0, &sink("a", 0.0, 0.0));
        let b = t.add_sink(1, &sink("b", 200.0, 0.0));
        let m = t.add_joint(Point::new(100.0, 0.0));
        t.attach(m, a, 100.0);
        t.attach(m, b, 100.0);
        (t, a, b, m)
    }

    #[test]
    fn forest_then_tree() {
        let (mut t, _a, _b, m) = two_sink_tree();
        assert_eq!(t.roots(), vec![m]);
        let src = t.add_source(m, BufferId(2));
        assert_eq!(t.roots(), vec![src]);
        assert_eq!(t.validate_under(src), 4);
    }

    #[test]
    fn sinks_and_wirelength() {
        let (t, a, b, m) = two_sink_tree();
        let sinks = t.sinks_under(m);
        assert_eq!(sinks.len(), 2);
        assert!(sinks.contains(&a) && sinks.contains(&b));
        assert_eq!(t.wirelength_under(m), 200.0);
        assert_eq!(t.buffer_count_under(m), 0);
    }

    #[test]
    fn buffers_shield_downstream_cap() {
        let mut t = ClockTree::new();
        let a = t.add_sink(0, &sink("a", 0.0, 0.0));
        let buf = t.add_buffer(Point::new(50.0, 0.0), BufferId(0));
        t.attach(buf, a, 50.0);
        let m = t.add_joint(Point::new(100.0, 0.0));
        t.attach(m, buf, 50.0);

        let c_per_um = 0.2e-15;
        let input_cap = |_: BufferId| 4.0e-15;
        let cap = t.shielded_cap_under(m, c_per_um, &input_cap);
        // 50 µm of wire above the buffer + the buffer's input cap; the sink
        // and its wire are shielded.
        assert!((cap - (50.0 * c_per_um + 4.0e-15)).abs() < 1e-21);
    }

    #[test]
    fn detach_restores_root() {
        let (mut t, a, _b, m) = two_sink_tree();
        t.detach(a);
        let roots = t.roots();
        assert!(roots.contains(&a) && roots.contains(&m));
        assert_eq!(t.node(a).wire_to_parent_um, 0.0);
        // m now has a single child; can re-attach.
        t.attach(m, a, 120.0);
        assert_eq!(t.roots(), vec![m]);
    }

    #[test]
    #[should_panic(expected = "cannot take another child")]
    fn joint_arity_enforced() {
        let (mut t, _a, _b, m) = two_sink_tree();
        let c = t.add_sink(2, &sink("c", 50.0, 50.0));
        t.attach(m, c, 10.0);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_rejected() {
        let (mut t, a, _b, _m) = two_sink_tree();
        let j = t.add_joint(Point::new(0.0, 50.0));
        t.attach(j, a, 10.0);
    }

    #[test]
    #[should_panic(expected = "cannot take another child")]
    fn sink_cannot_have_children() {
        let mut t = ClockTree::new();
        let a = t.add_sink(0, &sink("a", 0.0, 0.0));
        let b = t.add_sink(1, &sink("b", 10.0, 0.0));
        t.attach(a, b, 10.0);
    }

    #[test]
    fn validate_counts_nodes() {
        let (t, _, _, m) = two_sink_tree();
        assert_eq!(t.validate_under(m), 3);
    }

    #[test]
    fn extract_then_graft_roundtrips_and_appends() {
        // Arena: two single-sink roots plus an unrelated third sink that
        // must stay untouched by the extraction.
        let mut t = ClockTree::new();
        let a = t.add_sink(0, &sink("a", 0.0, 0.0));
        let other = t.add_sink(1, &sink("x", 9.0, 9.0));
        let b = t.add_sink(2, &sink("b", 400.0, 0.0));

        let (mut forest, map) = t.extract_forest(&[a, b]);
        assert_eq!(map, vec![a, b]);
        assert_eq!(forest.len(), 2);
        let la = ClockTree::local_id(&map, a);
        let lb = ClockTree::local_id(&map, b);
        assert_eq!(forest.node(la).location, t.node(a).location);

        // Merge the two locally: new joint above both.
        let j = forest.add_joint(Point::new(200.0, 0.0));
        forest.attach(j, la, 200.0);
        forest.attach(j, lb, 200.0);

        let global = t.graft_forest(forest, &map);
        let gj = global[j.index()];
        assert_eq!(t.node(gj).children, vec![a, b]);
        assert_eq!(t.node(a).parent, Some(gj));
        assert_eq!(t.node(a).wire_to_parent_um, 200.0);
        assert!(t.node(other).parent.is_none(), "bystander node disturbed");
        assert_eq!(t.validate_under(gj), 3);
        let mut roots = t.roots();
        roots.sort_unstable();
        assert_eq!(roots, vec![other, gj]);
    }

    #[test]
    fn extract_preserves_structure_and_relative_order() {
        let (t, a, b, m) = two_sink_tree();
        let (forest, map) = t.extract_forest(&[m]);
        assert_eq!(map, vec![a, b, m]);
        let lm = ClockTree::local_id(&map, m);
        assert_eq!(forest.sinks_under(lm).len(), 2);
        assert_eq!(forest.wirelength_under(lm), t.wirelength_under(m));
        forest.validate_under(lm);
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn extract_rejects_overlapping_roots() {
        let (t, a, _b, m) = two_sink_tree();
        let _ = t.extract_forest(&[m, a]);
    }

    #[test]
    fn from_nodes_roundtrips_bit_for_bit() {
        let (mut t, _a, _b, m) = two_sink_tree();
        let buf = t.add_buffer(Point::new(100.0, 40.0), BufferId(1));
        t.attach(buf, m, 40.0);
        let src = t.add_source(buf, BufferId(2));
        let back = ClockTree::from_nodes(t.nodes().to_vec()).expect("valid export");
        assert_eq!(back, t);
        assert_eq!(back.validate_under(src), t.validate_under(src));
    }

    #[test]
    fn from_nodes_rejects_structural_violations() {
        let (t, a, _b, m) = two_sink_tree();
        let good = t.nodes().to_vec();

        // Dangling parent link.
        let mut bad = good.clone();
        bad[a.index()].parent = Some(TreeNodeId(99));
        assert!(ClockTree::from_nodes(bad).is_err());

        // Child that does not point back.
        let mut bad = good.clone();
        bad[a.index()].parent = None;
        bad[a.index()].wire_to_parent_um = 0.0;
        assert!(ClockTree::from_nodes(bad)
            .unwrap_err()
            .to_string()
            .contains("point back"));

        // Sink with children (arity).
        let mut bad = good.clone();
        bad[a.index()].children = vec![m];
        assert!(ClockTree::from_nodes(bad).is_err());

        // Root carrying a parent wire.
        let mut bad = good.clone();
        bad[m.index()].wire_to_parent_um = 7.0;
        assert!(ClockTree::from_nodes(bad).is_err());

        // Non-finite geometry.
        let mut bad = good.clone();
        bad[a.index()].wire_to_parent_um = f64::NAN;
        assert!(ClockTree::from_nodes(bad).is_err());

        // A two-joint parent cycle detached from the real tree.
        let mut bad = good.clone();
        let i = bad.len();
        bad.push(TreeNode {
            kind: NodeKind::Joint,
            location: Point::new(1.0, 1.0),
            parent: Some(TreeNodeId(i + 1)),
            wire_to_parent_um: 1.0,
            children: vec![TreeNodeId(i + 1)],
        });
        bad.push(TreeNode {
            kind: NodeKind::Joint,
            location: Point::new(2.0, 2.0),
            parent: Some(TreeNodeId(i)),
            wire_to_parent_um: 1.0,
            children: vec![TreeNodeId(i)],
        });
        assert!(ClockTree::from_nodes(bad)
            .unwrap_err()
            .to_string()
            .contains("cycle"));
    }
}
