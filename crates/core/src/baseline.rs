//! Baseline synthesizers for comparison and ablation.
//!
//! * [`dme_zero_skew`] — the classic unbuffered zero-skew construction
//!   (paper §2.2): Edahiro-style nearest-neighbor topology with Tsay's
//!   closed-form Elmore merge point (eq. 2.5) on Manhattan arcs.
//! * [`merge_node_buffering`] — the prior-work policy the paper argues
//!   against (Fig. 1.2a): identical topology, but buffers may only be
//!   placed *at merge nodes*, sized greedily for slew. On large dies this
//!   provably cannot hold the slew limit, which is the paper's motivation.

use crate::engine::TimingEngine;
use crate::instance::Instance;
use crate::options::{CtsError, CtsOptions};
use crate::topology::{find_matching, MatchCandidate};
use crate::tree::{ClockTree, NodeKind, TreeNodeId};
use cts_geom::ManhattanArc;
use cts_timing::{BufferId, DelaySlewLibrary};

/// Result of a baseline construction.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// The constructed tree.
    pub tree: ClockTree,
    /// Its source node.
    pub source: TreeNodeId,
    /// Elmore delay from source to each sink (s) — the model the baseline
    /// optimizes, reported for zero-skew checks.
    pub elmore_sink_delays: Vec<(TreeNodeId, f64)>,
}

/// Per-subtree bookkeeping for the Elmore merge recursion.
#[derive(Debug, Clone, Copy)]
struct ElmoreState {
    /// Delay from this root to its sinks (equal on all paths by
    /// construction), seconds.
    delay: f64,
    /// Downstream capacitance seen at this root (F).
    cap: f64,
}

/// Unbuffered zero-skew DME baseline.
///
/// Merge points are placed with the closed-form balance condition of
/// eq. 2.5 under the Elmore model; when one side is too slow to balance
/// without detour, the merge point sits at an endpoint and the wire to the
/// other side is snaked (extended) to equalize delays.
///
/// # Errors
///
/// [`CtsError::BadOptions`] for invalid options (via validation).
pub fn dme_zero_skew(
    lib: &DelaySlewLibrary,
    options: &CtsOptions,
    instance: &Instance,
) -> Result<BaselineResult, CtsError> {
    options.validate()?;
    let r = lib.wire().r_per_um();
    let c = lib.wire().c_per_um();

    let mut tree = ClockTree::new();
    let mut active: Vec<(TreeNodeId, ElmoreState)> = instance
        .sinks()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                tree.add_sink(i, s),
                ElmoreState {
                    delay: 0.0,
                    cap: s.cap,
                },
            )
        })
        .collect();
    let centroid = instance.sink_centroid();

    while active.len() > 1 {
        let candidates: Vec<MatchCandidate> = active
            .iter()
            .map(|&(id, st)| MatchCandidate {
                location: tree.node(id).location,
                delay: st.delay,
            })
            .collect();
        let matching = find_matching(&candidates, centroid, options.cost_alpha, options.cost_beta)?;

        let mut next = Vec::with_capacity(active.len() / 2 + 1);
        if let Some(seed) = matching.seed {
            next.push(active[seed]);
        }
        for &(i, j) in &matching.pairs {
            let (n1, s1) = active[i];
            let (n2, s2) = active[j];
            let p1 = tree.node(n1).location;
            let p2 = tree.node(n2).location;
            let l = p1.manhattan_dist(p2).max(1e-6);

            // Eq. 2.5: balance α·l1(β·l1/2 + C1) + t1 = α·l2(β·l2/2 + C2) + t2.
            let x = ((s2.delay - s1.delay) + r * l * (s2.cap + c * l / 2.0))
                / (r * l * (s1.cap + s2.cap + c * l));

            let (l1, l2, snake) = if (0.0..=1.0).contains(&x) {
                (x * l, (1.0 - x) * l, 0.0)
            } else if x < 0.0 {
                // Side 1 already slower even at its root: snake side 2.
                // Solve t1 = t2 + α l2 (β l2/2 + C2) for l2 >= l.
                let ext = solve_snake(s1.delay - s2.delay, s2.cap, r, c).max(l);
                (0.0, ext, ext - l)
            } else {
                let ext = solve_snake(s2.delay - s1.delay, s1.cap, r, c).max(l);
                (ext, 0.0, ext - l)
            };
            let _ = snake;

            // Merge node position: on the Manhattan arc when detour-free;
            // at the slower root when snaking.
            let position = if l1 + l2 <= l * (1.0 + 1e-9) && l1 >= 0.0 && l2 >= 0.0 {
                ManhattanArc::from_radii(p1, p2, l1.min(l), l - l1.min(l))
                    .map(|arc| arc.segment().midpoint())
                    .unwrap_or_else(|| p1.lerp(p2, l1 / l))
            } else if l1 == 0.0 {
                p1
            } else {
                p2
            };

            let m = tree.add_joint(position);
            tree.attach(m, n1, l1);
            tree.attach(m, n2, l2);

            let delay1 = s1.delay + r * l1 * (c * l1 / 2.0 + s1.cap);
            let delay2 = s2.delay + r * l2 * (c * l2 / 2.0 + s2.cap);
            let merged = ElmoreState {
                // Both should agree; take the max to stay conservative
                // against rounding.
                delay: delay1.max(delay2),
                cap: s1.cap + s2.cap + c * (l1 + l2),
            };
            next.push((m, merged));
        }
        active = next;
    }

    let (top, _) = active[0];
    let source = tree.add_source(top, strongest(lib));
    let elmore_sink_delays = elmore_delays(&tree, source, r, c);
    Ok(BaselineResult {
        tree,
        source,
        elmore_sink_delays,
    })
}

/// Solves `Δt = α·L(β·L/2 + C)` for the snaked length `L`.
fn solve_snake(dt: f64, cap: f64, r: f64, c: f64) -> f64 {
    // (r c / 2) L^2 + r cap L - dt = 0
    let a = r * c / 2.0;
    let b = r * cap;
    let disc = (b * b + 4.0 * a * dt).max(0.0);
    (-b + disc.sqrt()) / (2.0 * a)
}

/// Merge-node-only buffering baseline (the Fig. 1.2(a) policy): builds the
/// DME tree, then inserts one buffer at every merge node whose estimated
/// downstream slew would otherwise exceed the target, choosing the type
/// greedily by the library's slew surface.
///
/// # Errors
///
/// As [`dme_zero_skew`].
pub fn merge_node_buffering(
    lib: &DelaySlewLibrary,
    options: &CtsOptions,
    instance: &Instance,
) -> Result<BaselineResult, CtsError> {
    let base = dme_zero_skew(lib, options, instance)?;
    let mut tree = base.tree;
    let source = base.source;

    // Walk top-down; at each joint, estimate the slew over the longest
    // unbuffered downstream path; if it exceeds the target, wrap the joint
    // in a buffer (inserted on its parent edge, i.e. *at* the merge node).
    let engine = TimingEngine::new(lib);
    let ids: Vec<TreeNodeId> = tree.ids().collect();
    for id in ids {
        if !matches!(tree.node(id).kind, NodeKind::Joint) {
            continue;
        }
        if tree.node(id).parent.is_none() {
            continue;
        }
        let rep = engine.evaluate_subtree(&tree, id, options.virtual_driver, options.slew_target);
        if rep.worst_slew <= options.slew_target {
            continue;
        }
        // Choose the buffer whose estimated downstream slew is smallest.
        let best = lib
            .buffer_ids()
            .min_by(|&a, &b| {
                let sa = engine
                    .evaluate_subtree(&tree, id, a, options.slew_target)
                    .worst_slew;
                let sb = engine
                    .evaluate_subtree(&tree, id, b, options.slew_target)
                    .worst_slew;
                sa.partial_cmp(&sb).unwrap()
            })
            .expect("non-empty library");
        // Splice: parent -> buffer(at joint location) -> joint.
        let parent = tree.node(id).parent.expect("checked");
        let wire = tree.node(id).wire_to_parent_um;
        tree.detach(id);
        let buf = tree.add_buffer(tree.node(id).location, best);
        tree.attach(parent, buf, wire);
        tree.attach(buf, id, 0.0);
    }

    let r = lib.wire().r_per_um();
    let c = lib.wire().c_per_um();
    let elmore_sink_delays = elmore_delays(&tree, source, r, c);
    Ok(BaselineResult {
        tree,
        source,
        elmore_sink_delays,
    })
}

fn strongest(lib: &DelaySlewLibrary) -> BufferId {
    lib.buffer_ids()
        .max_by(|&a, &b| {
            lib.buffer(a)
                .size()
                .partial_cmp(&lib.buffer(b).size())
                .unwrap()
        })
        .expect("non-empty library")
}

/// Elmore source-to-sink delays of an arbitrary (possibly buffered) tree:
/// buffers contribute a fixed intrinsic estimate via the library at the
/// slew target; wires contribute path resistance times downstream cap.
fn elmore_delays(
    tree: &ClockTree,
    source: TreeNodeId,
    r_per_um: f64,
    c_per_um: f64,
) -> Vec<(TreeNodeId, f64)> {
    // Downstream cap per node (shielded at buffers).
    fn downstream_cap(
        tree: &ClockTree,
        node: TreeNodeId,
        c_per_um: f64,
        memo: &mut Vec<Option<f64>>,
    ) -> f64 {
        if let Some(v) = memo[node.index()] {
            return v;
        }
        let n = tree.node(node);
        let own = match n.kind {
            NodeKind::Sink { cap, .. } => cap,
            // Gate cap approximation consistent with the engine.
            NodeKind::Buffer { .. } => 4.0e-15,
            _ => 0.0,
        };
        let mut total = own;
        if !matches!(n.kind, NodeKind::Buffer { .. }) {
            for &ch in &n.children {
                total += tree.node(ch).wire_to_parent_um * c_per_um
                    + downstream_cap(tree, ch, c_per_um, memo);
            }
        }
        memo[node.index()] = Some(total);
        total
    }

    let mut memo = vec![None; tree.len()];
    let mut out = Vec::new();
    // DFS accumulating Elmore delay.
    let mut stack = vec![(source, 0.0f64)];
    while let Some((id, t)) = stack.pop() {
        let n = tree.node(id);
        if matches!(n.kind, NodeKind::Sink { .. }) {
            out.push((id, t));
            continue;
        }
        for &ch in &n.children {
            let len = tree.node(ch).wire_to_parent_um;
            let rw = r_per_um * len;
            let load = tree.node(ch).wire_to_parent_um * c_per_um / 2.0
                + downstream_cap(tree, ch, c_per_um, &mut memo);
            stack.push((ch, t + rw * load));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Sink;
    use cts_geom::Point;
    use cts_spice::units::PS;
    use cts_timing::fast_library;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_instance(n: usize, span: f64, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        Instance::new(
            "rand",
            (0..n)
                .map(|i| {
                    Sink::new(
                        format!("s{i}"),
                        Point::new(rng.gen_range(0.0..span), rng.gen_range(0.0..span)),
                        rng.gen_range(10e-15..40e-15),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn dme_produces_near_zero_elmore_skew() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let inst = random_instance(12, 3000.0, 3);
        let res = dme_zero_skew(lib, &opts, &inst).unwrap();
        res.tree.validate_under(res.source);
        assert_eq!(res.tree.sinks_under(res.source).len(), 12);
        let delays: Vec<f64> = res.elmore_sink_delays.iter().map(|&(_, d)| d).collect();
        let spread = delays.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - delays.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = delays.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            spread <= 0.02 * max.max(1e-12),
            "Elmore skew {} ps of {} ps latency",
            spread / PS,
            max / PS
        );
    }

    #[test]
    fn dme_uses_no_buffers() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let inst = random_instance(9, 2000.0, 5);
        let res = dme_zero_skew(lib, &opts, &inst).unwrap();
        assert_eq!(res.tree.buffer_count_under(res.source), 0);
    }

    #[test]
    fn merge_node_buffering_only_places_buffers_at_merges() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let inst = random_instance(10, 8000.0, 7);
        let res = merge_node_buffering(lib, &opts, &inst).unwrap();
        res.tree.validate_under(res.source);
        // Every buffer must sit exactly at a joint location with zero
        // distance to its child joint.
        for id in res.tree.ids() {
            if matches!(res.tree.node(id).kind, NodeKind::Buffer { .. }) {
                let children = &res.tree.node(id).children;
                assert_eq!(children.len(), 1);
                let ch = children[0];
                assert!(matches!(res.tree.node(ch).kind, NodeKind::Joint));
                assert_eq!(res.tree.node(ch).wire_to_parent_um, 0.0);
            }
        }
        assert!(res.tree.buffer_count_under(res.source) > 0);
    }

    #[test]
    fn snake_solver_inverts_delay() {
        let (r, c) = (0.03, 0.2e-15);
        let cap = 30e-15;
        for &target in &[1e-12, 20e-12, 100e-12] {
            let l = solve_snake(target, cap, r, c);
            let back = r * l * (c * l / 2.0 + cap);
            assert!((back - target).abs() < 1e-15 * target.max(1e-12) + 1e-18);
        }
    }
}
