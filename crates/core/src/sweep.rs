//! Option-space sweeps: deterministic expansion of a base configuration
//! along the paper's design axes.
//!
//! A [`SweepSpec`] names a base [`CtsOptions`] plus either a cartesian
//! grid of [`SweepAxes`] (slew target × buffer-library subset ×
//! H-correction × buffering mode) or an explicit [`SweepPoint`] list.
//! [`SweepSpec::expand`] turns it into per-point options in a
//! **deterministic order** (row-major over the axes, slew target
//! outermost, buffering innermost; explicit lists keep their given
//! order), each validated up front through the
//! [`crate::CtsOptionsBuilder`] range checks. Point `i` of the expansion
//! is the sweep's *ordinal* `i` everywhere downstream — in
//! [`crate::SynthesisService::submit_sweep`] tickets, wire
//! `sweep_progress` events, and [`crate::ParetoFront`] rows.
//!
//! The standing invariant: a swept point's tree is byte-identical to
//! the same options submitted individually, because expansion produces
//! ordinary [`CtsOptions`] and the service runs each point as an
//! ordinary request.

use crate::flow::CtsResult;
use crate::options::{Buffering, CtsOptions, CtsOptionsBuilder, HCorrection, OptionsError};
use crate::pareto::ParetoPoint;
use std::fmt;

/// Cartesian sweep axes. An empty axis means "keep the base value" (it
/// contributes one implicit point, not zero), so the expansion size is
/// the product of `max(1, axis.len())` over the four axes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepAxes {
    /// Synthesis slew targets (s); outermost expansion axis.
    pub slew_targets: Vec<f64>,
    /// Buffer-library prefix sizes (`0` = full library).
    pub library_subsets: Vec<usize>,
    /// H-structure correction modes.
    pub h_corrections: Vec<HCorrection>,
    /// Buffer-insertion strategies; innermost expansion axis.
    pub bufferings: Vec<Buffering>,
}

/// One sweep point: per-field overrides of the base options. `None`
/// keeps the base value, so an all-`None` point reproduces the base
/// configuration exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SweepPoint {
    /// Override of [`CtsOptions::slew_target`] (s).
    pub slew_target: Option<f64>,
    /// Override of [`CtsOptions::library_subset`].
    pub library_subset: Option<usize>,
    /// Override of [`CtsOptions::h_correction`].
    pub h_correction: Option<HCorrection>,
    /// Override of [`CtsOptions::buffering`].
    pub buffering: Option<Buffering>,
}

impl SweepPoint {
    /// Applies the overrides to a base configuration, validating the
    /// combination through the [`CtsOptionsBuilder`] range checks.
    ///
    /// # Errors
    ///
    /// The [`OptionsError`] of the combined options, e.g. a point slew
    /// target above the base slew limit.
    pub fn apply(&self, base: &CtsOptions) -> Result<CtsOptions, OptionsError> {
        let mut b = CtsOptionsBuilder::from(base.clone());
        if let Some(v) = self.slew_target {
            b = b.slew_target(v);
        }
        if let Some(v) = self.library_subset {
            b = b.library_subset(v);
        }
        if let Some(v) = self.h_correction {
            b = b.h_correction(v);
        }
        if let Some(v) = self.buffering {
            b = b.buffering(v);
        }
        b.build()
    }
}

/// How a [`SweepSpec`] enumerates its points.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepPoints {
    /// The cartesian product of the axes, row-major (slew target
    /// outermost, then library subset, then H-correction, then
    /// buffering innermost).
    Cartesian(SweepAxes),
    /// An explicit point list, kept in the given order.
    Explicit(Vec<SweepPoint>),
}

/// A sweep: base options plus the points to evaluate them at.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The configuration every point starts from.
    pub base: CtsOptions,
    /// The points.
    pub points: SweepPoints,
}

/// Upper bound on expanded sweep size — large enough for any practical
/// grid over the four axes, small enough to catch a runaway product
/// before it floods the service queue.
pub const MAX_SWEEP_POINTS: usize = 4096;

impl SweepSpec {
    /// A cartesian sweep of `axes` around `base`.
    pub fn cartesian(base: CtsOptions, axes: SweepAxes) -> SweepSpec {
        SweepSpec {
            base,
            points: SweepPoints::Cartesian(axes),
        }
    }

    /// An explicit point-list sweep around `base`.
    pub fn explicit(base: CtsOptions, points: Vec<SweepPoint>) -> SweepSpec {
        SweepSpec {
            base,
            points: SweepPoints::Explicit(points),
        }
    }

    /// The points in expansion order, before option validation.
    pub fn expand_points(&self) -> Vec<SweepPoint> {
        match &self.points {
            SweepPoints::Explicit(points) => points.clone(),
            SweepPoints::Cartesian(axes) => {
                // An empty axis is the base value: one implicit entry.
                fn axis<T: Copy>(v: &[T]) -> Vec<Option<T>> {
                    if v.is_empty() {
                        vec![None]
                    } else {
                        v.iter().copied().map(Some).collect()
                    }
                }
                let slews = axis(&axes.slew_targets);
                let subsets = axis(&axes.library_subsets);
                let hs = axis(&axes.h_corrections);
                let bufs = axis(&axes.bufferings);
                let mut out =
                    Vec::with_capacity(slews.len() * subsets.len() * hs.len() * bufs.len());
                for &slew_target in &slews {
                    for &library_subset in &subsets {
                        for &h_correction in &hs {
                            for &buffering in &bufs {
                                out.push(SweepPoint {
                                    slew_target,
                                    library_subset,
                                    h_correction,
                                    buffering,
                                });
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Expands into per-point options, validated.
    ///
    /// # Errors
    ///
    /// [`SweepError::Empty`] for a zero-point explicit list,
    /// [`SweepError::TooManyPoints`] past [`MAX_SWEEP_POINTS`], and
    /// [`SweepError::BadPoint`] naming the first ordinal whose options
    /// fail the [`CtsOptions::check`] range validation.
    pub fn expand(&self) -> Result<Vec<CtsOptions>, SweepError> {
        let points = self.expand_points();
        if points.is_empty() {
            return Err(SweepError::Empty);
        }
        if points.len() > MAX_SWEEP_POINTS {
            return Err(SweepError::TooManyPoints {
                points: points.len(),
                max: MAX_SWEEP_POINTS,
            });
        }
        points
            .iter()
            .enumerate()
            .map(|(ordinal, point)| {
                point
                    .apply(&self.base)
                    .map_err(|source| SweepError::BadPoint { ordinal, source })
            })
            .collect()
    }
}

/// Why a sweep failed to expand.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The explicit point list was empty.
    Empty,
    /// The expansion exceeded [`MAX_SWEEP_POINTS`].
    TooManyPoints {
        /// The expanded size.
        points: usize,
        /// The maximum accepted.
        max: usize,
    },
    /// A point produced out-of-range options.
    BadPoint {
        /// The offending point's expansion ordinal.
        ordinal: usize,
        /// The underlying range violation.
        source: OptionsError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::Empty => write!(f, "sweep expands to zero points"),
            SweepError::TooManyPoints { points, max } => {
                write!(
                    f,
                    "sweep expands to {points} points, more than the maximum of {max}"
                )
            }
            SweepError::BadPoint { ordinal, source } => {
                write!(f, "sweep point {ordinal}: {source}")
            }
        }
    }
}

impl std::error::Error for SweepError {}

/// The [`ParetoPoint`] of one evaluated sweep point: objectives are the
/// engine-estimated global skew and latency plus the tree's total
/// buffer input capacitance, so the front is identical whether or not
/// SPICE verification ran.
pub fn pareto_point(ordinal: usize, result: &CtsResult) -> ParetoPoint {
    ParetoPoint {
        ordinal,
        skew: result.report.skew(),
        buffer_cap: result.buffer_cap_f,
        latency: result.report.latency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cartesian_expansion_is_row_major() {
        let axes = SweepAxes {
            slew_targets: vec![70e-12, 80e-12],
            library_subsets: vec![],
            h_corrections: vec![HCorrection::Off, HCorrection::ReEstimate],
            bufferings: vec![Buffering::Greedy],
        };
        let spec = SweepSpec::cartesian(CtsOptions::default(), axes);
        let points = spec.expand_points();
        assert_eq!(points.len(), 4);
        // Buffering innermost, slew target outermost; the empty subset
        // axis contributes the base value (None).
        assert_eq!(points[0].slew_target, Some(70e-12));
        assert_eq!(points[0].h_correction, Some(HCorrection::Off));
        assert_eq!(points[1].h_correction, Some(HCorrection::ReEstimate));
        assert_eq!(points[2].slew_target, Some(80e-12));
        assert!(points.iter().all(|p| p.library_subset.is_none()));
        assert!(points
            .iter()
            .all(|p| p.buffering == Some(Buffering::Greedy)));

        let expanded = spec.expand().unwrap();
        assert_eq!(expanded[1].slew_target, 70e-12);
        assert_eq!(expanded[1].h_correction, HCorrection::ReEstimate);
        assert_eq!(expanded[2].slew_target, 80e-12);
        // Untouched fields carry the base value.
        assert_eq!(
            expanded[3].grid_resolution,
            CtsOptions::default().grid_resolution
        );
    }

    #[test]
    fn explicit_points_keep_order_and_base() {
        let spec = SweepSpec::explicit(
            CtsOptions::default(),
            vec![
                SweepPoint::default(),
                SweepPoint {
                    buffering: Some(Buffering::VanGinneken),
                    ..SweepPoint::default()
                },
            ],
        );
        let expanded = spec.expand().unwrap();
        assert_eq!(expanded.len(), 2);
        assert_eq!(expanded[0], CtsOptions::default());
        assert_eq!(expanded[1].buffering, Buffering::VanGinneken);
    }

    #[test]
    fn expansion_errors_are_typed() {
        let empty = SweepSpec::explicit(CtsOptions::default(), vec![]);
        assert_eq!(empty.expand(), Err(SweepError::Empty));

        let bad = SweepSpec::explicit(
            CtsOptions::default(),
            vec![
                SweepPoint::default(),
                SweepPoint {
                    slew_target: Some(-1.0),
                    ..SweepPoint::default()
                },
            ],
        );
        match bad.expand() {
            Err(SweepError::BadPoint { ordinal: 1, source }) => {
                assert!(source.to_string().contains("slew_target"));
            }
            other => panic!("expected BadPoint at ordinal 1, got {other:?}"),
        }

        let huge = SweepSpec::explicit(
            CtsOptions::default(),
            vec![SweepPoint::default(); MAX_SWEEP_POINTS + 1],
        );
        assert!(matches!(
            huge.expand(),
            Err(SweepError::TooManyPoints { .. })
        ));
    }
}
