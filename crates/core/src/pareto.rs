//! Pareto-front accumulation over sweep objectives.
//!
//! A sweep evaluates one instance under many option points (see
//! [`crate::sweep`]); each point yields one [`ParetoPoint`] carrying the
//! three objectives the paper trades off — global skew, total buffer
//! capacitance (the buffer-area proxy), and source-to-sink latency. The
//! [`ParetoFront`] folds points with the same discipline as
//! [`crate::VariationSummary::fold`]: every row is retained and the
//! non-dominated set is recomputed from scratch on each fold, so the
//! result is **grouping-independent bit for bit** — folding per-worker
//! partial fronts in any association or order yields byte-identical
//! fronts.

use std::cmp::Ordering;

/// One evaluated sweep point: its expansion ordinal plus the three
/// objectives, taken from the engine-estimated timing report (so the
/// front exists whether or not SPICE verification ran).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Index of the point in the sweep's deterministic expansion order.
    pub ordinal: usize,
    /// Global skew (s): max minus min sink arrival.
    pub skew: f64,
    /// Total input capacitance of inserted buffers (F).
    pub buffer_cap: f64,
    /// Maximum source-to-sink latency (s).
    pub latency: f64,
}

impl ParetoPoint {
    /// Whether `self` dominates `other`: no worse on every objective and
    /// strictly better on at least one. Exact ties on all three dominate
    /// in neither direction, so duplicated objective vectors both stay
    /// on the front (keeps the front deterministic without tie-break
    /// heuristics). A NaN objective compares unordered, so a NaN point
    /// neither dominates nor is dominated.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        let no_worse = self.skew <= other.skew
            && self.buffer_cap <= other.buffer_cap
            && self.latency <= other.latency;
        let better = self.skew < other.skew
            || self.buffer_cap < other.buffer_cap
            || self.latency < other.latency;
        no_worse && better
    }

    /// Total order used to canonicalize row storage: by ordinal, then by
    /// each objective under IEEE total ordering. Distinct points from a
    /// real sweep have distinct ordinals; the objective tie-breaks only
    /// matter when overlapping fronts are folded.
    fn canonical_cmp(&self, other: &ParetoPoint) -> Ordering {
        self.ordinal
            .cmp(&other.ordinal)
            .then_with(|| self.skew.total_cmp(&other.skew))
            .then_with(|| self.buffer_cap.total_cmp(&other.buffer_cap))
            .then_with(|| self.latency.total_cmp(&other.latency))
    }
}

/// An exactly-foldable Pareto front over (skew, buffer cap, latency).
///
/// Holds **every** evaluated row in canonical order — the front itself
/// is derived, never stored — which is what makes
/// [`ParetoFront::fold`] associative and commutative at the byte level:
/// folding is concatenation plus re-canonicalization, and the
/// non-dominated set is a pure function of the row multiset.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ParetoFront {
    rows: Vec<ParetoPoint>,
}

impl ParetoFront {
    /// Builds a front from evaluated points (any order).
    pub fn from_points(points: impl IntoIterator<Item = ParetoPoint>) -> ParetoFront {
        let mut rows: Vec<ParetoPoint> = points.into_iter().collect();
        rows.sort_by(ParetoPoint::canonical_cmp);
        ParetoFront { rows }
    }

    /// Folds partial fronts into one, exactly: concatenates every row
    /// and re-canonicalizes, so
    /// `fold(&[fold(&[a, b]), c]) == fold(&[a, fold(&[b, c])])`
    /// bit for bit (same discipline as `VariationSummary::fold`).
    pub fn fold(parts: &[ParetoFront]) -> ParetoFront {
        Self::from_points(parts.iter().flat_map(|p| p.rows.iter().copied()))
    }

    /// Every evaluated row, in canonical (ordinal-major) order.
    pub fn rows(&self) -> &[ParetoPoint] {
        &self.rows
    }

    /// Number of evaluated rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been folded in yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The non-dominated rows, in canonical order.
    pub fn front(&self) -> Vec<ParetoPoint> {
        self.rows
            .iter()
            .filter(|p| !self.rows.iter().any(|q| q.dominates(p)))
            .copied()
            .collect()
    }

    /// Ordinals of the non-dominated rows, in canonical order — the
    /// compact form the wire `pareto` event carries alongside the rows.
    pub fn front_ordinals(&self) -> Vec<usize> {
        self.front().iter().map(|p| p.ordinal).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(ordinal: usize, skew: f64, cap: f64, lat: f64) -> ParetoPoint {
        ParetoPoint {
            ordinal,
            skew,
            buffer_cap: cap,
            latency: lat,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = p(0, 1.0, 1.0, 1.0);
        let b = p(1, 2.0, 1.0, 1.0);
        let twin = p(2, 1.0, 1.0, 1.0);
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // Exact ties dominate in neither direction.
        assert!(!a.dominates(&twin) && !twin.dominates(&a));
        // Trade-offs are incomparable.
        let c = p(3, 0.5, 5.0, 1.0);
        assert!(!a.dominates(&c) && !c.dominates(&a));
    }

    #[test]
    fn front_keeps_only_non_dominated() {
        let f = ParetoFront::from_points([
            p(0, 1.0, 3.0, 2.0),
            p(1, 2.0, 2.0, 2.0),
            p(2, 3.0, 3.0, 3.0), // dominated by both 0 and 1
            p(3, 1.0, 3.0, 2.0), // exact twin of 0: both stay
        ]);
        assert_eq!(f.len(), 4);
        assert_eq!(f.front_ordinals(), vec![0, 1, 3]);
    }

    #[test]
    fn fold_is_grouping_independent_bit_for_bit() {
        let a = ParetoFront::from_points([p(0, 1.0, 3.0, 2.0), p(3, 0.5, 4.0, 2.5)]);
        let b = ParetoFront::from_points([p(1, 2.0, 2.0, 2.0)]);
        let c = ParetoFront::from_points([p(2, 3.0, 3.0, 3.0), p(4, 1.5, 1.5, 9.0)]);
        let left = ParetoFront::fold(&[ParetoFront::fold(&[a.clone(), b.clone()]), c.clone()]);
        let right = ParetoFront::fold(&[a.clone(), ParetoFront::fold(&[b.clone(), c.clone()])]);
        let flat = ParetoFront::fold(&[a, b, c]);
        assert_eq!(left, right);
        assert_eq!(left, flat);
        // Rows survive folding verbatim and in ordinal order.
        assert_eq!(
            left.rows().iter().map(|r| r.ordinal).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(ParetoFront::fold(&[]), ParetoFront::default());
    }

    #[test]
    fn nan_rows_are_inert() {
        let f = ParetoFront::from_points([p(0, f64::NAN, 1.0, 1.0), p(1, 1.0, 1.0, 1.0)]);
        // The NaN row neither dominates nor is dominated: both stay.
        assert_eq!(f.front_ordinals(), vec![0, 1]);
    }
}
