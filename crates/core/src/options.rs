//! Synthesis options and error types.

use cts_timing::BufferId;
use std::fmt;

/// H-structure correction mode (paper §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HCorrection {
    /// No correction (the base flow).
    #[default]
    Off,
    /// Method 1: re-estimate the six child-pairing edge costs and pick the
    /// cheapest pairing (cheap, estimate-based).
    ReEstimate,
    /// Method 2: actually merge-route all three pairings and keep the one
    /// with the lowest skew (expensive, measurement-based).
    Correct,
}

impl fmt::Display for HCorrection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HCorrection::Off => write!(f, "off"),
            HCorrection::ReEstimate => write!(f, "re-estimation"),
            HCorrection::Correct => write!(f, "correction"),
        }
    }
}

/// Buffer-insertion strategy used while committing routed merge paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Buffering {
    /// Per-segment greedy insertion (paper §4.2.2): walk the routed path
    /// and place the largest slew-satisfying buffer as late as possible.
    /// The default; results are bit-identical to previous releases.
    #[default]
    Greedy,
    /// Van Ginneken-style bottom-up candidate generation with
    /// (cap, slack)-dominance pruning over the b-type buffer library
    /// (Li & Shi, arXiv:0710.4691): every slew-feasible placement and
    /// sizing is kept as a candidate, dominated candidates are pruned,
    /// and the minimum-arrival survivor is committed.
    VanGinneken,
}

impl fmt::Display for Buffering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Buffering::Greedy => write!(f, "greedy"),
            Buffering::VanGinneken => write!(f, "van Ginneken"),
        }
    }
}

/// How each variation corner re-evaluates an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariationMode {
    /// Keep the nominal synthesized tree and re-time it under each
    /// perturbed library: the perturbation only shifts verification.
    /// Cheap — one synthesis plus N timing evaluations.
    #[default]
    Evaluate,
    /// Re-run full synthesis under each perturbed library, so corners
    /// where the perturbation changes buffer-insertion decisions get
    /// the tree those decisions produce. N full syntheses.
    Resynthesize,
}

impl fmt::Display for VariationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariationMode::Evaluate => write!(f, "evaluate"),
            VariationMode::Resynthesize => write!(f, "resynthesize"),
        }
    }
}

/// The Monte Carlo variation axis: how many perturbed-library corners
/// to evaluate per instance, and how the perturbation is drawn.
///
/// The default is off (`corners == 0`). With `corners == N`, every
/// synthesized instance is additionally evaluated under N libraries
/// derived from the base library by `cts_timing::perturb_library`,
/// corner `k` using the stream seed `corner_seed(seed, k)`. The sigmas
/// are relative half-widths (`0.1` = up to ±10 %) applied per parameter
/// class. Results fold into a `VariationSummary` whose bytes are
/// identical for every shard/worker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variation {
    /// Number of corners to evaluate per instance; `0` disables the axis.
    pub corners: usize,
    /// Base seed of the per-corner perturbation streams.
    pub seed: u64,
    /// Relative half-width on buffer intrinsic-delay surfaces.
    pub sigma_buffer: f64,
    /// Relative half-width on wire-delay surfaces.
    pub sigma_wire: f64,
    /// Relative half-width on slew surfaces.
    pub sigma_slew: f64,
    /// Whether corners re-time the nominal tree or re-synthesize.
    pub mode: VariationMode,
}

impl Default for Variation {
    fn default() -> Variation {
        Variation {
            corners: 0,
            seed: 0,
            sigma_buffer: 0.05,
            sigma_wire: 0.05,
            sigma_slew: 0.05,
            mode: VariationMode::Evaluate,
        }
    }
}

impl Variation {
    /// Upper bound on `corners` accepted by validation — far above any
    /// practical Monte Carlo budget, low enough to catch a garbage
    /// value before it turns into a multi-day service job.
    pub const MAX_CORNERS: usize = 100_000;
}

/// Options controlling the buffered CTS flow.
///
/// Defaults reproduce the paper's experimental setup: 100 ps slew limit
/// with synthesis at 80 ps (§5.1), R = 45 routing grid (§4.2.2), cost
/// weights equal.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsOptions {
    /// Hard slew limit the final tree must honor (s).
    pub slew_limit: f64,
    /// Slew target used during synthesis, leaving margin under the limit
    /// (s). The paper uses 80 ps against a 100 ps limit.
    pub slew_target: f64,
    /// Default routing grid resolution per dimension (the paper's R = 45).
    pub grid_resolution: u32,
    /// Weight of distance in the nearest-neighbor cost (α of eq. 4.1),
    /// in 1/µm (costs are dimensionless).
    pub cost_alpha: f64,
    /// Weight of delay difference in the nearest-neighbor cost (β of
    /// eq. 4.1), in 1/s.
    pub cost_beta: f64,
    /// H-structure correction mode.
    pub h_correction: HCorrection,
    /// Buffer-insertion strategy along routed merge paths.
    pub buffering: Buffering,
    /// 10–90 % slew of the edge presented at the clock source input (s).
    pub source_slew: f64,
    /// Driver type assumed at sub-tree roots during bottom-up construction
    /// (before the real upstream buffer exists).
    pub virtual_driver: BufferId,
    /// Convergence tolerance of the binary-search stage (s of skew).
    pub binary_search_tol: f64,
    /// Maximum binary-search iterations per merge.
    pub binary_search_iters: usize,
    /// Worker threads for the per-level parallel stages (candidate timing
    /// and pair merge-routing): `0` uses all available cores, `1` runs
    /// serially. The synthesized tree is bit-identical for every value —
    /// merges build detached sub-forests that are grafted back in
    /// deterministic pair order.
    pub threads: usize,
    /// Monte Carlo corner evaluation under perturbed libraries; off by
    /// default (`corners == 0`).
    pub variation: Variation,
}

impl Default for CtsOptions {
    fn default() -> CtsOptions {
        CtsOptions {
            slew_limit: 100e-12,
            slew_target: 80e-12,
            grid_resolution: 45,
            // Relative weighting: 1 mm of distance ~ 10 ps of delay skew.
            cost_alpha: 1e-3,
            cost_beta: 1e11,
            h_correction: HCorrection::Off,
            buffering: Buffering::Greedy,
            source_slew: 80e-12,
            virtual_driver: BufferId(1),
            binary_search_tol: 0.05e-12,
            binary_search_iters: 24,
            threads: 0,
            variation: Variation::default(),
        }
    }
}

impl CtsOptions {
    /// Validates option consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`CtsError::BadOptions`] description if values are
    /// inconsistent (non-positive limits, target above limit, zero grid).
    pub fn validate(&self) -> Result<(), CtsError> {
        let bad = |msg: String| Err(CtsError::BadOptions(msg));
        if !(self.slew_limit > 0.0) {
            return bad(format!(
                "slew_limit must be positive, got {}",
                self.slew_limit
            ));
        }
        if !(self.slew_target > 0.0) || self.slew_target > self.slew_limit {
            return bad(format!(
                "slew_target ({}) must be in (0, slew_limit = {}]",
                self.slew_target, self.slew_limit
            ));
        }
        if self.grid_resolution == 0 {
            return bad("grid_resolution must be positive".into());
        }
        if self.cost_alpha < 0.0 || self.cost_beta < 0.0 {
            return bad("cost weights must be non-negative".into());
        }
        if self.binary_search_iters == 0 {
            return bad("binary_search_iters must be positive".into());
        }
        if self.variation.corners > Variation::MAX_CORNERS {
            return bad(format!(
                "variation.corners ({}) exceeds the maximum of {}",
                self.variation.corners,
                Variation::MAX_CORNERS
            ));
        }
        for (name, s) in [
            ("sigma_buffer", self.variation.sigma_buffer),
            ("sigma_wire", self.variation.sigma_wire),
            ("sigma_slew", self.variation.sigma_slew),
        ] {
            if !s.is_finite() || !(0.0..=0.5).contains(&s) {
                return bad(format!("variation.{name} must be in [0, 0.5], got {s}"));
            }
        }
        Ok(())
    }
}

/// Errors from the synthesis flow.
#[derive(Debug, Clone, PartialEq)]
pub enum CtsError {
    /// Options failed validation.
    BadOptions(String),
    /// The slew target cannot be met by any buffer in the library even at
    /// the minimum characterized wire length.
    SlewUnachievable {
        /// Description of where the flow got stuck.
        context: String,
    },
    /// Verification (SPICE) failed.
    Verify(String),
    /// A NaN or infinite value reached a synthesis kernel (a corrupt
    /// coordinate or delay), caught up front instead of panicking inside
    /// a comparison deep in a worker thread.
    NonFinite {
        /// Description of the offending value.
        context: String,
    },
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::BadOptions(msg) => write!(f, "invalid CTS options: {msg}"),
            CtsError::SlewUnachievable { context } => {
                write!(
                    f,
                    "slew target unachievable with this buffer library: {context}"
                )
            }
            CtsError::Verify(msg) => write!(f, "verification failed: {msg}"),
            CtsError::NonFinite { context } => {
                write!(f, "non-finite value in synthesis input: {context}")
            }
        }
    }
}

impl std::error::Error for CtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(CtsOptions::default().validate().is_ok());
    }

    #[test]
    fn target_above_limit_rejected() {
        let mut o = CtsOptions::default();
        o.slew_target = 2.0 * o.slew_limit;
        assert!(matches!(o.validate(), Err(CtsError::BadOptions(_))));
    }

    #[test]
    fn zero_grid_rejected() {
        let mut o = CtsOptions::default();
        o.grid_resolution = 0;
        assert!(o.validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = CtsError::SlewUnachievable {
            context: "merge of a/b".into(),
        };
        assert!(e.to_string().contains("merge of a/b"));
    }

    #[test]
    fn hcorrection_display() {
        assert_eq!(HCorrection::Off.to_string(), "off");
        assert_eq!(HCorrection::Correct.to_string(), "correction");
    }

    #[test]
    fn buffering_display_and_default() {
        assert_eq!(Buffering::default(), Buffering::Greedy);
        assert_eq!(Buffering::Greedy.to_string(), "greedy");
        assert_eq!(Buffering::VanGinneken.to_string(), "van Ginneken");
    }

    #[test]
    fn variation_defaults_off_and_validate() {
        let o = CtsOptions::default();
        assert_eq!(o.variation.corners, 0);
        assert_eq!(o.variation.mode, VariationMode::Evaluate);
        assert!(o.validate().is_ok());

        let mut bad = o.clone();
        bad.variation.sigma_wire = 0.9;
        assert!(matches!(bad.validate(), Err(CtsError::BadOptions(_))));
        let mut bad = o.clone();
        bad.variation.sigma_slew = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = o;
        bad.variation.corners = Variation::MAX_CORNERS + 1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn variation_mode_display() {
        assert_eq!(VariationMode::Evaluate.to_string(), "evaluate");
        assert_eq!(VariationMode::Resynthesize.to_string(), "resynthesize");
    }

    #[test]
    fn nonfinite_error_display() {
        let e = CtsError::NonFinite {
            context: "candidate 3".into(),
        };
        assert!(e.to_string().contains("candidate 3"));
    }
}
