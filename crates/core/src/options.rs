//! Synthesis options and error types.

use cts_timing::BufferId;
use std::fmt;

/// H-structure correction mode (paper §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HCorrection {
    /// No correction (the base flow).
    #[default]
    Off,
    /// Method 1: re-estimate the six child-pairing edge costs and pick the
    /// cheapest pairing (cheap, estimate-based).
    ReEstimate,
    /// Method 2: actually merge-route all three pairings and keep the one
    /// with the lowest skew (expensive, measurement-based).
    Correct,
}

impl fmt::Display for HCorrection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HCorrection::Off => write!(f, "off"),
            HCorrection::ReEstimate => write!(f, "re-estimation"),
            HCorrection::Correct => write!(f, "correction"),
        }
    }
}

/// Buffer-insertion strategy used while committing routed merge paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Buffering {
    /// Per-segment greedy insertion (paper §4.2.2): walk the routed path
    /// and place the largest slew-satisfying buffer as late as possible.
    /// The default; results are bit-identical to previous releases.
    #[default]
    Greedy,
    /// Van Ginneken-style bottom-up candidate generation with
    /// (cap, slack)-dominance pruning over the b-type buffer library
    /// (Li & Shi, arXiv:0710.4691): every slew-feasible placement and
    /// sizing is kept as a candidate, dominated candidates are pruned,
    /// and the minimum-arrival survivor is committed.
    VanGinneken,
}

impl fmt::Display for Buffering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Buffering::Greedy => write!(f, "greedy"),
            Buffering::VanGinneken => write!(f, "van Ginneken"),
        }
    }
}

/// How each variation corner re-evaluates an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VariationMode {
    /// Keep the nominal synthesized tree and re-time it under each
    /// perturbed library: the perturbation only shifts verification.
    /// Cheap — one synthesis plus N timing evaluations.
    #[default]
    Evaluate,
    /// Re-run full synthesis under each perturbed library, so corners
    /// where the perturbation changes buffer-insertion decisions get
    /// the tree those decisions produce. N full syntheses.
    Resynthesize,
}

impl fmt::Display for VariationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VariationMode::Evaluate => write!(f, "evaluate"),
            VariationMode::Resynthesize => write!(f, "resynthesize"),
        }
    }
}

/// The Monte Carlo variation axis: how many perturbed-library corners
/// to evaluate per instance, and how the perturbation is drawn.
///
/// The default is off (`corners == 0`). With `corners == N`, every
/// synthesized instance is additionally evaluated under N libraries
/// derived from the base library by `cts_timing::perturb_library`,
/// corner `k` using the stream seed `corner_seed(seed, k)`. The sigmas
/// are relative half-widths (`0.1` = up to ±10 %) applied per parameter
/// class. Results fold into a `VariationSummary` whose bytes are
/// identical for every shard/worker configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Variation {
    /// Number of corners to evaluate per instance; `0` disables the axis.
    pub corners: usize,
    /// Base seed of the per-corner perturbation streams.
    pub seed: u64,
    /// Relative half-width on buffer intrinsic-delay surfaces.
    pub sigma_buffer: f64,
    /// Relative half-width on wire-delay surfaces.
    pub sigma_wire: f64,
    /// Relative half-width on slew surfaces.
    pub sigma_slew: f64,
    /// Whether corners re-time the nominal tree or re-synthesize.
    pub mode: VariationMode,
}

impl Default for Variation {
    fn default() -> Variation {
        Variation {
            corners: 0,
            seed: 0,
            sigma_buffer: 0.05,
            sigma_wire: 0.05,
            sigma_slew: 0.05,
            mode: VariationMode::Evaluate,
        }
    }
}

impl Variation {
    /// Upper bound on `corners` accepted by validation — far above any
    /// practical Monte Carlo budget, low enough to catch a garbage
    /// value before it turns into a multi-day service job.
    pub const MAX_CORNERS: usize = 100_000;
}

/// Options controlling the buffered CTS flow.
///
/// Defaults reproduce the paper's experimental setup: 100 ps slew limit
/// with synthesis at 80 ps (§5.1), R = 45 routing grid (§4.2.2), cost
/// weights equal.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsOptions {
    /// Hard slew limit the final tree must honor (s).
    pub slew_limit: f64,
    /// Slew target used during synthesis, leaving margin under the limit
    /// (s). The paper uses 80 ps against a 100 ps limit.
    pub slew_target: f64,
    /// Default routing grid resolution per dimension (the paper's R = 45).
    pub grid_resolution: u32,
    /// Weight of distance in the nearest-neighbor cost (α of eq. 4.1),
    /// in 1/µm (costs are dimensionless).
    pub cost_alpha: f64,
    /// Weight of delay difference in the nearest-neighbor cost (β of
    /// eq. 4.1), in 1/s.
    pub cost_beta: f64,
    /// H-structure correction mode.
    pub h_correction: HCorrection,
    /// Buffer-insertion strategy along routed merge paths.
    pub buffering: Buffering,
    /// 10–90 % slew of the edge presented at the clock source input (s).
    pub source_slew: f64,
    /// Driver type assumed at sub-tree roots during bottom-up construction
    /// (before the real upstream buffer exists).
    pub virtual_driver: BufferId,
    /// Convergence tolerance of the binary-search stage (s of skew).
    pub binary_search_tol: f64,
    /// Maximum binary-search iterations per merge.
    pub binary_search_iters: usize,
    /// Worker threads for the per-level parallel stages (candidate timing
    /// and pair merge-routing): `0` uses all available cores, `1` runs
    /// serially. The synthesized tree is bit-identical for every value —
    /// merges build detached sub-forests that are grafted back in
    /// deterministic pair order.
    pub threads: usize,
    /// Restrict synthesis to the first `k` buffer types of the library;
    /// `0` (the default) uses the full library. Buffer ids keep their
    /// meaning under the truncation, so a tree synthesized against a
    /// subset times identically under the full library. Checked against
    /// the actual library size when synthesis starts (a `k` larger than
    /// the library is a [`CtsError::BadOptions`]).
    pub library_subset: usize,
    /// Monte Carlo corner evaluation under perturbed libraries; off by
    /// default (`corners == 0`).
    pub variation: Variation,
}

impl Default for CtsOptions {
    fn default() -> CtsOptions {
        CtsOptions {
            slew_limit: 100e-12,
            slew_target: 80e-12,
            grid_resolution: 45,
            // Relative weighting: 1 mm of distance ~ 10 ps of delay skew.
            cost_alpha: 1e-3,
            cost_beta: 1e11,
            h_correction: HCorrection::Off,
            buffering: Buffering::Greedy,
            source_slew: 80e-12,
            virtual_driver: BufferId(1),
            binary_search_tol: 0.05e-12,
            binary_search_iters: 24,
            threads: 0,
            library_subset: 0,
            variation: Variation::default(),
        }
    }
}

impl CtsOptions {
    /// Starts a [`CtsOptionsBuilder`] from the defaults. The builder
    /// validates ranges at [`CtsOptionsBuilder::build`], so invalid
    /// combinations surface as a typed [`OptionsError`] before any
    /// synthesis work begins.
    pub fn builder() -> CtsOptionsBuilder {
        CtsOptionsBuilder::default()
    }

    /// Typed range validation — the machine-readable form of
    /// [`CtsOptions::validate`].
    ///
    /// # Errors
    ///
    /// Returns the first [`OptionsError`] describing an out-of-range
    /// field (non-positive limits, target above limit, zero grid, zero
    /// iterations, out-of-range sigmas).
    pub fn check(&self) -> Result<(), OptionsError> {
        if !(self.slew_limit > 0.0) {
            return Err(OptionsError::SlewLimit {
                value: self.slew_limit,
            });
        }
        if !(self.slew_target > 0.0) || self.slew_target > self.slew_limit {
            return Err(OptionsError::SlewTarget {
                target: self.slew_target,
                limit: self.slew_limit,
            });
        }
        if self.grid_resolution == 0 {
            return Err(OptionsError::GridResolution);
        }
        if self.cost_alpha < 0.0 || self.cost_beta < 0.0 {
            return Err(OptionsError::CostWeights);
        }
        if self.binary_search_iters == 0 {
            return Err(OptionsError::BinarySearchIters);
        }
        if self.variation.corners > Variation::MAX_CORNERS {
            return Err(OptionsError::Corners {
                corners: self.variation.corners,
                max: Variation::MAX_CORNERS,
            });
        }
        for (name, s) in [
            ("sigma_buffer", self.variation.sigma_buffer),
            ("sigma_wire", self.variation.sigma_wire),
            ("sigma_slew", self.variation.sigma_slew),
        ] {
            if !s.is_finite() || !(0.0..=0.5).contains(&s) {
                return Err(OptionsError::Sigma { name, value: s });
            }
        }
        Ok(())
    }

    /// Validates option consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`CtsError::BadOptions`] description if values are
    /// inconsistent (non-positive limits, target above limit, zero grid).
    pub fn validate(&self) -> Result<(), CtsError> {
        self.check()
            .map_err(|e| CtsError::BadOptions(e.to_string()))
    }
}

/// A single out-of-range [`CtsOptions`] field, produced by
/// [`CtsOptions::check`] and [`CtsOptionsBuilder::build`]. Its `Display`
/// text is exactly the message [`CtsError::BadOptions`] carried before
/// this type existed, so wire-visible errors are unchanged.
#[derive(Debug, Clone, PartialEq)]
pub enum OptionsError {
    /// `slew_limit` was zero, negative, or NaN.
    SlewLimit {
        /// The offending value (s).
        value: f64,
    },
    /// `slew_target` was outside `(0, slew_limit]`.
    SlewTarget {
        /// The offending target (s).
        target: f64,
        /// The limit it must stay under (s).
        limit: f64,
    },
    /// `grid_resolution` was zero.
    GridResolution,
    /// `cost_alpha` or `cost_beta` was negative.
    CostWeights,
    /// `binary_search_iters` was zero.
    BinarySearchIters,
    /// `variation.corners` exceeded [`Variation::MAX_CORNERS`].
    Corners {
        /// The requested corner count.
        corners: usize,
        /// The maximum accepted.
        max: usize,
    },
    /// A variation sigma was NaN or outside `[0, 0.5]`.
    Sigma {
        /// Which sigma field.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for OptionsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionsError::SlewLimit { value } => {
                write!(f, "slew_limit must be positive, got {value}")
            }
            OptionsError::SlewTarget { target, limit } => {
                write!(
                    f,
                    "slew_target ({target}) must be in (0, slew_limit = {limit}]"
                )
            }
            OptionsError::GridResolution => write!(f, "grid_resolution must be positive"),
            OptionsError::CostWeights => write!(f, "cost weights must be non-negative"),
            OptionsError::BinarySearchIters => write!(f, "binary_search_iters must be positive"),
            OptionsError::Corners { corners, max } => {
                write!(
                    f,
                    "variation.corners ({corners}) exceeds the maximum of {max}"
                )
            }
            OptionsError::Sigma { name, value } => {
                write!(f, "variation.{name} must be in [0, 0.5], got {value}")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// With-style builder for [`CtsOptions`], started by
/// [`CtsOptions::builder`] or [`From<CtsOptions>`] to tweak an existing
/// configuration (how sweep points are constructed). Setters take the
/// same units as the fields they set; [`CtsOptionsBuilder::build`] runs
/// the full range validation and returns a typed [`OptionsError`]
/// instead of deferring the failure to synthesis.
#[derive(Debug, Clone, Default)]
pub struct CtsOptionsBuilder {
    opts: CtsOptions,
}

impl From<CtsOptions> for CtsOptionsBuilder {
    fn from(opts: CtsOptions) -> CtsOptionsBuilder {
        CtsOptionsBuilder { opts }
    }
}

impl CtsOptionsBuilder {
    /// Hard slew limit the final tree must honor (s).
    pub fn slew_limit(mut self, v: f64) -> Self {
        self.opts.slew_limit = v;
        self
    }

    /// Slew target used during synthesis (s); must stay within the limit.
    pub fn slew_target(mut self, v: f64) -> Self {
        self.opts.slew_target = v;
        self
    }

    /// Routing grid resolution per dimension.
    pub fn grid_resolution(mut self, v: u32) -> Self {
        self.opts.grid_resolution = v;
        self
    }

    /// Weight of distance in the nearest-neighbor cost (1/µm).
    pub fn cost_alpha(mut self, v: f64) -> Self {
        self.opts.cost_alpha = v;
        self
    }

    /// Weight of delay difference in the nearest-neighbor cost (1/s).
    pub fn cost_beta(mut self, v: f64) -> Self {
        self.opts.cost_beta = v;
        self
    }

    /// H-structure correction mode.
    pub fn h_correction(mut self, v: HCorrection) -> Self {
        self.opts.h_correction = v;
        self
    }

    /// Buffer-insertion strategy along routed merge paths.
    pub fn buffering(mut self, v: Buffering) -> Self {
        self.opts.buffering = v;
        self
    }

    /// Slew of the edge presented at the clock source input (s).
    pub fn source_slew(mut self, v: f64) -> Self {
        self.opts.source_slew = v;
        self
    }

    /// Driver type assumed at sub-tree roots during construction.
    pub fn virtual_driver(mut self, v: BufferId) -> Self {
        self.opts.virtual_driver = v;
        self
    }

    /// Convergence tolerance of the binary-search stage (s of skew).
    pub fn binary_search_tol(mut self, v: f64) -> Self {
        self.opts.binary_search_tol = v;
        self
    }

    /// Maximum binary-search iterations per merge.
    pub fn binary_search_iters(mut self, v: usize) -> Self {
        self.opts.binary_search_iters = v;
        self
    }

    /// Worker threads for the per-level parallel stages.
    pub fn threads(mut self, v: usize) -> Self {
        self.opts.threads = v;
        self
    }

    /// Restrict synthesis to the first `k` buffer types (0 = all).
    pub fn library_subset(mut self, v: usize) -> Self {
        self.opts.library_subset = v;
        self
    }

    /// Monte Carlo corner evaluation settings.
    pub fn variation(mut self, v: Variation) -> Self {
        self.opts.variation = v;
        self
    }

    /// Validates and returns the finished options.
    ///
    /// # Errors
    ///
    /// The first [`OptionsError`] describing an out-of-range field.
    pub fn build(self) -> Result<CtsOptions, OptionsError> {
        self.opts.check()?;
        Ok(self.opts)
    }
}

/// Errors from the synthesis flow.
#[derive(Debug, Clone, PartialEq)]
pub enum CtsError {
    /// Options failed validation.
    BadOptions(String),
    /// The slew target cannot be met by any buffer in the library even at
    /// the minimum characterized wire length.
    SlewUnachievable {
        /// Description of where the flow got stuck.
        context: String,
    },
    /// Verification (SPICE) failed.
    Verify(String),
    /// A NaN or infinite value reached a synthesis kernel (a corrupt
    /// coordinate or delay), caught up front instead of panicking inside
    /// a comparison deep in a worker thread.
    NonFinite {
        /// Description of the offending value.
        context: String,
    },
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::BadOptions(msg) => write!(f, "invalid CTS options: {msg}"),
            CtsError::SlewUnachievable { context } => {
                write!(
                    f,
                    "slew target unachievable with this buffer library: {context}"
                )
            }
            CtsError::Verify(msg) => write!(f, "verification failed: {msg}"),
            CtsError::NonFinite { context } => {
                write!(f, "non-finite value in synthesis input: {context}")
            }
        }
    }
}

impl std::error::Error for CtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(CtsOptions::default().validate().is_ok());
    }

    #[test]
    fn target_above_limit_rejected() {
        let mut o = CtsOptions::default();
        o.slew_target = 2.0 * o.slew_limit;
        assert!(matches!(o.validate(), Err(CtsError::BadOptions(_))));
    }

    #[test]
    fn zero_grid_rejected() {
        let mut o = CtsOptions::default();
        o.grid_resolution = 0;
        assert!(o.validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = CtsError::SlewUnachievable {
            context: "merge of a/b".into(),
        };
        assert!(e.to_string().contains("merge of a/b"));
    }

    #[test]
    fn hcorrection_display() {
        assert_eq!(HCorrection::Off.to_string(), "off");
        assert_eq!(HCorrection::Correct.to_string(), "correction");
    }

    #[test]
    fn buffering_display_and_default() {
        assert_eq!(Buffering::default(), Buffering::Greedy);
        assert_eq!(Buffering::Greedy.to_string(), "greedy");
        assert_eq!(Buffering::VanGinneken.to_string(), "van Ginneken");
    }

    #[test]
    fn variation_defaults_off_and_validate() {
        let o = CtsOptions::default();
        assert_eq!(o.variation.corners, 0);
        assert_eq!(o.variation.mode, VariationMode::Evaluate);
        assert!(o.validate().is_ok());

        let mut bad = o.clone();
        bad.variation.sigma_wire = 0.9;
        assert!(matches!(bad.validate(), Err(CtsError::BadOptions(_))));
        let mut bad = o.clone();
        bad.variation.sigma_slew = f64::NAN;
        assert!(bad.validate().is_err());
        let mut bad = o;
        bad.variation.corners = Variation::MAX_CORNERS + 1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn variation_mode_display() {
        assert_eq!(VariationMode::Evaluate.to_string(), "evaluate");
        assert_eq!(VariationMode::Resynthesize.to_string(), "resynthesize");
    }

    #[test]
    fn builder_validates_ranges() {
        // Negative slew, zero grid, zero iters each produce the typed
        // error whose Display matches the legacy validate() message.
        let e = CtsOptions::builder().slew_limit(-1.0).build().unwrap_err();
        assert_eq!(e, OptionsError::SlewLimit { value: -1.0 });
        assert_eq!(e.to_string(), "slew_limit must be positive, got -1");

        let e = CtsOptions::builder()
            .grid_resolution(0)
            .build()
            .unwrap_err();
        assert_eq!(e, OptionsError::GridResolution);

        let e = CtsOptions::builder()
            .binary_search_iters(0)
            .build()
            .unwrap_err();
        assert_eq!(e, OptionsError::BinarySearchIters);

        let built = CtsOptions::builder()
            .slew_target(60e-12)
            .threads(1)
            .library_subset(2)
            .build()
            .unwrap();
        assert_eq!(built.slew_target, 60e-12);
        assert_eq!(built.library_subset, 2);
        // validate() and check() agree on the message text.
        let mut o = CtsOptions::default();
        o.slew_target = 2.0 * o.slew_limit;
        let typed = o.check().unwrap_err();
        match o.validate() {
            Err(CtsError::BadOptions(msg)) => assert_eq!(msg, typed.to_string()),
            other => panic!("expected BadOptions, got {other:?}"),
        }
    }

    #[test]
    fn builder_from_existing_options() {
        let base = CtsOptions::builder().threads(3).build().unwrap();
        let tweaked = CtsOptionsBuilder::from(base.clone())
            .slew_target(70e-12)
            .build()
            .unwrap();
        assert_eq!(tweaked.threads, 3);
        assert_eq!(tweaked.slew_target, 70e-12);
        assert_eq!(tweaked.slew_limit, base.slew_limit);
    }

    #[test]
    fn nonfinite_error_display() {
        let e = CtsError::NonFinite {
            context: "candidate 3".into(),
        };
        assert!(e.to_string().contains("candidate 3"));
    }
}
