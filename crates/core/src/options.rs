//! Synthesis options and error types.

use cts_timing::BufferId;
use std::fmt;

/// H-structure correction mode (paper §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HCorrection {
    /// No correction (the base flow).
    #[default]
    Off,
    /// Method 1: re-estimate the six child-pairing edge costs and pick the
    /// cheapest pairing (cheap, estimate-based).
    ReEstimate,
    /// Method 2: actually merge-route all three pairings and keep the one
    /// with the lowest skew (expensive, measurement-based).
    Correct,
}

impl fmt::Display for HCorrection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HCorrection::Off => write!(f, "off"),
            HCorrection::ReEstimate => write!(f, "re-estimation"),
            HCorrection::Correct => write!(f, "correction"),
        }
    }
}

/// Buffer-insertion strategy used while committing routed merge paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Buffering {
    /// Per-segment greedy insertion (paper §4.2.2): walk the routed path
    /// and place the largest slew-satisfying buffer as late as possible.
    /// The default; results are bit-identical to previous releases.
    #[default]
    Greedy,
    /// Van Ginneken-style bottom-up candidate generation with
    /// (cap, slack)-dominance pruning over the b-type buffer library
    /// (Li & Shi, arXiv:0710.4691): every slew-feasible placement and
    /// sizing is kept as a candidate, dominated candidates are pruned,
    /// and the minimum-arrival survivor is committed.
    VanGinneken,
}

impl fmt::Display for Buffering {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Buffering::Greedy => write!(f, "greedy"),
            Buffering::VanGinneken => write!(f, "van Ginneken"),
        }
    }
}

/// Options controlling the buffered CTS flow.
///
/// Defaults reproduce the paper's experimental setup: 100 ps slew limit
/// with synthesis at 80 ps (§5.1), R = 45 routing grid (§4.2.2), cost
/// weights equal.
#[derive(Debug, Clone, PartialEq)]
pub struct CtsOptions {
    /// Hard slew limit the final tree must honor (s).
    pub slew_limit: f64,
    /// Slew target used during synthesis, leaving margin under the limit
    /// (s). The paper uses 80 ps against a 100 ps limit.
    pub slew_target: f64,
    /// Default routing grid resolution per dimension (the paper's R = 45).
    pub grid_resolution: u32,
    /// Weight of distance in the nearest-neighbor cost (α of eq. 4.1),
    /// in 1/µm (costs are dimensionless).
    pub cost_alpha: f64,
    /// Weight of delay difference in the nearest-neighbor cost (β of
    /// eq. 4.1), in 1/s.
    pub cost_beta: f64,
    /// H-structure correction mode.
    pub h_correction: HCorrection,
    /// Buffer-insertion strategy along routed merge paths.
    pub buffering: Buffering,
    /// 10–90 % slew of the edge presented at the clock source input (s).
    pub source_slew: f64,
    /// Driver type assumed at sub-tree roots during bottom-up construction
    /// (before the real upstream buffer exists).
    pub virtual_driver: BufferId,
    /// Convergence tolerance of the binary-search stage (s of skew).
    pub binary_search_tol: f64,
    /// Maximum binary-search iterations per merge.
    pub binary_search_iters: usize,
    /// Worker threads for the per-level parallel stages (candidate timing
    /// and pair merge-routing): `0` uses all available cores, `1` runs
    /// serially. The synthesized tree is bit-identical for every value —
    /// merges build detached sub-forests that are grafted back in
    /// deterministic pair order.
    pub threads: usize,
}

impl Default for CtsOptions {
    fn default() -> CtsOptions {
        CtsOptions {
            slew_limit: 100e-12,
            slew_target: 80e-12,
            grid_resolution: 45,
            // Relative weighting: 1 mm of distance ~ 10 ps of delay skew.
            cost_alpha: 1e-3,
            cost_beta: 1e11,
            h_correction: HCorrection::Off,
            buffering: Buffering::Greedy,
            source_slew: 80e-12,
            virtual_driver: BufferId(1),
            binary_search_tol: 0.05e-12,
            binary_search_iters: 24,
            threads: 0,
        }
    }
}

impl CtsOptions {
    /// Validates option consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`CtsError::BadOptions`] description if values are
    /// inconsistent (non-positive limits, target above limit, zero grid).
    pub fn validate(&self) -> Result<(), CtsError> {
        let bad = |msg: String| Err(CtsError::BadOptions(msg));
        if !(self.slew_limit > 0.0) {
            return bad(format!(
                "slew_limit must be positive, got {}",
                self.slew_limit
            ));
        }
        if !(self.slew_target > 0.0) || self.slew_target > self.slew_limit {
            return bad(format!(
                "slew_target ({}) must be in (0, slew_limit = {}]",
                self.slew_target, self.slew_limit
            ));
        }
        if self.grid_resolution == 0 {
            return bad("grid_resolution must be positive".into());
        }
        if self.cost_alpha < 0.0 || self.cost_beta < 0.0 {
            return bad("cost weights must be non-negative".into());
        }
        if self.binary_search_iters == 0 {
            return bad("binary_search_iters must be positive".into());
        }
        Ok(())
    }
}

/// Errors from the synthesis flow.
#[derive(Debug, Clone, PartialEq)]
pub enum CtsError {
    /// Options failed validation.
    BadOptions(String),
    /// The slew target cannot be met by any buffer in the library even at
    /// the minimum characterized wire length.
    SlewUnachievable {
        /// Description of where the flow got stuck.
        context: String,
    },
    /// Verification (SPICE) failed.
    Verify(String),
    /// A NaN or infinite value reached a synthesis kernel (a corrupt
    /// coordinate or delay), caught up front instead of panicking inside
    /// a comparison deep in a worker thread.
    NonFinite {
        /// Description of the offending value.
        context: String,
    },
}

impl fmt::Display for CtsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtsError::BadOptions(msg) => write!(f, "invalid CTS options: {msg}"),
            CtsError::SlewUnachievable { context } => {
                write!(
                    f,
                    "slew target unachievable with this buffer library: {context}"
                )
            }
            CtsError::Verify(msg) => write!(f, "verification failed: {msg}"),
            CtsError::NonFinite { context } => {
                write!(f, "non-finite value in synthesis input: {context}")
            }
        }
    }
}

impl std::error::Error for CtsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(CtsOptions::default().validate().is_ok());
    }

    #[test]
    fn target_above_limit_rejected() {
        let mut o = CtsOptions::default();
        o.slew_target = 2.0 * o.slew_limit;
        assert!(matches!(o.validate(), Err(CtsError::BadOptions(_))));
    }

    #[test]
    fn zero_grid_rejected() {
        let mut o = CtsOptions::default();
        o.grid_resolution = 0;
        assert!(o.validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = CtsError::SlewUnachievable {
            context: "merge of a/b".into(),
        };
        assert!(e.to_string().contains("merge of a/b"));
    }

    #[test]
    fn hcorrection_display() {
        assert_eq!(HCorrection::Off.to_string(), "off");
        assert_eq!(HCorrection::Correct.to_string(), "correction");
    }

    #[test]
    fn buffering_display_and_default() {
        assert_eq!(Buffering::default(), Buffering::Greedy);
        assert_eq!(Buffering::Greedy.to_string(), "greedy");
        assert_eq!(Buffering::VanGinneken.to_string(), "van Ginneken");
    }

    #[test]
    fn nonfinite_error_display() {
        let e = CtsError::NonFinite {
            context: "candidate 3".into(),
        };
        assert!(e.to_string().contains("candidate 3"));
    }
}
