//! Bi-directional maze routing with slew-driven buffer insertion and
//! intelligent buffer sizing (paper §4.2.2, Figs. 4.3/4.4).
//!
//! Routing for a merge starts from *both* sub-tree roots simultaneously.
//! Each side runs a Dijkstra wavefront over the routing grid whose cost is
//! the estimated arrival time (sub-tree delay + committed buffered stages +
//! the pending, not-yet-driven wire segment). While a wavefront expands,
//! the wire segment since the last buffer grows; when its far-end slew
//! would exceed the synthesis target, a buffer is inserted as late as
//! possible with the type whose slew lands closest to the target from
//! below — the paper's "intelligent buffer insertion" that evaluates
//! multiple types at and ahead of the expansion cell.
//!
//! After both wavefronts cover the grid, the cell minimizing the arrival
//! difference (skew) is picked as the tentative merge location, the two
//! cell paths are re-walked exactly (committing buffer sites and stage
//! delays), and the result is handed to the binary-search stage.

use crate::options::{Buffering, CtsError, CtsOptions};
use cts_geom::{CellId, Point, RoutingGrid};
use cts_timing::{BufferId, DelaySlewLibrary, Load};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// Buffering-mode spans (attr = path point count): which insertion
// algorithm a committed path went through. Telemetry only.
static SPAN_BUFFER_GREEDY: cts_obs::Name = cts_obs::Name::new("buffer.greedy");
static SPAN_BUFFER_VG: cts_obs::Name = cts_obs::Name::new("buffer.van_ginneken");

/// One side of a merge: a sub-tree root waiting to be connected.
#[derive(Debug, Clone, Copy)]
pub struct MergeSide {
    /// Root location (µm).
    pub root_point: Point,
    /// What the routing wire sees when it reaches the root.
    pub root_load: Load,
    /// Delay from the root down to its sinks (s), as estimated by the
    /// timing engine under the bottom-up slew assumption.
    pub subtree_delay: f64,
    /// Unbuffered wire depth already hanging below the root (µm); the first
    /// routed segment's slew budget is reduced by this much (the driver has
    /// to push through it before reaching a restoring buffer).
    pub unbuffered_depth_um: f64,
}

/// A buffer committed along one routed path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferSite {
    /// Placement (µm).
    pub position: Point,
    /// Library buffer type.
    pub buffer: BufferId,
    /// Routed wire length from this buffer down to the previous site (or
    /// the sub-tree root), µm.
    pub wire_below_um: f64,
}

/// The routed plan for one side of a merge.
#[derive(Debug, Clone, PartialEq)]
pub struct SidePlan {
    /// Buffers in order from the sub-tree root toward the merge point.
    pub buffers: Vec<BufferSite>,
    /// Wire length from the last buffer (or the root, if unbuffered) up to
    /// the merge point (µm).
    pub top_wire_um: f64,
    /// Estimated delay of the committed stages, root side (s) — excludes
    /// the top (pending) wire, which belongs to the next level's stage.
    pub committed_delay: f64,
    /// Estimated arrival (sub-tree + committed + pending wire) at the merge
    /// point (s), used for reporting and tests.
    pub arrival_estimate: f64,
}

impl SidePlan {
    /// The position of the last fixed node: the topmost buffer, or `root`
    /// when the path is unbuffered — the `v1`/`v2` of the paper's binary
    /// search stage (§4.2.3).
    pub fn last_fixed_position(&self, root: Point) -> Point {
        self.buffers.last().map(|b| b.position).unwrap_or(root)
    }
}

/// A complete merge-routing result.
#[derive(Debug, Clone, PartialEq)]
pub struct MergePlan {
    /// Tentative merge location (refined later by binary search).
    pub merge_point: Point,
    /// Plans for the two sides, in the order the roots were given.
    pub sides: [SidePlan; 2],
}

/// The maze router.
#[derive(Debug, Clone, Copy)]
pub struct MazeRouter<'a> {
    lib: &'a DelaySlewLibrary,
    options: &'a CtsOptions,
}

/// Reusable buffers for [`MazeRouter::route_with`]: per-cell label stores,
/// the wavefront heap, the cached per-buffer segment limits, and the
/// routing-grid dimension cache.
///
/// A scratch belongs to one (library, options) context — the segment-limit
/// cache is computed on first use and never invalidated — and to one
/// worker at a time. Reusing it across the merges a worker processes is
/// what removes the per-merge allocation churn of the original router.
#[derive(Debug, Default, Clone)]
pub struct MazeScratch {
    labels: [Vec<Option<Label>>; 2],
    heap: BinaryHeap<QueueEntry>,
    limits: Vec<f64>,
    /// Grid dimensions memoized by routed-region size and resolution.
    /// Merge spans repeat heavily within a topology level (matched pairs
    /// have similar extents, and H-correction re-routes the same pair
    /// repeatedly), so a small linear-scan cache hits often.
    grid_dims: Vec<(GridKey, (u32, u32))>,
}

/// Cache key of [`MazeScratch::grid_dims`]: the routed region's width and
/// height bit patterns (exact match, no quantization — the dims are a pure
/// function of exactly these) and the default resolution in effect.
type GridKey = (u64, u64, u32);

/// Entries kept in [`MazeScratch::grid_dims`] before the (rarely hit)
/// wholesale reset; spans within one level cluster tightly, so a handful of
/// slots covers them.
const GRID_DIMS_CACHE_CAP: usize = 32;

impl MazeScratch {
    /// Ensures the per-buffer segment-limit cache is filled for `router`
    /// and returns it.
    pub(crate) fn limits(&mut self, router: &MazeRouter<'_>) -> Result<&[f64], CtsError> {
        if self.limits.is_empty() {
            self.limits = router.segment_limits()?;
        }
        Ok(&self.limits)
    }

    /// Drops the caches that depend on the (library, options) context:
    /// the per-buffer segment limits (a function of the slew target and
    /// library) and the grid-dimension memo (keyed by resolution, safe in
    /// principle, but cleared alongside for a context change — it refills
    /// within one level). Keeps allocations.
    pub(crate) fn invalidate_context(&mut self) {
        self.limits.clear();
        self.grid_dims.clear();
    }

    /// [`RoutingGrid::between`] through the dimension cache: the dynamic
    /// resolution growth is a pure function of the routed region's exact
    /// width/height ([`RoutingGrid::dims_for_region`]), so cached
    /// (cols, rows) rebuild a bit-identical grid without re-deriving them.
    pub(crate) fn grid_between(&mut self, a: Point, b: Point, resolution: u32) -> RoutingGrid {
        let region = RoutingGrid::region_between(a, b);
        let key = (
            region.width().to_bits(),
            region.height().to_bits(),
            resolution,
        );
        let dims = self
            .grid_dims
            .iter()
            .find(|&&(k, _)| k == key)
            .map(|&(_, dims)| dims);
        let (cols, rows) = dims.unwrap_or_else(|| {
            let dims = RoutingGrid::dims_for_region(region, resolution);
            if self.grid_dims.len() >= GRID_DIMS_CACHE_CAP {
                self.grid_dims.clear();
            }
            self.grid_dims.push((key, dims));
            dims
        });
        RoutingGrid::over_region(region, cols, rows)
    }
}

#[derive(Debug, Clone, Copy)]
struct Label {
    arrival: f64,
    committed: f64,
    seg_len: f64,
    load: BufferId, // resolved load of the pending segment
    prev: Option<CellId>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct QueueEntry {
    arrival: f64,
    cell: CellId,
}

impl Eq for QueueEntry {}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on arrival (BinaryHeap is a max-heap).
        other
            .arrival
            .partial_cmp(&self.arrival)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.cell.cmp(&other.cell))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<'a> MazeRouter<'a> {
    /// Creates a router.
    pub fn new(lib: &'a DelaySlewLibrary, options: &'a CtsOptions) -> MazeRouter<'a> {
        MazeRouter { lib, options }
    }

    /// The library this router sizes buffers from.
    pub(crate) fn lib(&self) -> &'a DelaySlewLibrary {
        self.lib
    }

    /// The options in effect.
    pub(crate) fn opts(&self) -> &'a CtsOptions {
        self.options
    }

    /// Longest pending segment the library can drive into `load` at the
    /// slew target, maximized over buffer types (since the eventual driver
    /// is chosen at insertion time).
    ///
    /// # Errors
    ///
    /// [`CtsError::SlewUnachievable`] if no buffer can drive even the
    /// minimum characterized length.
    fn max_segment(&self, load: BufferId) -> Result<f64, CtsError> {
        let target = self.options.slew_target;
        let mut best: Option<f64> = None;
        for drive in self.lib.buffer_ids() {
            if let Some(l) =
                self.lib
                    .max_wire_length_for_slew(drive, Load::Buffer(load), target, target)
            {
                best = Some(best.map_or(l, |b: f64| b.max(l)));
            }
        }
        best.ok_or_else(|| CtsError::SlewUnachievable {
            context: format!("no buffer can drive load {load} at the slew target"),
        })
    }

    /// Precomputed [`MazeRouter::max_segment`] per buffer id — the
    /// expansion loop consults this on every step.
    pub(crate) fn segment_limits(&self) -> Result<Vec<f64>, CtsError> {
        self.lib.buffer_ids().map(|b| self.max_segment(b)).collect()
    }

    /// Intelligent sizing: the buffer type whose far-end slew over a
    /// `seg_len` µm wire into `load` is closest to the target *without
    /// exceeding it* (Fig. 4.4). Falls back to the strongest buffer if none
    /// qualifies (the caller bounds `seg_len` so this is defensive).
    pub(crate) fn best_buffer_for(&self, load: BufferId, seg_len: f64) -> BufferId {
        let target = self.options.slew_target;
        let mut best: Option<(BufferId, f64)> = None;
        let mut strongest: Option<(BufferId, f64)> = None;
        for drive in self.lib.buffer_ids() {
            let slew = self
                .lib
                .single_wire(drive, Load::Buffer(load), target, seg_len.max(1.0))
                .output_slew;
            if slew <= target {
                // closest to target from below = largest qualifying slew
                if best.is_none_or(|(_, s)| slew > s) {
                    best = Some((drive, slew));
                }
            }
            if strongest.is_none_or(|(_, s)| slew < s) {
                strongest = Some((drive, slew));
            }
        }
        best.or(strongest).expect("non-empty buffer library").0
    }

    /// Delay of a committed stage: a buffer of type `drive` feeding
    /// `seg_len` µm of wire into `load`, under the slew-target input
    /// assumption.
    fn stage_delay(&self, drive: BufferId, load: BufferId, seg_len: f64) -> f64 {
        let t = self.lib.single_wire(
            drive,
            Load::Buffer(load),
            self.options.slew_target,
            seg_len.max(1.0),
        );
        t.buffer_delay + t.wire_delay
    }

    /// Pending-wire delay estimate: the not-yet-driven top segment,
    /// evaluated under the virtual driver.
    pub(crate) fn pending_delay(&self, load: BufferId, seg_len: f64) -> f64 {
        if seg_len <= 0.0 {
            return 0.0;
        }
        self.lib
            .single_wire(
                self.options.virtual_driver,
                Load::Buffer(load),
                self.options.slew_target,
                seg_len.max(1.0),
            )
            .wire_delay
    }

    pub(crate) fn resolve_load(&self, load: Load) -> BufferId {
        match load {
            Load::Buffer(b) => b,
            Load::Sink { cap } => self.lib.nearest_buffer_by_cap(cap),
        }
    }

    /// Runs one side's wavefront, filling `labels` (one slot per grid
    /// cell) using the caller's reusable buffers.
    fn expand_side_into(
        &self,
        grid: &RoutingGrid,
        side: &MergeSide,
        limits: &[f64],
        labels: &mut Vec<Option<Label>>,
        heap: &mut BinaryHeap<QueueEntry>,
    ) -> Result<(), CtsError> {
        let root_load = self.resolve_load(side.root_load);
        let start = grid.nearest_cell(side.root_point);
        let start_seg =
            grid.cell_center(start).manhattan_dist(side.root_point) + side.unbuffered_depth_um;

        labels.clear();
        labels.resize(grid.cell_count(), None);
        heap.clear();
        let init = Label {
            arrival: side.subtree_delay + self.pending_delay(root_load, start_seg),
            committed: 0.0,
            seg_len: start_seg,
            load: root_load,
            prev: None,
        };
        labels[grid.linear_index(start)] = Some(init);
        heap.push(QueueEntry {
            arrival: init.arrival,
            cell: start,
        });

        while let Some(QueueEntry { arrival, cell }) = heap.pop() {
            let label = labels[grid.linear_index(cell)].expect("queued cells have labels");
            if arrival > label.arrival {
                continue; // stale entry
            }
            for next in grid.neighbors(cell) {
                let step = grid.cell_dist(cell, next);
                let mut committed = label.committed;
                let mut seg = label.seg_len + step;
                let mut load = label.load;
                // Slew control: if the grown segment exceeds what the best
                // buffer can drive, a buffer is committed at the *current*
                // cell (as late as possible) before stepping.
                let max_seg = limits[load.0];
                if seg > max_seg {
                    let buf = self.best_buffer_for(load, label.seg_len);
                    committed += self.stage_delay(buf, load, label.seg_len);
                    load = buf;
                    seg = step;
                }
                let arrival = side.subtree_delay + committed + self.pending_delay(load, seg);
                let idx = grid.linear_index(next);
                if labels[idx].is_none_or(|l| arrival < l.arrival) {
                    labels[idx] = Some(Label {
                        arrival,
                        committed,
                        seg_len: seg,
                        load,
                        prev: Some(cell),
                    });
                    heap.push(QueueEntry {
                        arrival,
                        cell: next,
                    });
                }
            }
        }
        Ok(())
    }

    /// Reconstructs the cell path root→`to` from backpointers.
    fn cell_path(grid: &RoutingGrid, labels: &[Option<Label>], to: CellId) -> Vec<CellId> {
        let mut path = vec![to];
        let mut at = to;
        while let Some(prev) = labels[grid.linear_index(at)].and_then(|l| l.prev) {
            path.push(prev);
            at = prev;
        }
        path.reverse();
        path
    }

    /// Exact re-walk of a geometric path from the root to the merge point:
    /// commits buffer sites late-as-possible with intelligent sizing and
    /// returns the side plan.
    fn commit_path(
        &self,
        points: &[Point],
        side: &MergeSide,
        limits: &[f64],
    ) -> Result<SidePlan, CtsError> {
        if self.options.buffering == Buffering::VanGinneken {
            let _span = cts_obs::span_with(&SPAN_BUFFER_VG, points.len() as u64);
            return crate::vanginneken::commit_path_vg(self, points, side, limits);
        }
        let _span = cts_obs::span_with(&SPAN_BUFFER_GREEDY, points.len() as u64);
        let mut load = self.resolve_load(side.root_load);
        // The pre-existing unbuffered depth below the root consumes part of
        // the first segment's slew budget but is not new wire.
        let mut phantom = side.unbuffered_depth_um;
        let mut seg = 0.0f64;
        let mut committed = 0.0f64;
        let mut buffers = Vec::new();
        let mut at = side.root_point;

        for &next in points {
            let step = at.manhattan_dist(next);
            if step == 0.0 {
                continue;
            }
            let max_seg = limits[load.0];
            if phantom + seg + step > max_seg && phantom + seg > 0.0 {
                let buf = self.best_buffer_for(load, phantom + seg);
                buffers.push(BufferSite {
                    position: at,
                    buffer: buf,
                    wire_below_um: seg,
                });
                // The phantom wire's delay is already inside the sub-tree
                // delay; only the new wire's share is committed here.
                let t = self.lib.single_wire(
                    buf,
                    Load::Buffer(load),
                    self.options.slew_target,
                    (phantom + seg).max(1.0),
                );
                let new_share = if phantom + seg > 0.0 {
                    seg / (phantom + seg)
                } else {
                    1.0
                };
                committed += t.buffer_delay + t.wire_delay * new_share;
                load = buf;
                seg = 0.0;
                phantom = 0.0;
            }
            // A single step longer than max_seg (coarse grid) still must be
            // taken; the slew overshoot is bounded by one pitch and the
            // margin between target and limit absorbs it.
            seg += step;
            at = next;
        }

        let arrival = side.subtree_delay + committed + self.pending_delay(load, seg);
        Ok(SidePlan {
            buffers,
            top_wire_um: seg,
            committed_delay: committed,
            arrival_estimate: arrival,
        })
    }

    /// Routes a merge between two sides and returns the plan.
    ///
    /// Convenience wrapper over [`MazeRouter::route_with`] that allocates
    /// fresh scratch; hot paths should hold a [`MazeScratch`] instead.
    ///
    /// # Errors
    ///
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target at all.
    pub fn route(&self, a: &MergeSide, b: &MergeSide) -> Result<MergePlan, CtsError> {
        self.route_with(&mut MazeScratch::default(), a, b)
    }

    /// Routes a merge between two sides using the caller's reusable
    /// buffers.
    ///
    /// # Errors
    ///
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target at all.
    pub fn route_with(
        &self,
        scratch: &mut MazeScratch,
        a: &MergeSide,
        b: &MergeSide,
    ) -> Result<MergePlan, CtsError> {
        let grid = scratch.grid_between(a.root_point, b.root_point, self.options.grid_resolution);
        scratch.limits(self)?;
        let MazeScratch {
            labels: [la, lb],
            heap,
            limits,
            ..
        } = scratch;
        self.expand_side_into(&grid, a, limits, la, heap)?;
        self.expand_side_into(&grid, b, limits, lb, heap)?;
        let (la, lb, limits): (&[Option<Label>], &[Option<Label>], &[f64]) = (la, lb, limits);

        // Merge cell: minimum |arrival difference|, then minimum total.
        let mut best: Option<(f64, f64, CellId)> = None;
        for row in 0..grid.rows() {
            for col in 0..grid.cols() {
                let cell = CellId::new(col, row);
                let idx = grid.linear_index(cell);
                if let (Some(x), Some(y)) = (la[idx], lb[idx]) {
                    let diff = (x.arrival - y.arrival).abs();
                    let total = x.arrival + y.arrival;
                    if best.is_none_or(|(d, t, _)| {
                        diff < d - 1e-18 || (diff <= d + 1e-18 && total < t)
                    }) {
                        best = Some((diff, total, cell));
                    }
                }
            }
        }
        let (_, _, merge_cell) = best.expect("grid covers both roots");
        let merge_point = grid.cell_center(merge_cell);

        let plan_side = |labels: &[Option<Label>], side: &MergeSide| {
            let cells = Self::cell_path(&grid, labels, merge_cell);
            let mut points: Vec<Point> = cells.iter().map(|&c| grid.cell_center(c)).collect();
            // Snap endpoints: the path leaves the exact root and ends at the
            // exact merge point.
            if let Some(last) = points.last_mut() {
                *last = merge_point;
            }
            self.commit_path(&points, side, limits)
        };
        let sa = plan_side(la, a)?;
        let sb = plan_side(lb, b)?;
        Ok(MergePlan {
            merge_point,
            sides: [sa, sb],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_spice::units::PS;
    use cts_timing::fast_library;

    fn options() -> CtsOptions {
        CtsOptions::default()
    }

    fn side(x: f64, y: f64, delay_ps: f64) -> MergeSide {
        MergeSide {
            root_point: Point::new(x, y),
            root_load: Load::Sink { cap: 20e-15 },
            subtree_delay: delay_ps * PS,
            unbuffered_depth_um: 0.0,
        }
    }

    #[test]
    fn short_merge_needs_no_buffers() {
        let lib = fast_library();
        let opts = options();
        let router = MazeRouter::new(lib, &opts);
        let plan = router
            .route(&side(0.0, 0.0, 0.0), &side(300.0, 0.0, 0.0))
            .unwrap();
        assert!(plan.sides[0].buffers.is_empty());
        assert!(plan.sides[1].buffers.is_empty());
        // Merge lands roughly midway for symmetric sides.
        assert!(
            (plan.merge_point.x - 150.0).abs() < 80.0,
            "merge at {}",
            plan.merge_point
        );
    }

    #[test]
    fn long_merge_inserts_buffers_along_paths() {
        let lib = fast_library();
        let opts = options();
        let router = MazeRouter::new(lib, &opts);
        // 6 mm apart: far beyond any single buffered segment.
        let plan = router
            .route(&side(0.0, 0.0, 0.0), &side(6000.0, 0.0, 0.0))
            .unwrap();
        let total: usize = plan.sides.iter().map(|s| s.buffers.len()).sum();
        assert!(total >= 2, "expected along-path buffers, got {total}");
        // Every committed segment respects the slew target by construction:
        // check that no wire below a buffer exceeds the best max segment.
        for s in &plan.sides {
            for b in &s.buffers {
                let max_any = lib
                    .buffer_ids()
                    .filter_map(|d| {
                        lib.max_wire_length_for_slew(
                            d,
                            Load::Buffer(b.buffer),
                            opts.slew_target,
                            opts.slew_target,
                        )
                    })
                    .fold(0.0f64, f64::max);
                assert!(
                    b.wire_below_um <= max_any * 1.05 + 130.0,
                    "segment {} µm exceeds drivable {} µm",
                    b.wire_below_um,
                    max_any
                );
            }
        }
    }

    #[test]
    fn merge_point_shifts_toward_slower_side() {
        let lib = fast_library();
        let opts = options();
        let router = MazeRouter::new(lib, &opts);
        // Side A carries a few ps more sub-tree delay — within the range
        // the merge position can compensate over 1.2 mm of wire. (Larger
        // imbalances are the balance stage's job, not the router's.)
        let plan = router
            .route(&side(0.0, 0.0, 3.0), &side(1200.0, 0.0, 0.0))
            .unwrap();
        assert!(
            plan.merge_point.x < 600.0,
            "merge at {} should lean toward the slow side",
            plan.merge_point
        );
        // And the chosen cell should roughly balance arrivals.
        let diff = (plan.sides[0].arrival_estimate - plan.sides[1].arrival_estimate).abs();
        let balanced = router
            .route(&side(0.0, 0.0, 0.0), &side(1200.0, 0.0, 0.0))
            .unwrap();
        let base_diff =
            (balanced.sides[0].arrival_estimate - balanced.sides[1].arrival_estimate).abs();
        assert!(
            diff < 3.0 * PS + base_diff,
            "arrival diff {} ps (baseline {} ps)",
            diff / PS,
            base_diff / PS
        );
    }

    #[test]
    fn grid_cache_does_not_change_plans() {
        // Same-span pairs at different die positions must route to the
        // same plans whether the grid dims come from the cache or from a
        // fresh `between` derivation.
        let lib = fast_library();
        let opts = options();
        let router = MazeRouter::new(lib, &opts);
        let mut warm = MazeScratch::default();
        let pairs = [
            (side(0.0, 0.0, 0.0), side(2600.0, 700.0, 0.0)),
            (side(4000.0, 1000.0, 0.0), side(6600.0, 1700.0, 0.0)), // same span
            (side(100.0, 50.0, 2.0), side(2700.0, 750.0, 0.0)),     // same span
        ];
        for (a, b) in &pairs {
            let cached = router.route_with(&mut warm, a, b).unwrap();
            let fresh = router
                .route_with(&mut MazeScratch::default(), a, b)
                .unwrap();
            assert_eq!(cached, fresh);
        }
    }

    #[test]
    fn side_plan_last_fixed_position() {
        let lib = fast_library();
        let opts = options();
        let router = MazeRouter::new(lib, &opts);
        let a = side(0.0, 0.0, 0.0);
        let b = side(5000.0, 0.0, 0.0);
        let plan = router.route(&a, &b).unwrap();
        for (s, root) in plan.sides.iter().zip([a.root_point, b.root_point]) {
            let v = s.last_fixed_position(root);
            if s.buffers.is_empty() {
                assert_eq!(v, root);
            } else {
                assert_eq!(v, s.buffers.last().unwrap().position);
            }
        }
    }

    #[test]
    fn wirelength_is_conserved_by_commit() {
        let lib = fast_library();
        let opts = options();
        let router = MazeRouter::new(lib, &opts);
        let a = side(0.0, 0.0, 0.0);
        let b = side(4000.0, 300.0, 0.0);
        let plan = router.route(&a, &b).unwrap();
        for (s, root) in plan.sides.iter().zip([a.root_point, b.root_point]) {
            let path_len: f64 =
                s.buffers.iter().map(|bs| bs.wire_below_um).sum::<f64>() + s.top_wire_um;
            // The routed length can exceed the straight-line Manhattan
            // distance (detours) but never undershoot it (minus grid snap).
            let direct = root.manhattan_dist(plan.merge_point);
            assert!(
                path_len >= direct - 300.0,
                "path {path_len} µm vs direct {direct} µm"
            );
        }
    }
}
