//! Buffered clock tree synthesis under aggressive buffer insertion —
//! the paper's primary contribution (DAC 2010 / UIUC thesis, Y.-Y. Chen).
//!
//! Unlike prior buffered-CTS work that restricts buffers to merge nodes,
//! this flow inserts and sizes buffers **anywhere along routing paths**,
//! keeping every net's slew under a hard limit while preserving low skew
//! through accurate library-based timing and balanced routing:
//!
//! * [`Synthesizer`] — the top-level flow: levelized topology generation
//!   (nearest-neighbor matching, farthest-from-centroid greedy, odd-node
//!   seeding) driving merge-routing per level (§4.1);
//! * [`MergeRouting`] — the three-stage merge (§4.2): wire-snaking
//!   *balance*, bi-directional slew-aware *maze routing* with intelligent
//!   buffer sizing, and merge-point *binary search*;
//! * [`merge_with_correction`] — H-structure re-estimation/correction of
//!   intertwined pairings (§4.1.2);
//! * [`TimingEngine`] — top-down delay/slew propagation over the
//!   characterized library;
//! * [`verify_tree`] — SPICE verification of the synthesized netlist (the
//!   numbers the paper reports);
//! * [`BatchRunner`] — sharded multi-instance batching with SPICE
//!   verification overlapped against later instances' synthesis;
//! * [`SynthesisService`] — the long-running front end over the same
//!   stages: a bounded prioritized request queue, per-request result
//!   streams with cooperative cancellation, and graceful draining
//!   shutdown, so many clients share one process and one characterized
//!   library;
//! * [`VariationSummary`] — the Monte Carlo variation axis: evaluate each
//!   instance under N deterministically perturbed libraries and fold the
//!   corners into a yield-style skew/slew/latency distribution;
//! * [`baseline`] — unbuffered zero-skew DME and merge-node-only buffering
//!   for comparisons and ablations.
//!
//! See the crate-level example on [`Synthesizer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod baseline;
pub mod batch;
mod engine;
mod flow;
mod hcorrect;
mod instance;
pub mod maze;
mod merge;
mod options;
pub mod pareto;
pub mod pipeline;
pub mod service;
pub mod spatial;
pub mod sweep;
pub mod topology;
mod tree;
mod vanginneken;
pub mod variation;
pub mod verify;

pub use batch::{BatchItem, BatchOptions, BatchOutput, BatchRunner, BatchSummary, StagedSynthesis};
pub use engine::{TimingEngine, TimingReport};
pub use flow::{CtsResult, Synthesizer};
pub use hcorrect::{merge_with_correction, merge_with_correction_with, CorrectedMerge};
pub use instance::{Instance, Sink};
pub use merge::{MergeOutcome, MergeRouting, MergeScratch};
pub use options::{
    Buffering, CtsError, CtsOptions, CtsOptionsBuilder, HCorrection, OptionsError, Variation,
    VariationMode,
};
pub use pareto::{ParetoFront, ParetoPoint};
pub use pipeline::{LevelSnapshot, LevelStats, SynthesisContext, SynthesisPipeline};
pub use service::{
    BatchSubmitError, RequestHandle, RequestId, RequestStatus, ServiceError, ServiceMetrics,
    ServiceOptions, ServiceStats, SubmitError, SweepOutcome, SweepSubmitError, SweepTicket,
    SynthesisRequest, SynthesisResult, SynthesisService, Ticket,
};
pub use sweep::{pareto_point, SweepAxes, SweepError, SweepPoint, SweepPoints, SweepSpec};
pub use tree::{ClockTree, NodeKind, TreeNode, TreeNodeId, TreeStructureError};
pub use variation::{CornerRow, DistStats, VariationSummary};
pub use verify::{verify_tree, VerifiedTiming, Verifier, VerifyOptions, VerifyStats};
