//! H-structure corrections (paper §4.1.2, Fig. 4.2).
//!
//! When two sub-trees about to merge were themselves merges (each with two
//! children), the four grandchildren admit three pairings; the bottom-up
//! flow may have picked an intertwined one. Before committing the merge,
//! the corrector re-examines the pairings:
//!
//! * **Method 1 (re-estimation)** scores all three pairings with the cheap
//!   edge-cost estimate (delay difference) and re-pairs if a cheaper one
//!   exists.
//! * **Method 2 (correction)** actually merge-routes the alternative
//!   pairings on scratch copies of the tree, compares measured skews
//!   (`max(skew(nᵢ), skew(nⱼ))` per pairing), and keeps the best — the
//!   most expensive but best-performing option (Table 5.3).

use crate::engine::TimingEngine;
use crate::merge::{MergeRouting, MergeScratch};
use crate::options::{CtsError, CtsOptions, HCorrection};
use crate::tree::{ClockTree, NodeKind, TreeNodeId};
use cts_timing::DelaySlewLibrary;

/// Result of merging one matched pair, with correction bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrectedMerge {
    /// Root of the merged structure.
    pub root: TreeNodeId,
    /// Whether the original pairing was flipped (the paper's
    /// "# of flippings" column).
    pub flipped: bool,
    /// Engine-estimated skew of the committed merge (s) — the pipeline's
    /// per-level timing stage aggregates these.
    pub skew_estimate: f64,
    /// Engine-estimated latency of the committed merge (s).
    pub latency_estimate: f64,
}

/// Merges the pair `(a, b)`, applying the configured H-structure
/// correction when both nodes are merge joints with two children.
///
/// Convenience wrapper over [`merge_with_correction_with`] that allocates
/// fresh scratch.
///
/// # Errors
///
/// Propagates [`CtsError`] from merge-routing.
pub fn merge_with_correction(
    lib: &DelaySlewLibrary,
    options: &CtsOptions,
    tree: &mut ClockTree,
    a: TreeNodeId,
    b: TreeNodeId,
) -> Result<CorrectedMerge, CtsError> {
    merge_with_correction_with(lib, options, &mut MergeScratch::default(), tree, a, b)
}

/// [`merge_with_correction`] with caller-provided reusable scratch.
///
/// # Errors
///
/// Propagates [`CtsError`] from merge-routing.
pub fn merge_with_correction_with(
    lib: &DelaySlewLibrary,
    options: &CtsOptions,
    scratch: &mut MergeScratch,
    tree: &mut ClockTree,
    a: TreeNodeId,
    b: TreeNodeId,
) -> Result<CorrectedMerge, CtsError> {
    let mr = MergeRouting::new(lib, options);
    let (ja, jb) = (merge_joint_of(tree, a), merge_joint_of(tree, b));
    let correctable = options.h_correction != HCorrection::Off && ja.is_some() && jb.is_some();
    if !correctable {
        let out = mr.merge_pair_with(scratch, tree, a, b)?;
        return Ok(CorrectedMerge {
            root: out.merge_node,
            flipped: false,
            skew_estimate: out.skew_estimate,
            latency_estimate: out.latency_estimate,
        });
    }
    let (ja, jb) = (ja.expect("checked"), jb.expect("checked"));

    let (a1, a2) = children2(tree, ja);
    let (b1, b2) = children2(tree, jb);
    // The three pairings of Fig. 4.2: original and the two cross pairings.
    let pairings = [
        [(a1, a2), (b1, b2)],
        [(a1, b1), (a2, b2)],
        [(a1, b2), (a2, b1)],
    ];

    let choice = match options.h_correction {
        HCorrection::Off => unreachable!("handled above"),
        HCorrection::ReEstimate => {
            // Cheap estimate: delay-difference cost of each pairing.
            let delay = |n: TreeNodeId| mr.subtree_delay(tree, n);
            let (da1, da2, db1, db2) = (delay(a1), delay(a2), delay(b1), delay(b2));
            let d = [da1, da2, db1, db2];
            let idx = |n: TreeNodeId| -> usize {
                [a1, a2, b1, b2]
                    .iter()
                    .position(|&x| x == n)
                    .expect("child")
            };
            let score = |p: &[(TreeNodeId, TreeNodeId); 2]| -> f64 {
                p.iter().map(|&(x, y)| (d[idx(x)] - d[idx(y)]).abs()).sum()
            };
            (0..3).min_by(|&i, &j| {
                score(&pairings[i])
                    .partial_cmp(&score(&pairings[j]))
                    .unwrap()
                    .then(i.cmp(&j))
            })
        }
        HCorrection::Correct => {
            // Measured: merge-route each pairing on a scratch copy and
            // compare max skews. The original pairing is already routed;
            // its skews are measured in place.
            let engine = TimingEngine::new(lib);
            let measured_skew = |t: &ClockTree, n: TreeNodeId| {
                engine
                    .evaluate_subtree(t, n, options.virtual_driver, options.slew_target)
                    .skew()
            };
            let mut scores = [f64::INFINITY; 3];
            scores[0] = measured_skew(tree, a).max(measured_skew(tree, b));
            for (i, pairing) in pairings.iter().enumerate().skip(1) {
                let mut trial = tree.clone();
                trial.detach(a1);
                trial.detach(a2);
                trial.detach(b1);
                trial.detach(b2);
                let mut worst: f64 = 0.0;
                let mut failed = false;
                for &(x, y) in pairing {
                    match mr.merge_pair_with(scratch, &mut trial, x, y) {
                        Ok(out) => worst = worst.max(out.skew_estimate),
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                }
                if !failed {
                    scores[i] = worst;
                }
            }
            (0..3).min_by(|&i, &j| scores[i].partial_cmp(&scores[j]).unwrap().then(i.cmp(&j)))
        }
    }
    .expect("three pairings");

    if choice == 0 {
        // Keep the original pairing: merge a and b directly.
        let out = mr.merge_pair_with(scratch, tree, a, b)?;
        return Ok(CorrectedMerge {
            root: out.merge_node,
            flipped: false,
            skew_estimate: out.skew_estimate,
            latency_estimate: out.latency_estimate,
        });
    }

    // Flip: dissolve the two old merges and rebuild with the chosen pairs.
    tree.detach(a1);
    tree.detach(a2);
    tree.detach(b1);
    tree.detach(b2);
    let pairing = pairings[choice];
    let m1 = mr
        .merge_pair_with(scratch, tree, pairing[0].0, pairing[0].1)?
        .merge_node;
    let m2 = mr
        .merge_pair_with(scratch, tree, pairing[1].0, pairing[1].1)?
        .merge_node;
    let out = mr.merge_pair_with(scratch, tree, m1, m2)?;
    Ok(CorrectedMerge {
        root: out.merge_node,
        flipped: true,
        skew_estimate: out.skew_estimate,
        latency_estimate: out.latency_estimate,
    })
}

/// Resolves a sub-tree root to its merge joint, looking through a
/// crowning buffer (the merge-capping rule often places one directly at
/// the merge point): returns the two-child joint whose pairing can be
/// revisited, if any.
fn merge_joint_of(tree: &ClockTree, n: TreeNodeId) -> Option<TreeNodeId> {
    match tree.node(n).kind {
        NodeKind::Joint if tree.node(n).children.len() == 2 => Some(n),
        NodeKind::Buffer { .. } if tree.node(n).children.len() == 1 => {
            let child = tree.node(n).children[0];
            (matches!(tree.node(child).kind, NodeKind::Joint)
                && tree.node(child).children.len() == 2)
                .then_some(child)
        }
        _ => None,
    }
}

fn children2(tree: &ClockTree, n: TreeNodeId) -> (TreeNodeId, TreeNodeId) {
    let c = &tree.node(n).children;
    (c[0], c[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Sink;
    use crate::merge::MergeRouting;
    use cts_geom::Point;
    use cts_timing::fast_library;

    /// Builds the intertwined four-sink configuration of Fig. 2.2: two
    /// existing merges that pair far-apart sinks, so correction should flip.
    fn intertwined_forest() -> (ClockTree, TreeNodeId, TreeNodeId) {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let mr = MergeRouting::new(lib, &opts);
        let mut t = ClockTree::new();
        // Sinks at the corners of a wide rectangle.
        let s = [
            t.add_sink(0, &Sink::new("a", Point::new(0.0, 0.0), 20e-15)),
            t.add_sink(1, &Sink::new("b", Point::new(3000.0, 0.0), 20e-15)),
            t.add_sink(2, &Sink::new("c", Point::new(0.0, 300.0), 20e-15)),
            t.add_sink(3, &Sink::new("d", Point::new(3000.0, 300.0), 20e-15)),
        ];
        // Deliberately bad pairing: diagonal merges (a with d, b with c).
        let m1 = mr.merge_pair(&mut t, s[0], s[3]).unwrap().merge_node;
        let m2 = mr.merge_pair(&mut t, s[1], s[2]).unwrap().merge_node;
        (t, m1, m2)
    }

    #[test]
    fn off_mode_never_flips() {
        let lib = fast_library();
        let opts = CtsOptions::default();
        let (mut t, m1, m2) = intertwined_forest();
        let out = merge_with_correction(lib, &opts, &mut t, m1, m2).unwrap();
        assert!(!out.flipped);
        t.validate_under(out.root);
        assert_eq!(t.sinks_under(out.root).len(), 4);
    }

    #[test]
    fn correction_flips_intertwined_pairs() {
        let lib = fast_library();
        let mut opts = CtsOptions::default();
        opts.h_correction = HCorrection::Correct;
        let (mut t, m1, m2) = intertwined_forest();
        let out = merge_with_correction(lib, &opts, &mut t, m1, m2).unwrap();
        // All four sinks must still be reachable regardless of flipping.
        assert_eq!(t.sinks_under(out.root).len(), 4);
        t.validate_under(out.root);
    }

    #[test]
    fn reestimate_runs_and_preserves_sinks() {
        let lib = fast_library();
        let mut opts = CtsOptions::default();
        opts.h_correction = HCorrection::ReEstimate;
        let (mut t, m1, m2) = intertwined_forest();
        let out = merge_with_correction(lib, &opts, &mut t, m1, m2).unwrap();
        assert_eq!(t.sinks_under(out.root).len(), 4);
        t.validate_under(out.root);
    }

    #[test]
    fn non_joint_pairs_skip_correction() {
        let lib = fast_library();
        let mut opts = CtsOptions::default();
        opts.h_correction = HCorrection::Correct;
        let mut t = ClockTree::new();
        let s0 = t.add_sink(0, &Sink::new("a", Point::new(0.0, 0.0), 20e-15));
        let s1 = t.add_sink(1, &Sink::new("b", Point::new(500.0, 0.0), 20e-15));
        let out = merge_with_correction(lib, &opts, &mut t, s0, s1).unwrap();
        assert!(!out.flipped, "sink pairs have no grandchildren to flip");
        assert_eq!(t.sinks_under(out.root).len(), 2);
    }
}
