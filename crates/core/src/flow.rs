//! The top-level synthesis flow (paper §4.1, Fig. 4.1): levelized topology
//! generation driving merge-routing until a single tree remains.

use crate::engine::{TimingEngine, TimingReport};
use crate::hcorrect::merge_with_correction;
use crate::instance::Instance;
use crate::options::{CtsError, CtsOptions};
use crate::topology::{find_matching, MatchCandidate};
use crate::tree::{ClockTree, TreeNodeId};
use cts_timing::{BufferId, DelaySlewLibrary};

/// A synthesized clock tree with engine-estimated quality metrics.
///
/// The estimates come from the delay library; for paper-grade numbers run
/// [`crate::verify::verify_tree`] on the result, which simulates the actual
/// netlist.
#[derive(Debug, Clone)]
pub struct CtsResult {
    /// The tree (single-rooted, crowned with a source node).
    pub tree: ClockTree,
    /// The source node.
    pub source: TreeNodeId,
    /// Engine-estimated timing of the finished tree.
    pub report: TimingReport,
    /// Topology levels built.
    pub levels: usize,
    /// Total buffers inserted.
    pub buffers: usize,
    /// Total routed wirelength (µm).
    pub wirelength_um: f64,
    /// H-structure pairings flipped (0 when correction is off).
    pub flippings: usize,
}

/// The buffered clock tree synthesizer.
///
/// ```no_run
/// use cts_core::{CtsOptions, Instance, Sink, Synthesizer};
/// use cts_geom::Point;
/// use cts_timing::fast_library;
///
/// let sinks = (0..8)
///     .map(|i| Sink::new(format!("ff{i}"), Point::new(500.0 * i as f64, 0.0), 30e-15))
///     .collect();
/// let instance = Instance::new("demo", sinks);
/// let synth = Synthesizer::new(fast_library(), CtsOptions::default());
/// let result = synth.synthesize(&instance)?;
/// assert!(result.report.skew() < result.report.latency);
/// # Ok::<(), cts_core::CtsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer<'a> {
    lib: &'a DelaySlewLibrary,
    options: CtsOptions,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer over a delay library with the given options.
    pub fn new(lib: &'a DelaySlewLibrary, options: CtsOptions) -> Synthesizer<'a> {
        Synthesizer { lib, options }
    }

    /// The options in effect.
    pub fn options(&self) -> &CtsOptions {
        &self.options
    }

    /// Synthesizes a buffered clock tree for `instance`.
    ///
    /// # Errors
    ///
    /// [`CtsError::BadOptions`] for invalid options,
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target.
    pub fn synthesize(&self, instance: &Instance) -> Result<CtsResult, CtsError> {
        self.options.validate()?;
        let engine = TimingEngine::new(self.lib);
        let mut tree = ClockTree::new();

        // Level 0: the sinks.
        let mut active: Vec<TreeNodeId> = instance
            .sinks()
            .iter()
            .enumerate()
            .map(|(i, s)| tree.add_sink(i, s))
            .collect();
        let centroid = instance.sink_centroid();

        let mut levels = 0;
        let mut flippings = 0;
        while active.len() > 1 {
            levels += 1;
            let candidates: Vec<MatchCandidate> = active
                .iter()
                .map(|&root| MatchCandidate {
                    location: tree.node(root).location,
                    delay: engine
                        .evaluate_subtree(
                            &tree,
                            root,
                            self.options.virtual_driver,
                            self.options.slew_target,
                        )
                        .latency,
                })
                .collect();
            let matching = find_matching(
                &candidates,
                centroid,
                self.options.cost_alpha,
                self.options.cost_beta,
            );

            let mut next: Vec<TreeNodeId> = Vec::with_capacity(active.len() / 2 + 1);
            if let Some(seed) = matching.seed {
                next.push(active[seed]);
            }
            for &(i, j) in &matching.pairs {
                let merged =
                    merge_with_correction(self.lib, &self.options, &mut tree, active[i], active[j])?;
                if merged.flipped {
                    flippings += 1;
                }
                next.push(merged.root);
            }
            active = next;
        }

        let top = active[0];
        let source_driver = self.strongest_buffer();
        let source = tree.add_source(top, source_driver);

        // Global refinement: per-merge balancing cannot anticipate the
        // stems and drivers that upper levels later place above each merge,
        // which re-opens small skew gaps. Greedy buffer re-typing along the
        // extreme sinks' root paths, judged on the full-tree evaluation,
        // closes most of it.
        self.refine_global(&mut tree, source, &engine);
        let report = engine.evaluate(&tree, source, self.options.source_slew);

        tree.validate_under(source);
        let buffers = tree.buffer_count_under(source);
        let wirelength_um = tree.wirelength_under(source);

        Ok(CtsResult {
            tree,
            source,
            report,
            levels,
            buffers,
            wirelength_um,
            flippings,
        })
    }

    /// Global skew refinement on the finished tree.
    ///
    /// Per-merge balancing runs before the upper levels exist; the stems
    /// and drivers those levels later place above each merge shift its
    /// balance point. Two complementary passes repair this *in context*:
    ///
    /// 1. **Joint re-balancing sweeps** — for every two-child joint, re-run
    ///    the wire redistribution of §4.2.3 against an evaluation rooted at
    ///    the joint's true stage driver with its true input slew
    ///    (redistribution keeps the total wire constant, so nothing above
    ///    the driver changes). Fine-grained (sub-ps) control.
    /// 2. **Buffer re-typing** along the extreme sinks' root paths, judged
    ///    on the full-tree evaluation — the coarse lever for residuals the
    ///    wire can't reach.
    fn refine_global(&self, tree: &mut ClockTree, source: TreeNodeId, engine: &TimingEngine<'_>) {
        // Stage assumptions require every input slew to stay at/under the
        // synthesis target.
        let slew_gate = self.options.slew_target * 1.01;
        let mr = crate::merge::MergeRouting::new(self.lib, &self.options);
        let arm_budget = mr.arm_budget_um();

        for _round in 0..3 {
            let (rep, slews) =
                engine.evaluate_annotated(tree, source, self.options.source_slew);
            if rep.skew() < 2.0e-12 || rep.sink_arrivals.len() < 2 {
                return;
            }

            // --- pass 1: per-joint wire re-balancing in true context -----
            for joint in tree.ids().collect::<Vec<_>>() {
                if !matches!(tree.node(joint).kind, crate::tree::NodeKind::Joint)
                    || tree.node(joint).children.len() != 2
                {
                    continue;
                }
                // The joint's stage driver: nearest ancestor buffer/source.
                let mut drv = tree.node(joint).parent;
                while let Some(d) = drv {
                    if matches!(
                        tree.node(d).kind,
                        crate::tree::NodeKind::Buffer { .. } | crate::tree::NodeKind::Source { .. }
                    ) {
                        break;
                    }
                    drv = tree.node(d).parent;
                }
                let Some(driver_node) = drv else { continue };
                let Some(&driver_slew) = slews.get(&driver_node) else {
                    continue;
                };
                let kids = [tree.node(joint).children[0], tree.node(joint).children[1]];
                let total =
                    tree.node(kids[0]).wire_to_parent_um + tree.node(kids[1]).wire_to_parent_um;
                if total < 4.0 {
                    continue;
                }
                let caps = [
                    (arm_budget - mr.effective_pending_um(tree, kids[0])).max(1.0),
                    (arm_budget - mr.effective_pending_um(tree, kids[1])).max(1.0),
                ];
                let r_lo = ((total - caps[1]) / total).clamp(0.0, 1.0);
                let r_hi = (caps[0] / total).clamp(0.0, 1.0);
                if r_lo >= r_hi {
                    continue;
                }
                let side_sinks = [tree.sinks_under(kids[0]), tree.sinks_under(kids[1])];
                let diff_at = |tree: &mut ClockTree, r: f64| -> f64 {
                    tree.set_wire_to_parent(kids[0], r * total);
                    tree.set_wire_to_parent(kids[1], (1.0 - r) * total);
                    let local = engine.evaluate_subtree(
                        tree,
                        driver_node,
                        self.options.virtual_driver,
                        driver_slew,
                    );
                    let arr = local.arrival_map();
                    let m = |ids: &[TreeNodeId]| {
                        ids.iter().map(|i| arr[i]).fold(f64::NEG_INFINITY, f64::max)
                    };
                    m(&side_sinks[0]) - m(&side_sinks[1])
                };
                let r_now = tree.node(kids[0]).wire_to_parent_um / total;
                let d_now = diff_at(tree, r_now);
                let (mut lo, mut hi) = (r_lo, r_hi);
                let (d_lo, d_hi) = (diff_at(tree, lo), diff_at(tree, hi));
                let r_best = if d_lo >= 0.0 {
                    lo
                } else if d_hi <= 0.0 {
                    hi
                } else {
                    for _ in 0..20 {
                        let mid = 0.5 * (lo + hi);
                        if diff_at(tree, mid) < 0.0 {
                            lo = mid;
                        } else {
                            hi = mid;
                        }
                    }
                    0.5 * (lo + hi)
                };
                // Keep the better of current vs rebalanced.
                if diff_at(tree, r_best).abs() >= d_now.abs() {
                    let _ = diff_at(tree, r_now);
                }
            }

            // --- pass 2: buffer re-typing on the extreme paths ------------
            let path_buffers = |tree: &ClockTree, from: TreeNodeId| -> Vec<TreeNodeId> {
                let mut out = Vec::new();
                let mut at = Some(from);
                while let Some(id) = at {
                    if matches!(tree.node(id).kind, crate::tree::NodeKind::Buffer { .. }) {
                        out.push(id);
                    }
                    at = tree.node(id).parent;
                }
                out
            };
            for _iter in 0..24 {
                let rep = engine.evaluate(tree, source, self.options.source_slew);
                let skew = rep.skew();
                if skew < 2.0e-12 {
                    break;
                }
                let fastest = rep
                    .sink_arrivals
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("sinks present")
                    .0;
                let slowest = rep
                    .sink_arrivals
                    .iter()
                    .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .expect("sinks present")
                    .0;
                let mut candidates = path_buffers(tree, fastest);
                candidates.extend(path_buffers(tree, slowest));
                candidates.sort_unstable();
                candidates.dedup();

                let mut best: Option<(f64, TreeNodeId, BufferId)> = None;
                for &cand in &candidates {
                    let original = match tree.node(cand).kind {
                        crate::tree::NodeKind::Buffer { buffer } => buffer,
                        _ => unreachable!("candidates are buffers"),
                    };
                    for alt in self.lib.buffer_ids() {
                        if alt == original {
                            continue;
                        }
                        tree.set_buffer_type(cand, alt);
                        let trial = engine.evaluate(tree, source, self.options.source_slew);
                        if trial.worst_slew <= slew_gate
                            && trial.skew() + 0.3e-12 < best.map_or(skew, |(s, _, _)| s)
                        {
                            best = Some((trial.skew(), cand, alt));
                        }
                        tree.set_buffer_type(cand, original);
                    }
                }
                match best {
                    Some((_, node, alt)) => tree.set_buffer_type(node, alt),
                    None => break,
                }
            }
        }
    }

    fn strongest_buffer(&self) -> BufferId {
        self.lib
            .buffer_ids()
            .max_by(|&a, &b| {
                self.lib
                    .buffer(a)
                    .size()
                    .partial_cmp(&self.lib.buffer(b).size())
                    .unwrap()
            })
            .expect("non-empty buffer library")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Sink;
    use crate::options::HCorrection;
    use cts_geom::Point;
    use cts_spice::units::PS;
    use cts_timing::fast_library;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_instance(nx: usize, ny: usize, pitch: f64) -> Instance {
        let mut sinks = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                sinks.push(Sink::new(
                    format!("s{i}_{j}"),
                    Point::new(i as f64 * pitch, j as f64 * pitch),
                    25e-15,
                ));
            }
        }
        Instance::new("grid", sinks)
    }

    fn random_instance(n: usize, w: f64, h: f64, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let sinks = (0..n)
            .map(|i| {
                Sink::new(
                    format!("s{i}"),
                    Point::new(rng.gen_range(0.0..w), rng.gen_range(0.0..h)),
                    rng.gen_range(10e-15..40e-15),
                )
            })
            .collect();
        Instance::new("rand", sinks)
    }

    #[test]
    fn synthesizes_a_grid() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = grid_instance(4, 4, 700.0);
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.tree.sinks_under(r.source).len(), 16);
        assert!(r.levels >= 4, "16 sinks need >= 4 levels, got {}", r.levels);
        assert!(
            r.report.worst_slew <= synth.options().slew_limit * 1.1,
            "slew {} ps",
            r.report.worst_slew / PS
        );
        assert!(
            r.report.skew() < 0.10 * r.report.latency.max(50.0 * PS),
            "skew {} ps vs latency {} ps",
            r.report.skew() / PS,
            r.report.latency / PS
        );
    }

    #[test]
    fn synthesizes_random_instances() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        for seed in 0..3u64 {
            let inst = random_instance(13, 4000.0, 3000.0, seed);
            let r = synth.synthesize(&inst).unwrap();
            assert_eq!(r.tree.sinks_under(r.source).len(), 13);
            assert!(r.report.latency > 0.0);
            assert!(r.wirelength_um > 0.0);
        }
    }

    #[test]
    fn single_sink_instance() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = Instance::new(
            "one",
            vec![Sink::new("only", Point::new(10.0, 10.0), 20e-15)],
        );
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.levels, 0);
        assert_eq!(r.tree.sinks_under(r.source).len(), 1);
        assert_eq!(r.report.skew(), 0.0);
    }

    #[test]
    fn coincident_sinks_are_handled() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let p = Point::new(100.0, 100.0);
        let inst = Instance::new(
            "stack",
            (0..4)
                .map(|i| Sink::new(format!("s{i}"), p, 20e-15))
                .collect(),
        );
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.tree.sinks_under(r.source).len(), 4);
    }

    #[test]
    fn large_spread_inserts_buffers() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = grid_instance(2, 2, 4000.0);
        let r = synth.synthesize(&inst).unwrap();
        assert!(r.buffers > 0, "8 mm spans require along-path buffers");
    }

    #[test]
    fn hcorrection_modes_produce_valid_trees() {
        for mode in [HCorrection::Off, HCorrection::ReEstimate, HCorrection::Correct] {
            let mut opts = CtsOptions::default();
            opts.h_correction = mode;
            let synth = Synthesizer::new(fast_library(), opts);
            let inst = random_instance(10, 3000.0, 3000.0, 7);
            let r = synth.synthesize(&inst).unwrap();
            assert_eq!(
                r.tree.sinks_under(r.source).len(),
                10,
                "mode {mode}: sink lost"
            );
            if mode == HCorrection::Off {
                assert_eq!(r.flippings, 0);
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_tree() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = random_instance(9, 2500.0, 2500.0, 42);
        let a = synth.synthesize(&inst).unwrap();
        let b = synth.synthesize(&inst).unwrap();
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.report.latency, b.report.latency);
    }

    #[test]
    fn bad_options_rejected() {
        let mut opts = CtsOptions::default();
        opts.slew_target = 0.0;
        let synth = Synthesizer::new(fast_library(), opts);
        let inst = grid_instance(2, 2, 100.0);
        assert!(matches!(
            synth.synthesize(&inst),
            Err(CtsError::BadOptions(_))
        ));
    }
}
