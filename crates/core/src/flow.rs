//! The top-level synthesis flow (paper §4.1, Fig. 4.1): levelized topology
//! generation driving merge-routing until a single tree remains.
//!
//! The heavy lifting lives in [`crate::pipeline::SynthesisPipeline`];
//! [`Synthesizer`] is the stable public entry point around it. The flow is
//! split into two explicitly separate stages — [`Synthesizer::synthesize`]
//! (library-estimated tree construction) and [`Synthesizer::verify`]
//! (SPICE simulation of the finished netlist) — so callers that process
//! many instances can overlap one instance's verification with the next
//! instance's synthesis (see [`crate::batch::BatchRunner`]).

use crate::engine::{TimingEngine, TimingReport};
use crate::instance::Instance;
use crate::merge::MergeScratch;
use crate::options::{CtsError, CtsOptions};
use crate::pipeline::{LevelStats, SynthesisPipeline};
use crate::tree::{ClockTree, NodeKind, TreeNodeId};
use crate::verify::{verify_tree, VerifiedTiming, Verifier, VerifyOptions};
use cts_spice::Technology;
use cts_timing::DelaySlewLibrary;
use std::sync::Arc;

/// A synthesized clock tree with engine-estimated quality metrics.
///
/// The estimates come from the delay library; for paper-grade numbers run
/// [`crate::verify::verify_tree`] on the result, which simulates the actual
/// netlist.
#[derive(Debug, Clone)]
pub struct CtsResult {
    /// The tree (single-rooted, crowned with a source node).
    pub tree: ClockTree,
    /// The source node.
    pub source: TreeNodeId,
    /// Engine-estimated timing of the finished tree.
    pub report: TimingReport,
    /// Topology levels built.
    pub levels: usize,
    /// Total buffers inserted.
    pub buffers: usize,
    /// Total routed wirelength (µm).
    pub wirelength_um: f64,
    /// H-structure pairings flipped (0 when correction is off).
    pub flippings: usize,
    /// Total input capacitance of inserted buffers (F), under the same
    /// cap-matching convention the timing engine uses. The buffer-area
    /// objective of sweep Pareto fronts; `0.0` for unbuffered trees.
    pub buffer_cap_f: f64,
    /// Per-level statistics from the pipeline's level-timing stage.
    pub level_stats: Vec<LevelStats>,
    /// Wall-clock seconds spent in topology matching (candidate timing +
    /// pairing), summed over levels. Telemetry only — it feeds the
    /// service's per-stage sinks/second metrics and never affects results.
    pub topology_seconds: f64,
    /// Wall-clock seconds spent merge-routing and refining. Telemetry only.
    pub merge_seconds: f64,
}

/// The buffered clock tree synthesizer.
///
/// ```no_run
/// use cts_core::{CtsOptions, Instance, Sink, Synthesizer};
/// use cts_geom::Point;
/// use cts_timing::fast_library;
///
/// let sinks = (0..8)
///     .map(|i| Sink::new(format!("ff{i}"), Point::new(500.0 * i as f64, 0.0), 30e-15))
///     .collect();
/// let instance = Instance::new("demo", sinks);
/// let synth = Synthesizer::new(fast_library(), CtsOptions::default());
/// let result = synth.synthesize(&instance)?;
/// assert!(result.report.skew() < result.report.latency);
/// # Ok::<(), cts_core::CtsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer<'a> {
    lib: &'a DelaySlewLibrary,
    /// Owned restriction of `lib` when `options.library_subset` names a
    /// strict prefix of its buffer types; `None` means `lib` itself.
    subset: Option<Arc<DelaySlewLibrary>>,
    options: CtsOptions,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer over a delay library with the given options.
    ///
    /// When `options.library_subset` names a strict prefix of the
    /// library's buffer types, the restricted library is derived once
    /// here and shared by every synthesis this instance runs. An
    /// out-of-range subset is reported by the first `synthesize` call
    /// (as [`CtsError::BadOptions`]), not here, so construction stays
    /// infallible.
    pub fn new(lib: &'a DelaySlewLibrary, options: CtsOptions) -> Synthesizer<'a> {
        let subset = match options.library_subset {
            0 => None,
            k if k >= lib.buffers().len() => None,
            k => lib.subset(k).map(Arc::new),
        };
        Synthesizer {
            lib,
            subset,
            options,
        }
    }

    /// The options in effect.
    pub fn options(&self) -> &CtsOptions {
        &self.options
    }

    /// The delay library synthesis actually queries: the restricted
    /// subset when `options.library_subset` is active, otherwise the
    /// base library (also the base of the variation axis).
    pub(crate) fn library(&self) -> &DelaySlewLibrary {
        self.subset.as_deref().unwrap_or(self.lib)
    }

    /// A synthesizer over the same library with different options — the
    /// hook that lets a long-running service honor per-request option
    /// overrides without re-characterizing anything (the expensive state
    /// is the library, which is shared by reference; only a restricted
    /// subset, when requested, is derived per configuration).
    pub fn with_options(&self, options: CtsOptions) -> Synthesizer<'a> {
        Synthesizer::new(self.lib, options)
    }

    /// Rejects options the base library cannot satisfy: a subset wider
    /// than the library, or a virtual driver outside the (possibly
    /// restricted) library.
    fn check_library_bounds(&self) -> Result<(), CtsError> {
        let nb = self.lib.buffers().len();
        let k = self.options.library_subset;
        if k > nb {
            return Err(CtsError::BadOptions(format!(
                "library_subset ({k}) exceeds the library's {nb} buffer types"
            )));
        }
        let usable = if k == 0 { nb } else { k };
        if self.options.virtual_driver.0 >= usable {
            return Err(CtsError::BadOptions(format!(
                "virtual_driver ({}) is outside the usable library of {} buffer types",
                self.options.virtual_driver.0, usable
            )));
        }
        Ok(())
    }

    /// Synthesizes a buffered clock tree for `instance`.
    ///
    /// Runs the staged [`SynthesisPipeline`]: per-level topology matching,
    /// parallel per-pair merge-routing (`options.threads` workers; the
    /// result is bit-identical for every worker count), deterministic
    /// grafting, and global refinement.
    ///
    /// The result carries *engine-estimated* timing; the SPICE numbers the
    /// paper reports come from the separate [`Synthesizer::verify`] stage.
    /// `synthesize` is a synonym of [`Synthesizer::synthesize_unverified`],
    /// kept as the short name for the common entry point.
    ///
    /// # Errors
    ///
    /// [`CtsError::BadOptions`] for invalid options,
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target.
    pub fn synthesize(&self, instance: &Instance) -> Result<CtsResult, CtsError> {
        self.synthesize_unverified(instance)
    }

    /// The synthesis stage alone: builds the tree and reports
    /// library-estimated timing, without touching the SPICE simulator.
    ///
    /// # Errors
    ///
    /// [`CtsError::BadOptions`] for invalid options,
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target.
    pub fn synthesize_unverified(&self, instance: &Instance) -> Result<CtsResult, CtsError> {
        self.synthesize_unverified_with(instance, &mut MergeScratch::new())
    }

    /// [`Synthesizer::synthesize_unverified`] with caller-provided merge
    /// scratch, so repeated synthesis calls (a batch shard's instance
    /// stream) reuse the maze router's allocations and caches. The scratch
    /// never affects results.
    ///
    /// # Errors
    ///
    /// [`CtsError::BadOptions`] for invalid options,
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target.
    pub fn synthesize_unverified_with(
        &self,
        instance: &Instance,
        scratch: &mut MergeScratch,
    ) -> Result<CtsResult, CtsError> {
        self.synthesize_impl(instance, scratch, None)
    }

    /// [`Synthesizer::synthesize_unverified_with`] plus a level observer:
    /// `on_level` receives a [`crate::LevelSnapshot`] copy of the growing
    /// arena after each level's grafts land, so a streaming front end can
    /// publish level-complete subtrees mid-synthesis. The observer is
    /// telemetry-only — the produced tree is bit-identical to an
    /// unobserved run.
    ///
    /// # Errors
    ///
    /// As for [`Synthesizer::synthesize_unverified_with`].
    pub fn synthesize_unverified_observed(
        &self,
        instance: &Instance,
        scratch: &mut MergeScratch,
        on_level: &mut dyn FnMut(crate::pipeline::LevelSnapshot),
    ) -> Result<CtsResult, CtsError> {
        self.synthesize_impl(instance, scratch, Some(on_level))
    }

    fn synthesize_impl(
        &self,
        instance: &Instance,
        scratch: &mut MergeScratch,
        on_level: Option<&mut dyn FnMut(crate::pipeline::LevelSnapshot)>,
    ) -> Result<CtsResult, CtsError> {
        self.check_library_bounds()?;
        // A reused scratch may hold caches from a *different* options
        // context (a service worker's previous request): drop them, or
        // results would depend on scratch history.
        scratch.invalidate_context();
        let lib = self.library();
        let pipeline = SynthesisPipeline::new(lib, &self.options)?;
        let out = match on_level {
            None => pipeline.run_with(instance, scratch)?,
            Some(observer) => pipeline.run_observed(instance, scratch, observer)?,
        };

        let engine = TimingEngine::new(lib);
        let report = engine.evaluate(&out.tree, out.source, self.options.source_slew);
        let buffers = out.tree.buffer_count_under(out.source);
        let wirelength_um = out.tree.wirelength_under(out.source);
        let buffer_cap_f = buffer_cap_under(&out.tree, out.source, lib);

        Ok(CtsResult {
            tree: out.tree,
            source: out.source,
            report,
            levels: out.levels,
            buffers,
            wirelength_um,
            flippings: out.flippings,
            buffer_cap_f,
            level_stats: out.level_stats,
            topology_seconds: out.topology_seconds,
            merge_seconds: out.merge_seconds,
        })
    }

    /// The verification stage: SPICE-simulates a synthesized tree and
    /// measures the paper's reported numbers (worst slew, skew, max
    /// latency). Separately invokable from synthesis so batch drivers can
    /// overlap the two stages across instances.
    ///
    /// # Errors
    ///
    /// [`CtsError::Verify`] if any stage fails to simulate or a node never
    /// completes its transition.
    pub fn verify(
        &self,
        result: &CtsResult,
        tech: &Technology,
        opts: &VerifyOptions,
    ) -> Result<VerifiedTiming, CtsError> {
        verify_tree(&result.tree, result.source, tech, opts)
    }

    /// [`Synthesizer::verify`] through a caller-provided [`Verifier`], so
    /// repeated verification (a batch shard's instance stream, a service
    /// worker's lifetime) reuses solve plans across stages and replays
    /// unchanged stages outright. The verifier never affects results —
    /// warm and cold verification are bit-identical.
    ///
    /// # Errors
    ///
    /// As for [`Synthesizer::verify`].
    pub fn verify_with(
        &self,
        result: &CtsResult,
        tech: &Technology,
        opts: &VerifyOptions,
        verifier: &mut Verifier,
    ) -> Result<VerifiedTiming, CtsError> {
        verifier.verify(&result.tree, result.source, tech, opts)
    }
}

/// Sums the input capacitance of every buffer under `root`, using the
/// engine's cap-matching convention (`stage1_size × cg_1x`). Traversal
/// order is deterministic (preorder, right child first), so the sum is
/// bit-identical across runs of the same tree.
fn buffer_cap_under(tree: &ClockTree, root: TreeNodeId, lib: &DelaySlewLibrary) -> f64 {
    let mut total = 0.0;
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        let node = tree.node(id);
        if let NodeKind::Buffer { buffer } = node.kind {
            total += lib.buffer(buffer).stage1_size() * 1.2e-15;
        }
        stack.extend(node.children.iter().copied());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Sink;
    use crate::options::HCorrection;
    use cts_geom::Point;
    use cts_spice::units::PS;
    use cts_timing::fast_library;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_instance(nx: usize, ny: usize, pitch: f64) -> Instance {
        let mut sinks = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                sinks.push(Sink::new(
                    format!("s{i}_{j}"),
                    Point::new(i as f64 * pitch, j as f64 * pitch),
                    25e-15,
                ));
            }
        }
        Instance::new("grid", sinks)
    }

    fn random_instance(n: usize, w: f64, h: f64, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let sinks = (0..n)
            .map(|i| {
                Sink::new(
                    format!("s{i}"),
                    Point::new(rng.gen_range(0.0..w), rng.gen_range(0.0..h)),
                    rng.gen_range(10e-15..40e-15),
                )
            })
            .collect();
        Instance::new("rand", sinks)
    }

    #[test]
    fn synthesizes_a_grid() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = grid_instance(4, 4, 700.0);
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.tree.sinks_under(r.source).len(), 16);
        assert!(r.levels >= 4, "16 sinks need >= 4 levels, got {}", r.levels);
        assert!(
            r.report.worst_slew <= synth.options().slew_limit * 1.1,
            "slew {} ps",
            r.report.worst_slew / PS
        );
        assert!(
            r.report.skew() < 0.10 * r.report.latency.max(50.0 * PS),
            "skew {} ps vs latency {} ps",
            r.report.skew() / PS,
            r.report.latency / PS
        );
    }

    #[test]
    fn synthesizes_random_instances() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        for seed in 0..3u64 {
            let inst = random_instance(13, 4000.0, 3000.0, seed);
            let r = synth.synthesize(&inst).unwrap();
            assert_eq!(r.tree.sinks_under(r.source).len(), 13);
            assert!(r.report.latency > 0.0);
            assert!(r.wirelength_um > 0.0);
        }
    }

    #[test]
    fn single_sink_instance() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = Instance::new(
            "one",
            vec![Sink::new("only", Point::new(10.0, 10.0), 20e-15)],
        );
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.levels, 0);
        assert_eq!(r.tree.sinks_under(r.source).len(), 1);
        assert_eq!(r.report.skew(), 0.0);
    }

    #[test]
    fn coincident_sinks_are_handled() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let p = Point::new(100.0, 100.0);
        let inst = Instance::new(
            "stack",
            (0..4)
                .map(|i| Sink::new(format!("s{i}"), p, 20e-15))
                .collect(),
        );
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.tree.sinks_under(r.source).len(), 4);
    }

    #[test]
    fn large_spread_inserts_buffers() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = grid_instance(2, 2, 4000.0);
        let r = synth.synthesize(&inst).unwrap();
        assert!(r.buffers > 0, "8 mm spans require along-path buffers");
    }

    #[test]
    fn hcorrection_modes_produce_valid_trees() {
        for mode in [
            HCorrection::Off,
            HCorrection::ReEstimate,
            HCorrection::Correct,
        ] {
            let opts = CtsOptions::builder().h_correction(mode).build().unwrap();
            let synth = Synthesizer::new(fast_library(), opts);
            let inst = random_instance(10, 3000.0, 3000.0, 7);
            let r = synth.synthesize(&inst).unwrap();
            assert_eq!(
                r.tree.sinks_under(r.source).len(),
                10,
                "mode {mode}: sink lost"
            );
            if mode == HCorrection::Off {
                assert_eq!(r.flippings, 0);
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_tree() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = random_instance(9, 2500.0, 2500.0, 42);
        let a = synth.synthesize(&inst).unwrap();
        let b = synth.synthesize(&inst).unwrap();
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.report.latency, b.report.latency);
    }

    #[test]
    fn warm_scratch_does_not_change_results() {
        // A batch shard drives many instances through one scratch; the
        // trees must match what fresh-scratch calls produce, bit for bit.
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let mut scratch = crate::merge::MergeScratch::new();
        for seed in 0..3u64 {
            let inst = random_instance(8, 3000.0, 2000.0, seed);
            let warm = synth
                .synthesize_unverified_with(&inst, &mut scratch)
                .unwrap();
            let cold = synth.synthesize(&inst).unwrap();
            assert_eq!(warm.tree, cold.tree);
            assert_eq!(warm.report, cold.report);
            assert_eq!(warm.level_stats, cold.level_stats);
        }
    }

    #[test]
    fn split_stages_match_fused_flow() {
        use crate::verify::VerifyOptions;
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = random_instance(5, 1500.0, 1500.0, 3);
        let r = synth.synthesize_unverified(&inst).unwrap();
        let tech = cts_spice::Technology::nominal_45nm();
        let v = synth.verify(&r, &tech, &VerifyOptions::default()).unwrap();
        let direct =
            crate::verify::verify_tree(&r.tree, r.source, &tech, &VerifyOptions::default())
                .unwrap();
        assert_eq!(v.worst_slew, direct.worst_slew);
        assert_eq!(v.skew, direct.skew);
        assert_eq!(v.sink_arrivals, direct.sink_arrivals);
    }

    #[test]
    fn buffer_cap_tracks_inserted_buffers() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let r = synth.synthesize(&grid_instance(2, 2, 4000.0)).unwrap();
        assert!(r.buffers > 0);
        assert!(r.buffer_cap_f > 0.0);
        // Unbuffered trees carry zero buffer cap.
        let small = synth.synthesize(&grid_instance(2, 2, 100.0)).unwrap();
        if small.buffers == 0 {
            assert_eq!(small.buffer_cap_f, 0.0);
        }
        // The sum matches a direct walk at the matching convention.
        let mut direct = 0.0;
        let mut stack = vec![r.source];
        while let Some(id) = stack.pop() {
            let node = r.tree.node(id);
            if let crate::tree::NodeKind::Buffer { buffer } = node.kind {
                direct += fast_library().buffer(buffer).stage1_size() * 1.2e-15;
            }
            stack.extend(node.children.iter().copied());
        }
        assert_eq!(r.buffer_cap_f, direct);
    }

    #[test]
    fn library_subset_restricts_and_validates() {
        use cts_timing::BufferId;
        let nb = fast_library().buffers().len();
        let inst = random_instance(9, 4000.0, 3000.0, 11);

        // Full-width subset is the identity: byte-identical trees.
        let full = Synthesizer::new(fast_library(), CtsOptions::default());
        let same = Synthesizer::new(
            fast_library(),
            CtsOptions::builder().library_subset(nb).build().unwrap(),
        );
        let a = full.synthesize(&inst).unwrap();
        let b = same.synthesize(&inst).unwrap();
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.report, b.report);

        // A strict subset only inserts buffers with ids below k.
        let k = nb - 1;
        let sub = full.with_options(CtsOptions::builder().library_subset(k).build().unwrap());
        let r = sub.synthesize(&inst).unwrap();
        for node in (0..r.tree.len()).map(TreeNodeId::from_index) {
            if let crate::tree::NodeKind::Buffer { buffer } = r.tree.node(node).kind {
                assert!(buffer.0 < k, "buffer {buffer} outside subset of {k}");
            }
        }

        // Out-of-range subset / virtual driver are typed errors, not panics.
        let wide = full.with_options(
            CtsOptions::builder()
                .library_subset(nb + 1)
                .build()
                .unwrap(),
        );
        assert!(matches!(
            wide.synthesize(&inst),
            Err(CtsError::BadOptions(_))
        ));
        let bad_driver = full.with_options(
            CtsOptions::builder()
                .library_subset(1)
                .virtual_driver(BufferId(1))
                .build()
                .unwrap(),
        );
        assert!(matches!(
            bad_driver.synthesize(&inst),
            Err(CtsError::BadOptions(_))
        ));
    }

    #[test]
    fn bad_options_rejected() {
        let mut opts = CtsOptions::default();
        opts.slew_target = 0.0;
        let synth = Synthesizer::new(fast_library(), opts);
        let inst = grid_instance(2, 2, 100.0);
        assert!(matches!(
            synth.synthesize(&inst),
            Err(CtsError::BadOptions(_))
        ));
    }
}
