//! The top-level synthesis flow (paper §4.1, Fig. 4.1): levelized topology
//! generation driving merge-routing until a single tree remains.
//!
//! The heavy lifting lives in [`crate::pipeline::SynthesisPipeline`];
//! [`Synthesizer`] is the stable public entry point around it. The flow is
//! split into two explicitly separate stages — [`Synthesizer::synthesize`]
//! (library-estimated tree construction) and [`Synthesizer::verify`]
//! (SPICE simulation of the finished netlist) — so callers that process
//! many instances can overlap one instance's verification with the next
//! instance's synthesis (see [`crate::batch::BatchRunner`]).

use crate::engine::{TimingEngine, TimingReport};
use crate::instance::Instance;
use crate::merge::MergeScratch;
use crate::options::{CtsError, CtsOptions};
use crate::pipeline::{LevelStats, SynthesisPipeline};
use crate::tree::{ClockTree, TreeNodeId};
use crate::verify::{verify_tree, VerifiedTiming, Verifier, VerifyOptions};
use cts_spice::Technology;
use cts_timing::DelaySlewLibrary;

/// A synthesized clock tree with engine-estimated quality metrics.
///
/// The estimates come from the delay library; for paper-grade numbers run
/// [`crate::verify::verify_tree`] on the result, which simulates the actual
/// netlist.
#[derive(Debug, Clone)]
pub struct CtsResult {
    /// The tree (single-rooted, crowned with a source node).
    pub tree: ClockTree,
    /// The source node.
    pub source: TreeNodeId,
    /// Engine-estimated timing of the finished tree.
    pub report: TimingReport,
    /// Topology levels built.
    pub levels: usize,
    /// Total buffers inserted.
    pub buffers: usize,
    /// Total routed wirelength (µm).
    pub wirelength_um: f64,
    /// H-structure pairings flipped (0 when correction is off).
    pub flippings: usize,
    /// Per-level statistics from the pipeline's level-timing stage.
    pub level_stats: Vec<LevelStats>,
    /// Wall-clock seconds spent in topology matching (candidate timing +
    /// pairing), summed over levels. Telemetry only — it feeds the
    /// service's per-stage sinks/second metrics and never affects results.
    pub topology_seconds: f64,
    /// Wall-clock seconds spent merge-routing and refining. Telemetry only.
    pub merge_seconds: f64,
}

/// The buffered clock tree synthesizer.
///
/// ```no_run
/// use cts_core::{CtsOptions, Instance, Sink, Synthesizer};
/// use cts_geom::Point;
/// use cts_timing::fast_library;
///
/// let sinks = (0..8)
///     .map(|i| Sink::new(format!("ff{i}"), Point::new(500.0 * i as f64, 0.0), 30e-15))
///     .collect();
/// let instance = Instance::new("demo", sinks);
/// let synth = Synthesizer::new(fast_library(), CtsOptions::default());
/// let result = synth.synthesize(&instance)?;
/// assert!(result.report.skew() < result.report.latency);
/// # Ok::<(), cts_core::CtsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer<'a> {
    lib: &'a DelaySlewLibrary,
    options: CtsOptions,
}

impl<'a> Synthesizer<'a> {
    /// Creates a synthesizer over a delay library with the given options.
    pub fn new(lib: &'a DelaySlewLibrary, options: CtsOptions) -> Synthesizer<'a> {
        Synthesizer { lib, options }
    }

    /// The options in effect.
    pub fn options(&self) -> &CtsOptions {
        &self.options
    }

    /// The delay library this synthesizer queries (the *base* library of
    /// the variation axis).
    pub(crate) fn library(&self) -> &'a DelaySlewLibrary {
        self.lib
    }

    /// A synthesizer over the same library with different options — the
    /// hook that lets a long-running service honor per-request option
    /// overrides without re-characterizing anything (the expensive state
    /// is the library, which is shared by reference).
    pub fn with_options(&self, options: CtsOptions) -> Synthesizer<'a> {
        Synthesizer {
            lib: self.lib,
            options,
        }
    }

    /// Synthesizes a buffered clock tree for `instance`.
    ///
    /// Runs the staged [`SynthesisPipeline`]: per-level topology matching,
    /// parallel per-pair merge-routing (`options.threads` workers; the
    /// result is bit-identical for every worker count), deterministic
    /// grafting, and global refinement.
    ///
    /// The result carries *engine-estimated* timing; the SPICE numbers the
    /// paper reports come from the separate [`Synthesizer::verify`] stage.
    /// `synthesize` is a synonym of [`Synthesizer::synthesize_unverified`],
    /// kept as the short name for the common entry point.
    ///
    /// # Errors
    ///
    /// [`CtsError::BadOptions`] for invalid options,
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target.
    pub fn synthesize(&self, instance: &Instance) -> Result<CtsResult, CtsError> {
        self.synthesize_unverified(instance)
    }

    /// The synthesis stage alone: builds the tree and reports
    /// library-estimated timing, without touching the SPICE simulator.
    ///
    /// # Errors
    ///
    /// [`CtsError::BadOptions`] for invalid options,
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target.
    pub fn synthesize_unverified(&self, instance: &Instance) -> Result<CtsResult, CtsError> {
        self.synthesize_unverified_with(instance, &mut MergeScratch::new())
    }

    /// [`Synthesizer::synthesize_unverified`] with caller-provided merge
    /// scratch, so repeated synthesis calls (a batch shard's instance
    /// stream) reuse the maze router's allocations and caches. The scratch
    /// never affects results.
    ///
    /// # Errors
    ///
    /// [`CtsError::BadOptions`] for invalid options,
    /// [`CtsError::SlewUnachievable`] when the buffer library cannot meet
    /// the slew target.
    pub fn synthesize_unverified_with(
        &self,
        instance: &Instance,
        scratch: &mut MergeScratch,
    ) -> Result<CtsResult, CtsError> {
        let pipeline = SynthesisPipeline::new(self.lib, &self.options)?;
        let out = pipeline.run_with(instance, scratch)?;

        let engine = TimingEngine::new(self.lib);
        let report = engine.evaluate(&out.tree, out.source, self.options.source_slew);
        let buffers = out.tree.buffer_count_under(out.source);
        let wirelength_um = out.tree.wirelength_under(out.source);

        Ok(CtsResult {
            tree: out.tree,
            source: out.source,
            report,
            levels: out.levels,
            buffers,
            wirelength_um,
            flippings: out.flippings,
            level_stats: out.level_stats,
            topology_seconds: out.topology_seconds,
            merge_seconds: out.merge_seconds,
        })
    }

    /// The verification stage: SPICE-simulates a synthesized tree and
    /// measures the paper's reported numbers (worst slew, skew, max
    /// latency). Separately invokable from synthesis so batch drivers can
    /// overlap the two stages across instances.
    ///
    /// # Errors
    ///
    /// [`CtsError::Verify`] if any stage fails to simulate or a node never
    /// completes its transition.
    pub fn verify(
        &self,
        result: &CtsResult,
        tech: &Technology,
        opts: &VerifyOptions,
    ) -> Result<VerifiedTiming, CtsError> {
        verify_tree(&result.tree, result.source, tech, opts)
    }

    /// [`Synthesizer::verify`] through a caller-provided [`Verifier`], so
    /// repeated verification (a batch shard's instance stream, a service
    /// worker's lifetime) reuses solve plans across stages and replays
    /// unchanged stages outright. The verifier never affects results —
    /// warm and cold verification are bit-identical.
    ///
    /// # Errors
    ///
    /// As for [`Synthesizer::verify`].
    pub fn verify_with(
        &self,
        result: &CtsResult,
        tech: &Technology,
        opts: &VerifyOptions,
        verifier: &mut Verifier,
    ) -> Result<VerifiedTiming, CtsError> {
        verifier.verify(&result.tree, result.source, tech, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Sink;
    use crate::options::HCorrection;
    use cts_geom::Point;
    use cts_spice::units::PS;
    use cts_timing::fast_library;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn grid_instance(nx: usize, ny: usize, pitch: f64) -> Instance {
        let mut sinks = Vec::new();
        for i in 0..nx {
            for j in 0..ny {
                sinks.push(Sink::new(
                    format!("s{i}_{j}"),
                    Point::new(i as f64 * pitch, j as f64 * pitch),
                    25e-15,
                ));
            }
        }
        Instance::new("grid", sinks)
    }

    fn random_instance(n: usize, w: f64, h: f64, seed: u64) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let sinks = (0..n)
            .map(|i| {
                Sink::new(
                    format!("s{i}"),
                    Point::new(rng.gen_range(0.0..w), rng.gen_range(0.0..h)),
                    rng.gen_range(10e-15..40e-15),
                )
            })
            .collect();
        Instance::new("rand", sinks)
    }

    #[test]
    fn synthesizes_a_grid() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = grid_instance(4, 4, 700.0);
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.tree.sinks_under(r.source).len(), 16);
        assert!(r.levels >= 4, "16 sinks need >= 4 levels, got {}", r.levels);
        assert!(
            r.report.worst_slew <= synth.options().slew_limit * 1.1,
            "slew {} ps",
            r.report.worst_slew / PS
        );
        assert!(
            r.report.skew() < 0.10 * r.report.latency.max(50.0 * PS),
            "skew {} ps vs latency {} ps",
            r.report.skew() / PS,
            r.report.latency / PS
        );
    }

    #[test]
    fn synthesizes_random_instances() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        for seed in 0..3u64 {
            let inst = random_instance(13, 4000.0, 3000.0, seed);
            let r = synth.synthesize(&inst).unwrap();
            assert_eq!(r.tree.sinks_under(r.source).len(), 13);
            assert!(r.report.latency > 0.0);
            assert!(r.wirelength_um > 0.0);
        }
    }

    #[test]
    fn single_sink_instance() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = Instance::new(
            "one",
            vec![Sink::new("only", Point::new(10.0, 10.0), 20e-15)],
        );
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.levels, 0);
        assert_eq!(r.tree.sinks_under(r.source).len(), 1);
        assert_eq!(r.report.skew(), 0.0);
    }

    #[test]
    fn coincident_sinks_are_handled() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let p = Point::new(100.0, 100.0);
        let inst = Instance::new(
            "stack",
            (0..4)
                .map(|i| Sink::new(format!("s{i}"), p, 20e-15))
                .collect(),
        );
        let r = synth.synthesize(&inst).unwrap();
        assert_eq!(r.tree.sinks_under(r.source).len(), 4);
    }

    #[test]
    fn large_spread_inserts_buffers() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = grid_instance(2, 2, 4000.0);
        let r = synth.synthesize(&inst).unwrap();
        assert!(r.buffers > 0, "8 mm spans require along-path buffers");
    }

    #[test]
    fn hcorrection_modes_produce_valid_trees() {
        for mode in [
            HCorrection::Off,
            HCorrection::ReEstimate,
            HCorrection::Correct,
        ] {
            let mut opts = CtsOptions::default();
            opts.h_correction = mode;
            let synth = Synthesizer::new(fast_library(), opts);
            let inst = random_instance(10, 3000.0, 3000.0, 7);
            let r = synth.synthesize(&inst).unwrap();
            assert_eq!(
                r.tree.sinks_under(r.source).len(),
                10,
                "mode {mode}: sink lost"
            );
            if mode == HCorrection::Off {
                assert_eq!(r.flippings, 0);
            }
        }
    }

    #[test]
    fn determinism_same_seed_same_tree() {
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = random_instance(9, 2500.0, 2500.0, 42);
        let a = synth.synthesize(&inst).unwrap();
        let b = synth.synthesize(&inst).unwrap();
        assert_eq!(a.tree, b.tree);
        assert_eq!(a.report.latency, b.report.latency);
    }

    #[test]
    fn warm_scratch_does_not_change_results() {
        // A batch shard drives many instances through one scratch; the
        // trees must match what fresh-scratch calls produce, bit for bit.
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let mut scratch = crate::merge::MergeScratch::new();
        for seed in 0..3u64 {
            let inst = random_instance(8, 3000.0, 2000.0, seed);
            let warm = synth
                .synthesize_unverified_with(&inst, &mut scratch)
                .unwrap();
            let cold = synth.synthesize(&inst).unwrap();
            assert_eq!(warm.tree, cold.tree);
            assert_eq!(warm.report, cold.report);
            assert_eq!(warm.level_stats, cold.level_stats);
        }
    }

    #[test]
    fn split_stages_match_fused_flow() {
        use crate::verify::VerifyOptions;
        let synth = Synthesizer::new(fast_library(), CtsOptions::default());
        let inst = random_instance(5, 1500.0, 1500.0, 3);
        let r = synth.synthesize_unverified(&inst).unwrap();
        let tech = cts_spice::Technology::nominal_45nm();
        let v = synth.verify(&r, &tech, &VerifyOptions::default()).unwrap();
        let direct =
            crate::verify::verify_tree(&r.tree, r.source, &tech, &VerifyOptions::default())
                .unwrap();
        assert_eq!(v.worst_slew, direct.worst_slew);
        assert_eq!(v.skew, direct.skew);
        assert_eq!(v.sink_arrivals, direct.sink_arrivals);
    }

    #[test]
    fn bad_options_rejected() {
        let mut opts = CtsOptions::default();
        opts.slew_target = 0.0;
        let synth = Synthesizer::new(fast_library(), opts);
        let inst = grid_instance(2, 2, 100.0);
        assert!(matches!(
            synth.synthesize(&inst),
            Err(CtsError::BadOptions(_))
        ));
    }
}
