//! Problem instances: the input to clock tree synthesis.

use cts_geom::{Point, Rect};
use std::fmt;

/// A clock sink: the clock input pin of a flip-flop or latch.
#[derive(Debug, Clone, PartialEq)]
pub struct Sink {
    /// Pin name (diagnostics and reports).
    pub name: String,
    /// Pin location (µm).
    pub location: Point,
    /// Pin input capacitance (F).
    pub cap: f64,
}

impl Sink {
    /// Creates a sink.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite location or negative/non-finite capacitance.
    pub fn new(name: impl Into<String>, location: Point, cap: f64) -> Sink {
        assert!(location.is_finite(), "sink location must be finite");
        assert!(
            cap >= 0.0 && cap.is_finite(),
            "sink capacitance must be non-negative, got {cap}"
        );
        Sink {
            name: name.into(),
            location,
            cap,
        }
    }
}

impl fmt::Display for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.name, self.location)
    }
}

/// A CTS problem instance: named sink set over a die area.
///
/// ```
/// use cts_core::{Instance, Sink};
/// use cts_geom::Point;
///
/// let sinks = vec![
///     Sink::new("ff0", Point::new(100.0, 100.0), 35e-15),
///     Sink::new("ff1", Point::new(900.0, 400.0), 35e-15),
/// ];
/// let inst = Instance::new("tiny", sinks);
/// assert_eq!(inst.sinks().len(), 2);
/// assert!(inst.die().width() >= 800.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    name: String,
    sinks: Vec<Sink>,
    die: Rect,
}

impl Instance {
    /// Creates an instance; the die area is the sink bounding box.
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty.
    pub fn new(name: impl Into<String>, sinks: Vec<Sink>) -> Instance {
        assert!(!sinks.is_empty(), "instance needs at least one sink");
        let die = Rect::bounding(sinks.iter().map(|s| s.location)).expect("non-empty");
        Instance {
            name: name.into(),
            sinks,
            die,
        }
    }

    /// Creates an instance with an explicit die area (which must contain all
    /// sinks).
    ///
    /// # Panics
    ///
    /// Panics if `sinks` is empty or any sink lies outside `die`.
    pub fn with_die(name: impl Into<String>, sinks: Vec<Sink>, die: Rect) -> Instance {
        assert!(!sinks.is_empty(), "instance needs at least one sink");
        for s in &sinks {
            assert!(die.contains(s.location), "sink {} outside die {die}", s);
        }
        Instance {
            name: name.into(),
            sinks,
            die,
        }
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sinks.
    pub fn sinks(&self) -> &[Sink] {
        &self.sinks
    }

    /// The die outline.
    pub fn die(&self) -> Rect {
        self.die
    }

    /// Centroid of the sink locations — the reference point of the paper's
    /// farthest-first matching heuristic (§4.1.1).
    pub fn sink_centroid(&self) -> Point {
        let n = self.sinks.len() as f64;
        let sum = self
            .sinks
            .iter()
            .fold(Point::ORIGIN, |acc, s| acc + s.location);
        Point::new(sum.x / n, sum.y / n)
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} sinks, die {:.0}x{:.0} µm]",
            self.name,
            self.sinks.len(),
            self.die.width(),
            self.die.height()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sinks3() -> Vec<Sink> {
        vec![
            Sink::new("a", Point::new(0.0, 0.0), 10e-15),
            Sink::new("b", Point::new(300.0, 0.0), 20e-15),
            Sink::new("c", Point::new(0.0, 300.0), 30e-15),
        ]
    }

    #[test]
    fn die_is_bounding_box() {
        let inst = Instance::new("t", sinks3());
        assert_eq!(inst.die().width(), 300.0);
        assert_eq!(inst.die().height(), 300.0);
    }

    #[test]
    fn centroid() {
        let inst = Instance::new("t", sinks3());
        let c = inst.sink_centroid();
        assert!((c.x - 100.0).abs() < 1e-9);
        assert!((c.y - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sink")]
    fn empty_rejected() {
        let _ = Instance::new("t", Vec::new());
    }

    #[test]
    #[should_panic(expected = "outside die")]
    fn sink_outside_die_rejected() {
        let die = Rect::with_size(10.0, 10.0);
        let _ = Instance::with_die("t", sinks3(), die);
    }
}
