//! Grid-bucket spatial index over matching candidates.
//!
//! [`crate::topology::find_matching`] repeatedly asks one question that is
//! quadratic when answered naively: *which live candidate is the cheapest
//! partner (eq. 4.1) for this one?* The cost mixes Manhattan distance and
//! delay difference, but only the distance term has geometric structure —
//! so the index buckets candidates on a uniform grid and answers partner
//! queries by scanning cells in expanding Chebyshev rings around the query
//! point, stopping as soon as the *distance-only lower bound* of the next
//! ring exceeds the best cost found so far (the delay term is
//! non-negative, so `alpha * ring_distance` is a valid lower bound on the
//! full cost of anything further out).
//!
//! Tie-break preservation: the winner is selected by the exact total order
//! `(cost, index)` — `f64::total_cmp` on cost, then smallest candidate
//! index — using the same [`crate::topology::edge_cost`] arithmetic as the
//! brute scan. A unique minimum under a total order does not depend on
//! the order candidates are visited in, so ring-order enumeration returns
//! bit-identical winners to the full scan (pinned by the equivalence
//! proptest in `crates/core/tests/matching_equivalence.rs`).
//!
//! Storage is CSR-style (`starts` + `items`, no per-bucket `Vec`) so
//! building the index over a million candidates is one counting pass and
//! one placement pass. Removal is a live-flag flip plus a per-bucket live
//! counter, letting ring scans skip emptied cells without compaction.

use crate::topology::{edge_cost, MatchCandidate};

/// Relative safety slack on the ring lower bound: the bound is computed
/// in floating point from quantities the exact costs are also computed
/// from, so shave a hair off before comparing to never prune the true
/// minimum on a rounding edge.
const BOUND_SLACK: f64 = 1.0 - 1e-12;

/// A uniform-grid bucket index over a fixed candidate slice, with
/// constant-time removal and ring-pruned cheapest-partner queries.
#[derive(Debug, Clone)]
pub struct GridIndex {
    /// Cell edge length (µm); cells are square.
    cell: f64,
    inv_cell: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// CSR bucket boundaries: bucket `b` holds `items[starts[b]..starts[b + 1]]`.
    starts: Vec<u32>,
    /// Candidate indices, grouped by bucket, ascending within each bucket.
    items: Vec<u32>,
    /// Bucket of each candidate (for O(1) removal bookkeeping).
    bucket_of: Vec<u32>,
    /// Live candidates per bucket; rings skip buckets at zero.
    bucket_live: Vec<u32>,
    live: Vec<bool>,
    live_count: usize,
}

impl GridIndex {
    /// Builds the index over `candidates`. Sizing targets an average
    /// occupancy of ~2 candidates per cell; degenerate inputs (all
    /// coincident, a single candidate) collapse to one bucket.
    pub fn build(candidates: &[MatchCandidate]) -> GridIndex {
        let n = candidates.len();
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for c in candidates {
            min_x = min_x.min(c.location.x);
            min_y = min_y.min(c.location.y);
            max_x = max_x.max(c.location.x);
            max_y = max_y.max(c.location.y);
        }
        if n == 0 {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let span = (max_x - min_x).max(max_y - min_y);
        let per_axis = ((n as f64 / 2.0).sqrt().ceil() as usize).clamp(1, 4096);
        let cell = if span > 0.0 {
            span / per_axis as f64
        } else {
            1.0
        };
        let inv_cell = 1.0 / cell;
        let cols = (((max_x - min_x) * inv_cell).floor() as usize + 1).max(1);
        let rows = (((max_y - min_y) * inv_cell).floor() as usize + 1).max(1);

        // Counting pass, prefix sum, placement pass (ascending index
        // within each bucket because placement runs in index order).
        let bucket_at = |x: f64, y: f64| {
            let bx = (((x - min_x) * inv_cell).floor() as usize).min(cols - 1);
            let by = (((y - min_y) * inv_cell).floor() as usize).min(rows - 1);
            by * cols + bx
        };
        let mut bucket_of = vec![0u32; n];
        let mut counts = vec![0u32; cols * rows + 1];
        for (i, c) in candidates.iter().enumerate() {
            let b = bucket_at(c.location.x, c.location.y);
            bucket_of[i] = b as u32;
            counts[b + 1] += 1;
        }
        for b in 1..counts.len() {
            counts[b] += counts[b - 1];
        }
        let starts = counts;
        let mut items = vec![0u32; n];
        let mut cursor: Vec<u32> = starts[..starts.len() - 1].to_vec();
        for (i, &b) in bucket_of.iter().enumerate() {
            items[cursor[b as usize] as usize] = i as u32;
            cursor[b as usize] += 1;
        }
        let bucket_live: Vec<u32> = (0..cols * rows)
            .map(|b| starts[b + 1] - starts[b])
            .collect();

        GridIndex {
            cell,
            inv_cell,
            min_x,
            min_y,
            cols,
            rows,
            starts,
            items,
            bucket_of,
            bucket_live,
            live: vec![true; n],
            live_count: n,
        }
    }

    /// Whether candidate `i` is still live (not removed).
    pub fn is_live(&self, i: usize) -> bool {
        self.live[i]
    }

    /// Number of live candidates.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether no candidates remain live.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Removes candidate `i` from future queries. Idempotent.
    pub fn remove(&mut self, i: usize) {
        if self.live[i] {
            self.live[i] = false;
            self.bucket_live[self.bucket_of[i] as usize] -= 1;
            self.live_count -= 1;
        }
    }

    /// The cheapest live partner for candidate `from` under eq. 4.1,
    /// ties broken toward the smallest index — exactly the winner the
    /// brute scan picks. `from` itself is skipped whether or not it has
    /// been removed. Returns `None` when no other live candidate exists.
    pub fn cheapest_partner(
        &self,
        candidates: &[MatchCandidate],
        from: usize,
        alpha: f64,
        beta: f64,
    ) -> Option<usize> {
        let p = candidates[from].location;
        let cx =
            ((((p.x - self.min_x) * self.inv_cell).floor() as usize).min(self.cols - 1)) as isize;
        let cy =
            ((((p.y - self.min_y) * self.inv_cell).floor() as usize).min(self.rows - 1)) as isize;
        let max_ring = cx
            .max(self.cols as isize - 1 - cx)
            .max(cy)
            .max(self.rows as isize - 1 - cy);

        let mut best: Option<(f64, usize)> = None;
        let visit = |bx: isize, by: isize, best: &mut Option<(f64, usize)>| {
            if bx < 0 || by < 0 || bx >= self.cols as isize || by >= self.rows as isize {
                return;
            }
            let b = by as usize * self.cols + bx as usize;
            if self.bucket_live[b] == 0 {
                return;
            }
            for &j in &self.items[self.starts[b] as usize..self.starts[b + 1] as usize] {
                let j = j as usize;
                if j == from || !self.live[j] {
                    continue;
                }
                let c = edge_cost(&candidates[from], &candidates[j], alpha, beta);
                let better = match *best {
                    None => true,
                    Some((bc, bi)) => c.total_cmp(&bc).then(j.cmp(&bi)).is_lt(),
                };
                if better {
                    *best = Some((c, j));
                }
            }
        };

        for r in 0..=max_ring {
            // Anything in a cell at Chebyshev ring r is at least
            // (r - 1) * cell away in Manhattan distance, and the delay
            // term only adds cost — so once that floor alone exceeds the
            // best cost, no farther ring can win.
            if let Some((bc, _)) = best {
                if r >= 1 && alpha * ((r - 1) as f64) * self.cell * BOUND_SLACK > bc {
                    break;
                }
            }
            if r == 0 {
                visit(cx, cy, &mut best);
                continue;
            }
            for dy in -r..=r {
                let y = cy + dy;
                if dy.abs() == r {
                    for dx in -r..=r {
                        visit(cx + dx, y, &mut best);
                    }
                } else {
                    visit(cx - r, y, &mut best);
                    visit(cx + r, y, &mut best);
                }
            }
        }
        best.map(|(_, j)| j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cts_geom::Point;

    fn cand(x: f64, y: f64, delay: f64) -> MatchCandidate {
        MatchCandidate {
            location: Point::new(x, y),
            delay,
        }
    }

    /// The brute-force reference: min (cost, index) over live partners.
    fn brute_partner(
        cands: &[MatchCandidate],
        live: &[bool],
        from: usize,
        alpha: f64,
        beta: f64,
    ) -> Option<usize> {
        (0..cands.len())
            .filter(|&j| j != from && live[j])
            .min_by(|&i, &j| {
                let ci = edge_cost(&cands[from], &cands[i], alpha, beta);
                let cj = edge_cost(&cands[from], &cands[j], alpha, beta);
                ci.total_cmp(&cj).then(i.cmp(&j))
            })
    }

    #[test]
    fn partner_matches_brute_on_a_grid() {
        let mut cands = Vec::new();
        for i in 0..13 {
            for j in 0..11 {
                cands.push(cand(
                    i as f64 * 97.0,
                    j as f64 * 63.0,
                    (i * j) as f64 * 1e-12,
                ));
            }
        }
        let idx = GridIndex::build(&cands);
        let live = vec![true; cands.len()];
        for from in 0..cands.len() {
            assert_eq!(
                idx.cheapest_partner(&cands, from, 1e-3, 1e11),
                brute_partner(&cands, &live, from, 1e-3, 1e11),
                "from {from}"
            );
        }
    }

    #[test]
    fn partner_matches_brute_after_removals() {
        let cands: Vec<_> = (0..40)
            .map(|i| {
                cand(
                    (i * 37 % 11) as f64 * 120.0,
                    (i * 53 % 7) as f64 * 250.0,
                    0.0,
                )
            })
            .collect();
        let mut idx = GridIndex::build(&cands);
        let mut live = vec![true; cands.len()];
        for kill in [3usize, 17, 20, 21, 39, 0] {
            idx.remove(kill);
            live[kill] = false;
        }
        assert_eq!(idx.len(), 34);
        for from in 0..cands.len() {
            assert_eq!(
                idx.cheapest_partner(&cands, from, 1.0, 0.0),
                brute_partner(&cands, &live, from, 1.0, 0.0),
                "from {from}"
            );
        }
    }

    #[test]
    fn coincident_points_collapse_to_one_bucket() {
        let cands = vec![cand(5.0, 5.0, 1e-12); 9];
        let idx = GridIndex::build(&cands);
        // All costs tie at zero distance and zero delay difference; the
        // winner must be the smallest index other than `from`.
        assert_eq!(idx.cheapest_partner(&cands, 0, 1.0, 1.0), Some(1));
        assert_eq!(idx.cheapest_partner(&cands, 4, 1.0, 1.0), Some(0));
    }

    #[test]
    fn zero_alpha_degenerates_to_full_scan() {
        // With alpha = 0 the geometric bound never prunes; the query must
        // still return the delay-cheapest partner.
        let cands = vec![
            cand(0.0, 0.0, 10e-12),
            cand(9000.0, 9000.0, 11e-12),
            cand(4000.0, 100.0, 80e-12),
        ];
        let idx = GridIndex::build(&cands);
        assert_eq!(idx.cheapest_partner(&cands, 0, 0.0, 1e12), Some(1));
    }

    #[test]
    fn single_candidate_has_no_partner() {
        let cands = vec![cand(1.0, 2.0, 0.0)];
        let idx = GridIndex::build(&cands);
        assert_eq!(idx.cheapest_partner(&cands, 0, 1.0, 1.0), None);
        assert!(!idx.is_empty());
    }
}
