//! Monte Carlo corner evaluation: per-corner rows, the yield-style
//! [`VariationSummary`], and the [`Synthesizer`] hook that expands one
//! synthesized instance into N corner evaluations.
//!
//! Determinism contract: corner `k` of an instance is always evaluated
//! under the library derived from `corner_seed(options.variation.seed,
//! k)`, rows are emitted in corner order, and [`VariationSummary::fold`]
//! concatenates partial summaries' rows in argument order before
//! recomputing the distribution stats from scratch — so folding
//! per-shard partials equals folding the flat row list, bit for bit,
//! regardless of shard count or verify overlap.

use crate::engine::TimingEngine;
use crate::flow::{CtsResult, Synthesizer};
use crate::instance::Instance;
use crate::merge::MergeScratch;
use crate::options::{CtsError, VariationMode};
use cts_timing::{corner_seed, CornerLibraryCache, PerturbSigma};

/// One evaluated corner of one instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerRow {
    /// Corner index within the instance's variation config.
    pub corner: usize,
    /// The per-corner stream seed (`corner_seed(config seed, corner)`).
    pub seed: u64,
    /// Engine-estimated sink-to-sink skew under the perturbed library (s).
    pub skew: f64,
    /// Worst sink slew under the perturbed library (s).
    pub worst_slew: f64,
    /// Maximum source-to-sink latency under the perturbed library (s).
    pub latency: f64,
    /// True when the corner re-synthesized the tree
    /// ([`VariationMode::Resynthesize`]) rather than re-timing the
    /// nominal one.
    pub resynthesized: bool,
}

/// Distribution statistics over one metric across corners.
///
/// Quantiles are nearest-rank over the total-order (`f64::total_cmp`)
/// sorted values: `median` averages the two central elements for even
/// N, `p95` is the ceil(0.95 N)-th smallest value. All zero for an
/// empty distribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DistStats {
    /// Smallest value.
    pub min: f64,
    /// Median (mean of central pair for even N).
    pub median: f64,
    /// 95th percentile, nearest-rank.
    pub p95: f64,
    /// Largest value.
    pub max: f64,
}

impl DistStats {
    /// Stats of `values` (need not be sorted; NaNs order via
    /// [`f64::total_cmp`]). Returns the zero stats for an empty slice.
    pub fn from_values(values: &[f64]) -> DistStats {
        if values.is_empty() {
            return DistStats::default();
        }
        let mut v = values.to_vec();
        v.sort_by(f64::total_cmp);
        let n = v.len();
        let median = if n % 2 == 1 {
            v[n / 2]
        } else {
            0.5 * (v[n / 2 - 1] + v[n / 2])
        };
        // Nearest-rank: smallest value with at least 95 % of the mass at
        // or below it. N = 1 → v[0]; N = 2 → v[1]; N = 20 → v[18].
        let rank = (0.95 * n as f64).ceil() as usize;
        DistStats {
            min: v[0],
            median,
            p95: v[rank.max(1) - 1],
            max: v[n - 1],
        }
    }
}

/// The yield view of one instance across its variation corners.
///
/// Carries both the folded distribution statistics and the raw
/// per-corner rows (sorted by corner index), so clients can recompute
/// any quantile themselves.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VariationSummary {
    /// Corners evaluated (`rows.len()`).
    pub corners: usize,
    /// Skew distribution across corners.
    pub skew: DistStats,
    /// Worst-slew distribution across corners.
    pub worst_slew: DistStats,
    /// Latency distribution across corners.
    pub latency: DistStats,
    /// Per-corner rows, ascending corner index.
    pub rows: Vec<CornerRow>,
}

impl VariationSummary {
    /// Builds a summary from per-corner rows (any order; rows are
    /// sorted by corner index first, a stable total order because
    /// corner indices are unique per instance).
    pub fn from_rows(mut rows: Vec<CornerRow>) -> VariationSummary {
        rows.sort_by_key(|r| r.corner);
        let collect = |f: fn(&CornerRow) -> f64| -> Vec<f64> { rows.iter().map(f).collect() };
        VariationSummary {
            corners: rows.len(),
            skew: DistStats::from_values(&collect(|r| r.skew)),
            worst_slew: DistStats::from_values(&collect(|r| r.worst_slew)),
            latency: DistStats::from_values(&collect(|r| r.latency)),
            rows,
        }
    }

    /// Folds partial summaries (e.g. one per shard) into one, exactly
    /// as if all rows had been folded flat: the partials' rows are
    /// concatenated and re-summarized from scratch, so
    /// `fold(&[a, b]) == from_rows(a.rows ++ b.rows)` bit for bit and
    /// the result is independent of how rows were grouped.
    pub fn fold(partials: &[VariationSummary]) -> VariationSummary {
        VariationSummary::from_rows(
            partials
                .iter()
                .flat_map(|p| p.rows.iter().copied())
                .collect(),
        )
    }
}

impl Synthesizer<'_> {
    /// Expands a synthesized instance into its variation corners.
    ///
    /// Returns `Ok(None)` when the variation axis is off
    /// (`options.variation.corners == 0`). Otherwise evaluates every
    /// corner in index order: derive (or fetch from `cache`) the
    /// perturbed library for `corner_seed(seed, k)`, then either re-time
    /// the nominal tree under it ([`VariationMode::Evaluate`]) or run a
    /// full re-synthesis ([`VariationMode::Resynthesize`]). Corners run
    /// serially within this call, so the summary is bit-identical no
    /// matter which shard or worker invokes it.
    ///
    /// `base_fp` must be `library_fingerprint` of this synthesizer's
    /// library; callers compute it once, not per corner.
    ///
    /// # Errors
    ///
    /// [`CtsError`] from a corner's re-synthesis (Resynthesize mode
    /// only; Evaluate mode cannot fail).
    pub fn evaluate_variation_with(
        &self,
        instance: &Instance,
        nominal: &CtsResult,
        cache: &CornerLibraryCache,
        base_fp: u64,
    ) -> Result<Option<VariationSummary>, CtsError> {
        let var = &self.options().variation;
        if var.corners == 0 {
            return Ok(None);
        }
        let sigma = PerturbSigma {
            buffer_delay: var.sigma_buffer,
            wire_delay: var.sigma_wire,
            slew: var.sigma_slew,
        };
        let mut rows = Vec::with_capacity(var.corners);
        for corner in 0..var.corners {
            let seed = corner_seed(var.seed, corner as u64);
            let lib = cache.get_or_derive(self.library(), base_fp, seed, &sigma);
            let (report, resynthesized) = match var.mode {
                VariationMode::Evaluate => {
                    let engine = TimingEngine::new(&lib);
                    (
                        engine.evaluate(&nominal.tree, nominal.source, self.options().source_slew),
                        false,
                    )
                }
                VariationMode::Resynthesize => {
                    // A MergeScratch belongs to one (library, options)
                    // context — it lazily caches the symmetric arm budget
                    // per library — and every corner synthesizes under its
                    // own perturbed library, so each gets a fresh scratch.
                    // Sharing the caller's base-library scratch here would
                    // leak the nominal budget into corner decisions.
                    let corner_synth = Synthesizer::new(&lib, self.options().clone());
                    let result = corner_synth
                        .synthesize_unverified_with(instance, &mut MergeScratch::new())?;
                    (result.report, true)
                }
            };
            rows.push(CornerRow {
                corner,
                seed,
                skew: report.skew(),
                worst_slew: report.worst_slew,
                latency: report.latency,
                resynthesized,
            });
        }
        Ok(Some(VariationSummary::from_rows(rows)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(corner: usize, v: f64) -> CornerRow {
        CornerRow {
            corner,
            seed: corner as u64,
            skew: v,
            worst_slew: 2.0 * v,
            latency: 3.0 * v,
            resynthesized: false,
        }
    }

    #[test]
    fn dist_stats_edges_match_reference_sort() {
        // N = 1: every quantile is the single value.
        let one = DistStats::from_values(&[4.0]);
        assert_eq!(
            one,
            DistStats {
                min: 4.0,
                median: 4.0,
                p95: 4.0,
                max: 4.0
            }
        );
        // N = 2: median averages, p95 takes the larger.
        let two = DistStats::from_values(&[7.0, 3.0]);
        assert_eq!(
            two,
            DistStats {
                min: 3.0,
                median: 5.0,
                p95: 7.0,
                max: 7.0
            }
        );
        // Ties collapse.
        let ties = DistStats::from_values(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(
            ties,
            DistStats {
                min: 2.0,
                median: 2.0,
                p95: 2.0,
                max: 2.0
            }
        );
        // N = 20 nearest-rank p95 is the 19th smallest.
        let v: Vec<f64> = (1..=20).map(f64::from).collect();
        let twenty = DistStats::from_values(&v);
        assert_eq!((twenty.p95, twenty.median), (19.0, 10.5));
        // Empty is all zero.
        assert_eq!(DistStats::from_values(&[]), DistStats::default());
    }

    #[test]
    fn fold_of_partials_equals_flat_fold() {
        let rows: Vec<CornerRow> = (0..17).map(|k| row(k, (k as f64) * 0.7 - 3.0)).collect();
        let flat = VariationSummary::from_rows(rows.clone());
        // Split into uneven "shards" in scrambled order: fold must not
        // care how rows were grouped or ordered.
        let a = VariationSummary::from_rows(rows[10..].to_vec());
        let b = VariationSummary::from_rows(rows[..3].to_vec());
        let c = VariationSummary::from_rows(rows[3..10].to_vec());
        let folded = VariationSummary::fold(&[a, b, c]);
        assert_eq!(folded, flat);
        assert_eq!(folded.corners, 17);
        // Rows come back in corner order.
        assert!(folded.rows.windows(2).all(|w| w[0].corner < w[1].corner));
    }

    #[test]
    fn fold_of_empty_is_default() {
        assert_eq!(VariationSummary::fold(&[]), VariationSummary::default());
        assert_eq!(VariationSummary::from_rows(Vec::new()).corners, 0);
    }
}
